//! The paper's headline qualitative results, asserted end-to-end at
//! moderate scale. Full-scale magnitudes are recorded in EXPERIMENTS.md;
//! these tests pin the *shape*: who wins, in which direction, and where
//! the effect disappears.

use pc_experiments::{fig3, fig6, fig9, Params, TraceKind};

fn params() -> Params {
    Params {
        scale: 0.35,
        seed: 42,
        jobs: 0,
        trace_file: None,
    }
}

/// §3 / Figure 3: Belady minimizes misses but not energy.
#[test]
fn belady_is_not_energy_optimal() {
    let o = fig3::run();
    assert_eq!(o.metric("belady_misses"), 6.0);
    assert!(o.metric("optimal_energy") < o.metric("belady_energy"));
    assert!(o.metric("optimal_misses") > o.metric("belady_misses"));
}

/// §5.2 / Figure 6a: on OLTP, PA-LRU saves energy over LRU, OPG is at
/// least as energy-efficient as Belady, and the infinite cache bounds
/// everything from below under Oracle DPM.
#[test]
fn figure6a_energy_shape() {
    let o = fig6::energy(&params(), TraceKind::Oltp);
    assert!(
        o.metric("pa-lru_practical") < 0.97,
        "pa-lru ratio {}",
        o.metric("pa-lru_practical")
    );
    assert!(o.metric("opg_oracle") <= o.metric("belady_oracle") + 1e-9);
    for bar in ["belady", "opg", "lru", "pa-lru"] {
        assert!(
            o.metric("infinite-cache_oracle") <= o.metric(&format!("{bar}_oracle")) + 0.01,
            "infinite cache must lower-bound {bar}"
        );
    }
}

/// §5.2 / Figure 6b: on Cello96 the headroom shrinks: even the infinite
/// cache saves little, and PA-LRU's edge over LRU is small (within a few
/// percent) — the paper's cold-miss-dominated regime.
#[test]
fn figure6b_cello_offers_little_headroom() {
    let o = fig6::energy(&params(), TraceKind::Cello);
    let infinite = o.metric("infinite-cache_practical");
    assert!(
        infinite > 0.75,
        "infinite/LRU ratio {infinite} too low for Cello"
    );
    let pa = o.metric("pa-lru_practical");
    assert!(
        (pa - 1.0).abs() < 0.1,
        "pa-lru on cello should sit within a few % of LRU, got {pa}"
    );
    assert!(pa <= 1.02, "pa-lru must not burn notably more than LRU");
}

/// §5.2 / Figure 6c: PA-LRU improves OLTP response time; on Cello the
/// difference stays small.
#[test]
fn figure6c_response_shape() {
    let o = fig6::response(&params());
    assert!(o.metric("pa-lru_oltp") < 0.95);
    assert!((o.metric("pa-lru_cello") - 1.0).abs() < 0.1);
}

/// §6 / Figure 9: write-back beats write-through increasingly with the
/// write ratio; WBEU and WTDU dominate plain write-back at heavy writes;
/// savings vanish at 0% writes.
#[test]
fn figure9_write_policy_shape() {
    let p = Params {
        scale: 0.05,
        seed: 42,
        jobs: 0,
        trace_file: None,
    };
    let o = fig9::by_write_ratio(&p);
    for dist in ["exp", "pareto"] {
        assert!(o.metric(&format!("wb_{dist}_at_0")).abs() < 3.0);
        assert!(o.metric(&format!("wb_{dist}_at_1")) > 5.0);
        assert!(
            o.metric(&format!("wb_{dist}_at_1")) > o.metric(&format!("wb_{dist}_at_0.4")),
            "wb savings must grow with write ratio ({dist})"
        );
        assert!(
            o.metric(&format!("wbeu_{dist}_at_1")) > 40.0,
            "wbeu at pure writes ({dist})"
        );
        assert!(
            o.metric(&format!("wtdu_{dist}_at_1")) > 40.0,
            "wtdu at pure writes ({dist})"
        );
        assert!(
            o.metric(&format!("wbeu_{dist}_at_1")) > o.metric(&format!("wb_{dist}_at_1")),
            "wbeu dominates wb ({dist})"
        );
    }
    // The paper: WB's edge is slightly larger under exponential arrivals
    // than under bursty Pareto arrivals.
    assert!(o.metric("wb_exp_at_1") >= o.metric("wb_pareto_at_1") - 1.0);
}
