//! Workspace-spanning integration tests: drive the full stack
//! (generators → cache → disks → reports) and check cross-crate
//! invariants the unit tests cannot see.

use pc_cache::WritePolicy;
use pc_disksim::DpmPolicy;
use pc_sim::{run_replacement, run_write_policy, PolicySpec, SimConfig};
use pc_trace::{CelloConfig, OltpConfig, SyntheticConfig, TraceStats};
use pc_units::{Joules, SimDuration, SimTime};

fn policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Lru,
        PolicySpec::Fifo,
        PolicySpec::Belady,
        PolicySpec::Opg {
            epsilon: Joules::ZERO,
        },
        PolicySpec::PaLru,
    ]
}

/// Every disk's accounted wall-clock covers the full horizon, for every
/// policy and both DPM schemes: no time leaks from the energy books.
#[test]
fn time_accounting_balances_for_every_policy_and_dpm() {
    let trace = OltpConfig::default().with_requests(5_000).generate(1);
    for dpm in [DpmPolicy::Oracle, DpmPolicy::Practical, DpmPolicy::AlwaysOn] {
        for policy in policies() {
            let cfg = SimConfig::default().with_dpm(dpm);
            let report = run_replacement(&trace, &policy, &cfg);
            let horizon = (report.horizon - SimTime::ZERO).as_secs_f64();
            for (i, d) in report.disks.iter().enumerate() {
                let accounted = d.total_time().as_secs_f64();
                assert!(
                    accounted >= horizon - 1e-6,
                    "{:?}/{}: disk {i} accounted {accounted}s of {horizon}s",
                    dpm,
                    report.policy
                );
            }
        }
    }
}

/// Energy ordering across DPM schemes holds for every replacement policy:
/// Oracle ≤ Practical ≤ AlwaysOn (same request sequence, better power
/// decisions), and Practical stays within 2× of Oracle on idle energy.
#[test]
fn dpm_ordering_holds_across_policies() {
    let trace = OltpConfig::default().with_requests(8_000).generate(2);
    for policy in policies() {
        let energy = |dpm| {
            run_replacement(&trace, &policy, &SimConfig::default().with_dpm(dpm))
                .total_energy()
                .as_joules()
        };
        let oracle = energy(DpmPolicy::Oracle);
        let practical = energy(DpmPolicy::Practical);
        let always_on = energy(DpmPolicy::AlwaysOn);
        assert!(
            oracle <= practical * 1.0001,
            "oracle {oracle} practical {practical}"
        );
        assert!(practical <= always_on * 1.0001, "practical beats always-on");
    }
}

/// An infinite cache misses exactly on the trace's cold requests, tying
/// the trace statistics to the simulator's cache counters.
#[test]
fn infinite_cache_miss_count_equals_trace_cold_misses() {
    let trace = CelloConfig::default().with_requests(10_000).generate(3);
    let stats = TraceStats::of(&trace);
    let report = run_replacement(
        &trace,
        &PolicySpec::Lru,
        &SimConfig::default().with_infinite_cache(),
    );
    let cold = report.cache.misses() as f64 / report.cache.accesses as f64;
    assert!((cold - stats.cold_fraction).abs() < 1e-9);
}

/// Write-policy invariants across the integrated stack: write-back's
/// disk writes = dirty evictions (+ nothing else); WTDU persists every
/// client write either to a disk or the log.
#[test]
fn write_policy_bookkeeping_is_conserved() {
    let trace = SyntheticConfig::default()
        .with_requests(20_000)
        .with_write_ratio(0.6)
        .generate(4);
    let cfg = SimConfig::default();

    let wb = run_write_policy(
        &trace,
        &PolicySpec::Lru,
        &cfg.clone().with_write_policy(WritePolicy::WriteBack),
    );
    assert_eq!(wb.cache.disk_writes, wb.cache.dirty_evictions);
    assert_eq!(wb.cache.log_writes, 0);

    let wt = run_write_policy(
        &trace,
        &PolicySpec::Lru,
        &cfg.clone().with_write_policy(WritePolicy::WriteThrough),
    );
    // Write-through persists every written *block* (requests may span
    // several blocks).
    let write_blocks: u64 = trace
        .iter()
        .filter(|r| r.op == pc_trace::IoOp::Write)
        .map(|r| r.blocks)
        .sum();
    assert_eq!(wt.cache.disk_writes, write_blocks);

    let wtdu = run_write_policy(
        &trace,
        &PolicySpec::Lru,
        &cfg.clone().with_write_policy(WritePolicy::Wtdu),
    );
    // Every client write lands somewhere persistent at write time
    // (direct disk write or log append); flushes add disk writes on top.
    assert!(wtdu.cache.disk_writes + wtdu.cache.log_writes >= wtdu.cache.writes);
    assert!(wtdu.cache.log_writes > 0);
    assert!(wtdu.log.is_some());
}

/// Response-time bookkeeping: every request contributes at least the
/// cache hit time, and Oracle DPM never adds spin-up waits.
#[test]
fn response_time_floors_hold() {
    let trace = OltpConfig::default().with_requests(5_000).generate(5);
    let cfg = SimConfig::default().with_dpm(DpmPolicy::Oracle);
    let report = run_replacement(&trace, &PolicySpec::Lru, &cfg);
    let per_request = report.mean_response();
    assert!(per_request >= SimDuration::from_micros(200));
    // Oracle: no spin-up waits, so the mean stays within mechanical
    // service territory (well under 100 ms for this load).
    assert!(per_request < SimDuration::from_millis(100));
}

/// The cache-level hit ratio is invariant to the write policy (write
/// allocation keeps residency identical), so energy differences between
/// write policies are attributable to write handling alone.
#[test]
fn residency_is_write_policy_invariant() {
    let trace = SyntheticConfig::default()
        .with_requests(15_000)
        .with_write_ratio(0.5)
        .generate(6);
    let cfg = SimConfig::default();
    let mut hit_ratios = Vec::new();
    for wp in [
        WritePolicy::WriteThrough,
        WritePolicy::WriteBack,
        WritePolicy::Wbeu { dirty_limit: 32 },
        WritePolicy::Wtdu,
    ] {
        let r = run_write_policy(&trace, &PolicySpec::Lru, &cfg.clone().with_write_policy(wp));
        hit_ratios.push(r.cache.hit_ratio());
    }
    for w in hit_ratios.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-12,
            "hit ratios diverged: {hit_ratios:?}"
        );
    }
}
