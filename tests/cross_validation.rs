//! Cross-validation between the cycle-accurate disk state machine
//! (`pc-disksim`) and the analytic power model (`pc-diskmodel`), plus
//! lower-bound checks of every policy against the exhaustive optimum.

use pc_cache::optimal::{min_energy, miss_sequence_energy, threshold_energy};
use pc_cache::policy::{Belady, Fifo, Lru, Opg, OpgDpm};
use pc_cache::{BlockCache, ReplacementPolicy, WritePolicy};
use pc_diskmodel::{DiskPowerSpec, ModeId, PowerModel, ServiceModel, ServiceRequest};
use pc_disksim::{DiskSim, DpmPolicy};
use pc_trace::{IoOp, Record, Trace};
use pc_units::{BlockId, BlockNo, DiskId, Joules, SimDuration, SimTime, Watts};

fn power() -> PowerModel {
    PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())
}

/// Runs one disk through `gaps.len() + 1` requests whose inter-request
/// idle gaps are exactly `gaps`, and returns the *idle-side* energy
/// (everything except request service). The simulation finishes at the
/// last completion, so no trailing idle is accounted.
fn sim_idle_energy(gaps_secs: &[u64], dpm: DpmPolicy) -> f64 {
    let mut disk = DiskSim::new(DiskId::new(0), power(), ServiceModel::default(), dpm);
    let mut t = SimTime::from_secs(1);
    for (i, &g) in gaps_secs.iter().enumerate() {
        let served = disk.service(t, ServiceRequest::single(BlockNo::new(i as u64)));
        t = served.completion + SimDuration::from_secs(g);
    }
    // The final request closes the last gap.
    let served = disk.service(t, ServiceRequest::single(BlockNo::new(999)));
    disk.finish(served.completion);
    let r = disk.report();
    r.total_energy().as_joules() - r.service_energy.as_joules()
}

/// The Oracle state machine's per-gap energy differs from the Figure-2
/// line `LE(gap)` by exactly `P_mode × (transition time)` — the line
/// model charges the resting power across the *whole* gap, the machine
/// only across the residency. This test pins that relation gap by gap.
#[test]
fn oracle_sim_energy_matches_the_envelope_up_to_transition_residency() {
    let model = power();
    let gaps: [u64; 6] = [5, 14, 25, 40, 120, 700];
    // First request arrives at t = 1 s: one second of full-speed idle
    // precedes it, then each gap contributes its envelope energy minus
    // the resting power over the transition windows.
    let mut expected = 10.2;
    for g in gaps {
        let gap = SimDuration::from_secs(g);
        let mode = model.oracle_mode_for_gap(gap);
        let spec = model.mode(mode);
        let line = model.energy_line(mode, gap).as_joules();
        let correction =
            spec.power.as_watts() * (spec.spin_down.time + spec.spin_up.time).as_secs_f64();
        expected += line - correction;
    }
    let simulated = sim_idle_energy(&gaps, DpmPolicy::Oracle);
    assert!(
        (simulated - expected).abs() < 1e-6,
        "sim {simulated} vs analytic {expected}"
    );
}

/// The Practical state machine tracks the analytic threshold-ladder
/// energy within the (small, bounded) spin-down-residency difference.
#[test]
fn practical_sim_energy_tracks_the_analytic_ladder() {
    let model = power();
    let gaps: [u64; 7] = [3, 12, 15, 22, 36, 100, 400];
    let simulated = sim_idle_energy(&gaps, DpmPolicy::Practical) - 10.2; // minus lead-in idle second
    let analytic: f64 = gaps
        .iter()
        .map(|&g| {
            model
                .practical_idle_energy(SimDuration::from_secs(g))
                .as_joules()
        })
        .sum();
    // The machine spends each spin-down window at transition energy only,
    // while the analytic form also charges the destination mode's power
    // there; the gap-wise difference is bounded by idle-power × total
    // spin-down time (1.5 s per full descent).
    let bound = gaps.len() as f64 * 10.2 * 1.5;
    assert!(
        simulated <= analytic + 1e-6,
        "sim {simulated} must not exceed analytic {analytic}"
    );
    assert!(
        analytic - simulated <= bound,
        "sim {simulated} vs analytic {analytic}: gap beyond transition residency"
    );
}

/// 2-competitiveness end-to-end: on any gap schedule, the Practical
/// machine consumes at most twice the Oracle machine (plus nothing).
#[test]
fn practical_machine_is_2_competitive_with_oracle_machine() {
    for gaps in [
        vec![5u64, 9, 13, 17, 21, 50],
        vec![11, 11, 11, 11],
        vec![100, 3, 100, 3, 100],
        vec![700, 1, 2, 700],
    ] {
        let oracle = sim_idle_energy(&gaps, DpmPolicy::Oracle);
        let practical = sim_idle_energy(&gaps, DpmPolicy::Practical);
        assert!(practical >= oracle - 1e-6);
        assert!(
            practical <= 2.0 * oracle + 1e-6,
            "gaps {gaps:?}: practical {practical} oracle {oracle}"
        );
    }
}

/// The exhaustive minimum-energy schedule lower-bounds every implemented
/// policy on small instances — including the power-aware ones.
#[test]
fn exhaustive_optimum_lower_bounds_every_policy() {
    let energy_fn = threshold_energy(Watts::new(1.0), Watts::new(0.0), SimDuration::from_secs(10));
    // Deterministic pseudo-random small instances.
    let mut state = 0xC0FFEEu64;
    let mut rand = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m
    };
    for round in 0..12 {
        let n = 8 + rand(6) as usize;
        let mut t = Trace::new(2);
        let mut time = 0u64;
        for _ in 0..n {
            time += 1 + rand(12);
            t.push(Record::new(
                SimTime::from_secs(time),
                BlockId::new(DiskId::new(rand(2) as u32), BlockNo::new(rand(6))),
                IoOp::Read,
            ));
        }
        let horizon = SimTime::from_secs(time + 15);
        let capacity = 2 + (round % 2) as usize;
        let optimal = min_energy(&t, capacity, horizon, Joules::ZERO, &energy_fn);

        let policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(Lru::new()),
            Box::new(Fifo::new()),
            Box::new(Belady::new(&t)),
            Box::new(Opg::new(&t, power(), OpgDpm::Oracle, Joules::ZERO)),
        ];
        for policy in policies {
            let name = policy.name();
            let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
            let mut miss_times: Vec<Vec<SimTime>> = vec![Vec::new(), Vec::new()];
            let mut effects = Vec::new();
            for r in &t {
                if !cache.access(r, |_| false, &mut effects).hit {
                    miss_times[r.block.disk().as_usize()].push(r.time);
                }
            }
            let energy: f64 = miss_times
                .iter()
                .map(|m| miss_sequence_energy(m, horizon, Joules::ZERO, &energy_fn).as_joules())
                .sum();
            assert!(
                optimal.energy.as_joules() <= energy + 1e-9,
                "round {round}: optimal {} must lower-bound {name} ({energy})",
                optimal.energy
            );
        }
    }
}

/// The sum of a report's per-mode energies reproduces `power × time`
/// mode by mode (no hidden joules).
#[test]
fn per_mode_energy_is_power_times_time() {
    let model = power();
    let mut disk = DiskSim::new(
        DiskId::new(0),
        model.clone(),
        ServiceModel::default(),
        DpmPolicy::Practical,
    );
    let mut t = SimTime::from_secs(1);
    for (i, g) in [7u64, 18, 33, 120, 15].into_iter().enumerate() {
        let served = disk.service(t, ServiceRequest::single(BlockNo::new(i as u64 * 999)));
        t = served.completion + SimDuration::from_secs(g);
    }
    disk.finish(t);
    let r = disk.report();
    for (id, spec) in model.modes() {
        let expected = spec.power.as_watts() * r.mode_time[id.index()].as_secs_f64();
        let actual = r.mode_energy[id.index()].as_joules();
        assert!(
            (expected - actual).abs() < 1e-6,
            "{id}: {actual} vs {expected}"
        );
    }
    // And the disk did visit low-power modes in this schedule.
    assert!(r.mode_time[ModeId::new(1).index()] > SimDuration::ZERO);
}
