//! Property-based tests over the whole stack: random traces, random
//! model parameters, random log traffic.
//!
//! Each property runs against 64 deterministically-seeded random cases
//! (seeds 0..64 through the first-party `rand` shim), replacing the
//! previous proptest harness so the suite needs no registry crates.
//! On failure the assert message carries the seed, which reproduces the
//! exact case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pc_cache::policy::{Belady, Fifo, Lru, Opg, OpgDpm, PaLru, PaLruConfig};
use pc_cache::wtdu::LogSpace;
use pc_cache::{
    BlockCache, BlockTable, BloomFilter, IntervalHistogram, ReplacementPolicy, WritePolicy,
};
use pc_diskmodel::{DiskPowerSpec, ModeId, PowerModel};
use pc_trace::{IoOp, Record, Trace};
use pc_units::{BlockId, BlockNo, DiskId, Joules, SimDuration, SimTime};

const CASES: u64 = 64;

/// A small random multi-disk trace (sorted times, ≤ 3 disks, ≤ 30
/// distinct blocks, mixed reads/writes).
fn gen_trace(rng: &mut StdRng, max_len: usize) -> Trace {
    let len = rng.gen_range(1..max_len);
    let mut raw: Vec<(u64, u32, u64, bool)> = (0..len)
        .map(|_| {
            (
                rng.gen_range(0..500u64),
                rng.gen_range(0..3u32),
                rng.gen_range(0..30u64),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    raw.sort_unstable();
    let mut t = Trace::new(3);
    for (s, d, b, w) in raw {
        t.push(Record::new(
            SimTime::from_secs(s),
            BlockId::new(DiskId::new(d), BlockNo::new(b)),
            if w { IoOp::Write } else { IoOp::Read },
        ));
    }
    t
}

/// Like [`gen_trace`] but with multi-block requests (1–4 blocks each).
fn gen_multiblock_trace(rng: &mut StdRng, max_len: usize) -> Trace {
    let len = rng.gen_range(1..max_len);
    let mut raw: Vec<(u64, u32, u64, u64, bool)> = (0..len)
        .map(|_| {
            (
                rng.gen_range(0..500u64),
                rng.gen_range(0..3u32),
                rng.gen_range(0..30u64),
                rng.gen_range(1..5u64),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    raw.sort_unstable();
    let mut t = Trace::new(3);
    for (s, d, b, len, w) in raw {
        t.push(Record {
            time: SimTime::from_secs(s),
            block: BlockId::new(DiskId::new(d), BlockNo::new(b)),
            blocks: len,
            op: if w { IoOp::Write } else { IoOp::Read },
        });
    }
    t
}

fn misses(trace: &Trace, capacity: usize, policy: Box<dyn ReplacementPolicy>) -> u64 {
    let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
    let mut fx = Vec::new();
    trace
        .iter()
        .map(|r| u64::from(!cache.access(r, |_| false, &mut fx).hit))
        .sum()
}

fn power() -> PowerModel {
    PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())
}

/// Belady's MIN never misses more than any on-line or power-aware
/// policy, on any trace and cache size.
#[test]
fn belady_is_miss_minimal() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_trace(&mut rng, 120);
        let capacity = rng.gen_range(1..12usize);
        let belady = misses(&trace, capacity, Box::new(Belady::new(&trace)));
        assert!(
            belady <= misses(&trace, capacity, Box::new(Lru::new())),
            "seed {seed}"
        );
        assert!(
            belady <= misses(&trace, capacity, Box::new(Fifo::new())),
            "seed {seed}"
        );
        assert!(
            belady
                <= misses(
                    &trace,
                    capacity,
                    Box::new(PaLru::new(PaLruConfig::default()))
                ),
            "seed {seed}"
        );
    }
}

/// OPG's incremental (indexed) eviction engine is behaviourally
/// identical to the naive full-rescan reference, step by step.
#[test]
fn opg_indexed_matches_naive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_trace(&mut rng, 100);
        let capacity = rng.gen_range(1..8usize);
        let eps = [0.0, 10.0, 1e15][rng.gen_range(0..3usize)];
        let mk = |naive: bool| {
            let o = Opg::new(&trace, power(), OpgDpm::Oracle, Joules::new(eps));
            let o = if naive { o.with_naive_eviction() } else { o };
            BlockCache::new(capacity, Box::new(o), WritePolicy::WriteBack)
        };
        let mut fast = mk(false);
        let mut slow = mk(true);
        let (mut fx_a, mut fx_b) = (Vec::new(), Vec::new());
        for r in &trace {
            let a = fast.access(r, |_| false, &mut fx_a);
            let b = slow.access(r, |_| false, &mut fx_b);
            assert_eq!(a.hit, b.hit, "seed {seed}");
            assert_eq!(a.evicted, b.evicted, "seed {seed}");
        }
    }
}

/// The cache never exceeds capacity and never evicts on hits, for
/// every policy.
#[test]
fn capacity_invariant_for_all_policies() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_trace(&mut rng, 100);
        let capacity = rng.gen_range(1..10usize);
        let policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(Lru::new()),
            Box::new(Fifo::new()),
            Box::new(Belady::new(&trace)),
            Box::new(Opg::new(&trace, power(), OpgDpm::Practical, Joules::ZERO)),
            Box::new(PaLru::new(PaLruConfig::default())),
        ];
        for policy in policies {
            let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
            let mut fx = Vec::new();
            for r in &trace {
                let res = cache.access(r, |_| false, &mut fx);
                assert!(cache.len() <= capacity, "seed {seed}");
                if res.hit {
                    assert!(res.evicted.is_none(), "seed {seed}");
                }
                if let Some(v) = res.evicted {
                    assert!(
                        v != r.block,
                        "seed {seed}: never evict the block being inserted"
                    );
                }
            }
        }
    }
}

/// The Figure-2 math holds for arbitrary (sane) disk specs: the
/// ladder is strictly increasing and the practical idle energy stays
/// within [oracle, 2×oracle].
#[test]
fn practical_dpm_is_2_competitive_for_random_specs() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spec = DiskPowerSpec::ultrastar_36z15();
        spec.spin_up_energy = Joules::new(rng.gen_range(20.0..700.0));
        spec.idle_power = pc_units::Watts::new(rng.gen_range(6.0..15.0));
        spec.standby_power = pc_units::Watts::new(rng.gen_range(0.5..3.0));
        let model = PowerModel::multi_speed(&spec);
        for w in model.ladder().windows(2) {
            assert!(w[0].at_idle < w[1].at_idle, "seed {seed}");
            assert!(w[0].mode < w[1].mode, "seed {seed}");
        }
        for _ in 0..rng.gen_range(1..20usize) {
            let g = rng.gen_range(1..10_000u64);
            let gap = SimDuration::from_secs(g);
            let oracle = model.lower_envelope(gap).as_joules();
            let practical = model.practical_idle_energy(gap).as_joules();
            assert!(practical >= oracle - 1e-9, "seed {seed}");
            assert!(
                practical <= 2.0 * oracle + 1e-9,
                "seed {seed}, gap {g}s: {practical} vs {oracle}"
            );
        }
    }
}

/// OPG penalties are non-negative for arbitrary deterministic-miss
/// layouts (the sub-additivity argument), probed through the public
/// eviction behaviour: with ε = 0 the chosen victim's penalty is the
/// minimum, so OPG never crashes or violates cache invariants.
#[test]
fn opg_runs_cleanly_on_any_trace() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_trace(&mut rng, 150);
        let capacity = rng.gen_range(1..6usize);
        for dpm in [OpgDpm::Oracle, OpgDpm::Practical] {
            let o = Opg::new(&trace, power(), dpm, Joules::ZERO);
            let _ = misses(&trace, capacity, Box::new(o));
        }
    }
}

/// Multi-block requests preserve the structural invariants: the
/// capacity bound holds, and the off-line cursor expansion agrees
/// with the cache's per-block iteration (Belady panics on any
/// mismatch). MIN's request-level miss count is *not* asserted
/// against LRU here: MIN is optimal per block, and all-blocks-hit
/// request accounting can reorder the two.
#[test]
fn multiblock_requests_preserve_invariants() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_multiblock_trace(&mut rng, 80);
        let capacity = rng.gen_range(2..10usize);
        let _ = misses(&trace, capacity, Box::new(Belady::new(&trace)));
        let mut cache = BlockCache::new(capacity, Box::new(Lru::new()), WritePolicy::WriteBack);
        let mut fx = Vec::new();
        for r in &trace {
            let _ = cache.access(r, |_| false, &mut fx);
            assert!(cache.len() <= capacity, "seed {seed}");
        }
    }
}

/// Multi-block traces survive the text format round-trip too.
#[test]
fn multiblock_trace_serialization_round_trips() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_multiblock_trace(&mut rng, 60);
        let mut buf = Vec::new();
        trace.to_writer(&mut buf).expect("write to memory");
        let back = Trace::from_reader(buf.as_slice()).expect("parse own output");
        assert_eq!(back, trace, "seed {seed}");
    }
}

/// The trace text format round-trips every trace exactly.
#[test]
fn trace_serialization_round_trips() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_trace(&mut rng, 150);
        let mut buf = Vec::new();
        trace.to_writer(&mut buf).expect("write to memory");
        let back = Trace::from_reader(buf.as_slice()).expect("parse own output");
        assert_eq!(back, trace, "seed {seed}");
    }
}

/// The scan-resistant policies (ARC, MQ, LIRS, 2Q) run cleanly on any
/// trace, hold the capacity invariant, and never evict the incoming
/// block.
#[test]
fn alternative_policies_hold_invariants() {
    use pc_cache::policy::{ArcPolicy, Lirs, Mq, TwoQ};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_trace(&mut rng, 120);
        let capacity = rng.gen_range(1..10usize);
        let policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(ArcPolicy::new(capacity)),
            Box::new(Mq::new(capacity)),
            Box::new(Lirs::new(capacity)),
            Box::new(TwoQ::new(capacity)),
        ];
        for policy in policies {
            let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
            let mut fx = Vec::new();
            for r in &trace {
                let res = cache.access(r, |_| false, &mut fx);
                assert!(cache.len() <= capacity, "seed {seed}");
                if let Some(v) = res.evicted {
                    assert!(v != r.block, "seed {seed}");
                }
            }
        }
    }
}

/// Bloom filters never produce false negatives.
#[test]
fn bloom_has_no_false_negatives() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bloom = BloomFilter::new(1 << 14, 4);
        let ids: Vec<BlockId> = (0..rng.gen_range(1..200usize))
            .map(|_| {
                BlockId::new(
                    DiskId::new(rng.gen_range(0..4u32)),
                    BlockNo::new(rng.gen_range(0..10_000u64)),
                )
            })
            .collect();
        for &id in &ids {
            bloom.insert_check(id);
        }
        for &id in &ids {
            assert!(bloom.contains(id), "seed {seed}: lost {id}");
        }
    }
}

/// Histogram quantiles are monotone in p and bounded by recorded data.
#[test]
fn histogram_quantiles_are_monotone() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = IntervalHistogram::standard();
        for _ in 0..rng.gen_range(1..200usize) {
            h.record(SimDuration::from_millis(rng.gen_range(1..100_000u64)));
        }
        let mut last = SimDuration::ZERO;
        for p in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let q = h.quantile(p);
            assert!(q >= last, "seed {seed}");
            last = q;
        }
    }
}

/// Log recovery returns exactly the pending generation: nothing
/// flushed, everything appended since the last flush (latest value
/// per block).
#[test]
fn log_recovery_is_exact() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = LogSpace::new(3);
        let mut pending: std::collections::HashMap<BlockId, u64> = std::collections::HashMap::new();
        let mut value = 0u64;
        for _ in 0..rng.gen_range(1..100usize) {
            let disk = DiskId::new(rng.gen_range(0..3u32));
            let b = rng.gen_range(0..10u64);
            if rng.gen_bool(0.5) {
                log.flush_region(disk);
                pending.retain(|k, _| k.disk() != disk);
            } else {
                value += 1;
                log.append(disk, BlockNo::new(b), value);
                pending.insert(BlockId::new(disk, BlockNo::new(b)), value);
            }
        }
        let recovered: std::collections::HashMap<BlockId, u64> =
            log.recover().into_iter().collect();
        assert_eq!(recovered, pending, "seed {seed}");
    }
}

/// A PA-LRU with an over-generous priority classification still obeys
/// LRU semantics within each stack (sanity against starvation bugs).
#[test]
fn pa_lru_eviction_respects_stack_order() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_trace(&mut rng, 80);
        let mut pa = PaLru::new(PaLruConfig::default());
        let mut table = BlockTable::new();
        for r in &trace {
            let slot = table.lookup(r.block);
            pa.on_access(slot, r.block, r.time);
            if slot.is_none() {
                pa.on_insert(table.intern(r.block), r.block, r.time);
            }
        }
        // Evicting everything terminates and returns each block once.
        let mut evicted = std::collections::HashSet::new();
        for _ in 0..table.len() {
            let slot = pa.evict();
            let v = table.block_of(slot);
            table.release(slot);
            assert!(evicted.insert(v), "seed {seed}: double eviction of {v}");
        }
    }
}

/// The slot-interned, intrusive-list LRU is eviction-order-identical to
/// the pre-slot reference design — a `BTreeMap` of monotone sequence
/// numbers — when both are driven by the cache's exact protocol
/// (evict-before-insert on a full miss) over random traces.
#[test]
fn slot_lru_matches_btreemap_reference() {
    use std::collections::{BTreeMap, HashMap};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = gen_trace(&mut rng, 200);
        let capacity = rng.gen_range(1..12usize);

        let mut lru = Lru::new();
        let mut table = BlockTable::new();

        let mut seq = 0u64;
        let mut by_seq: BTreeMap<u64, BlockId> = BTreeMap::new();
        let mut seq_of: HashMap<BlockId, u64> = HashMap::new();

        for r in &trace {
            // Reference step: refresh the sequence number; on a miss past
            // capacity, the smallest sequence number is the victim.
            seq += 1;
            let ref_evicted = match seq_of.insert(r.block, seq) {
                Some(old) => {
                    by_seq.remove(&old);
                    by_seq.insert(seq, r.block);
                    None
                }
                None => {
                    let mut evicted = None;
                    if seq_of.len() > capacity {
                        let (&oldest, &victim) = by_seq.iter().next().expect("non-empty");
                        by_seq.remove(&oldest);
                        seq_of.remove(&victim);
                        evicted = Some(victim);
                    }
                    by_seq.insert(seq, r.block);
                    evicted
                }
            };

            // Slot-protocol step, exactly as BlockCache drives it.
            let slot = table.lookup(r.block);
            lru.on_access(slot, r.block, r.time);
            let new_evicted = if slot.is_none() {
                let mut evicted = None;
                if table.len() >= capacity {
                    let v = lru.evict();
                    let b = table.block_of(v);
                    table.release(v);
                    evicted = Some(b);
                }
                lru.on_insert(table.intern(r.block), r.block, r.time);
                evicted
            } else {
                None
            };
            assert_eq!(new_evicted, ref_evicted, "seed {seed}");
        }

        // Drain both to empty: the full eviction order must also agree.
        while let Some((&oldest, &victim)) = by_seq.iter().next() {
            by_seq.remove(&oldest);
            seq_of.remove(&victim);
            let slot = lru.evict();
            let b = table.block_of(slot);
            table.release(slot);
            assert_eq!(b, victim, "seed {seed}: drain order diverged");
        }
        assert!(lru.is_empty(), "seed {seed}");
    }
}

/// `break_even` must be consistent with the envelope: at the break-even
/// gap, the mode's line meets the full-speed line.
#[test]
fn break_even_meets_the_idle_line() {
    let model = power();
    for (id, _) in model.modes() {
        if id.is_full_speed() {
            continue;
        }
        let be = model.break_even(id);
        let at_idle = model.energy_line(ModeId::FULL_SPEED, be).as_joules();
        let at_mode = model.energy_line(id, be).as_joules();
        assert!(
            (at_idle - at_mode).abs() < 1e-4, // break-even rounds to 1 µs
            "{id}: {at_idle} vs {at_mode}"
        );
    }
}
