//! Property-based tests over the whole stack: random traces, random
//! model parameters, random log traffic.

use proptest::prelude::*;

use pc_cache::policy::{Belady, Fifo, Lru, Opg, OpgDpm, PaLru, PaLruConfig};
use pc_cache::wtdu::LogSpace;
use pc_cache::{BlockCache, BloomFilter, IntervalHistogram, ReplacementPolicy, WritePolicy};
use pc_diskmodel::{DiskPowerSpec, ModeId, PowerModel};
use pc_trace::{IoOp, Record, Trace};
use pc_units::{BlockId, BlockNo, DiskId, Joules, SimDuration, SimTime};

/// Strategy: a small random multi-disk trace (sorted times, ≤ 3 disks,
/// ≤ 30 distinct blocks, mixed reads/writes).
fn trace_strategy(max_len: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u64..500, 0u32..3, 0u64..30, proptest::bool::ANY), 1..max_len)
        .prop_map(|mut raw| {
            raw.sort();
            let mut t = Trace::new(3);
            for (s, d, b, w) in raw {
                t.push(Record::new(
                    SimTime::from_secs(s),
                    BlockId::new(DiskId::new(d), BlockNo::new(b)),
                    if w { IoOp::Write } else { IoOp::Read },
                ));
            }
            t
        })
}

/// Strategy: like [`trace_strategy`] but with multi-block requests
/// (1–4 blocks each).
fn multiblock_trace_strategy(max_len: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (0u64..500, 0u32..3, 0u64..30, 1u64..5, proptest::bool::ANY),
        1..max_len,
    )
    .prop_map(|mut raw| {
        raw.sort();
        let mut t = Trace::new(3);
        for (s, d, b, len, w) in raw {
            t.push(Record {
                time: SimTime::from_secs(s),
                block: BlockId::new(DiskId::new(d), BlockNo::new(b)),
                blocks: len,
                op: if w { IoOp::Write } else { IoOp::Read },
            });
        }
        t
    })
}

fn misses(trace: &Trace, capacity: usize, policy: Box<dyn ReplacementPolicy>) -> u64 {
    let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
    trace
        .iter()
        .map(|r| u64::from(!cache.access(r, |_| false).hit))
        .sum()
}

fn power() -> PowerModel {
    PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Belady's MIN never misses more than any on-line or power-aware
    /// policy, on any trace and cache size.
    #[test]
    fn belady_is_miss_minimal(trace in trace_strategy(120), capacity in 1usize..12) {
        let belady = misses(&trace, capacity, Box::new(Belady::new(&trace)));
        prop_assert!(belady <= misses(&trace, capacity, Box::new(Lru::new())));
        prop_assert!(belady <= misses(&trace, capacity, Box::new(Fifo::new())));
        prop_assert!(belady <= misses(&trace, capacity, Box::new(PaLru::new(PaLruConfig::default()))));
    }

    /// OPG's incremental (indexed) eviction engine is behaviourally
    /// identical to the naive full-rescan reference, step by step.
    #[test]
    fn opg_indexed_matches_naive(trace in trace_strategy(100), capacity in 1usize..8,
                                 eps in prop_oneof![Just(0.0), Just(10.0), Just(1e15)]) {
        let mk = |naive: bool| {
            let o = Opg::new(&trace, power(), OpgDpm::Oracle, Joules::new(eps));
            let o = if naive { o.with_naive_eviction() } else { o };
            BlockCache::new(capacity, Box::new(o), WritePolicy::WriteBack)
        };
        let mut fast = mk(false);
        let mut slow = mk(true);
        for r in &trace {
            let a = fast.access(r, |_| false);
            let b = slow.access(r, |_| false);
            prop_assert_eq!(a.hit, b.hit);
            prop_assert_eq!(a.evicted, b.evicted);
        }
    }

    /// The cache never exceeds capacity and never evicts on hits, for
    /// every policy.
    #[test]
    fn capacity_invariant_for_all_policies(trace in trace_strategy(100), capacity in 1usize..10) {
        let policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(Lru::new()),
            Box::new(Fifo::new()),
            Box::new(Belady::new(&trace)),
            Box::new(Opg::new(&trace, power(), OpgDpm::Practical, Joules::ZERO)),
            Box::new(PaLru::new(PaLruConfig::default())),
        ];
        for policy in policies {
            let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
            for r in &trace {
                let res = cache.access(r, |_| false);
                prop_assert!(cache.len() <= capacity);
                if res.hit {
                    prop_assert!(res.evicted.is_none());
                }
                if let Some(v) = res.evicted {
                    prop_assert!(v != r.block, "never evict the block being inserted");
                }
            }
        }
    }

    /// The Figure-2 math holds for arbitrary (sane) disk specs: the
    /// ladder is strictly increasing and the practical idle energy stays
    /// within [oracle, 2×oracle].
    #[test]
    fn practical_dpm_is_2_competitive_for_random_specs(
        spin_up_j in 20.0f64..700.0,
        idle_w in 6.0f64..15.0,
        standby_w in 0.5f64..3.0,
        gaps in proptest::collection::vec(1u64..10_000, 1..20),
    ) {
        let mut spec = DiskPowerSpec::ultrastar_36z15();
        spec.spin_up_energy = Joules::new(spin_up_j);
        spec.idle_power = pc_units::Watts::new(idle_w);
        spec.standby_power = pc_units::Watts::new(standby_w);
        let model = PowerModel::multi_speed(&spec);
        for w in model.ladder().windows(2) {
            prop_assert!(w[0].at_idle < w[1].at_idle);
            prop_assert!(w[0].mode < w[1].mode);
        }
        for g in gaps {
            let gap = SimDuration::from_secs(g);
            let oracle = model.lower_envelope(gap).as_joules();
            let practical = model.practical_idle_energy(gap).as_joules();
            prop_assert!(practical >= oracle - 1e-9);
            prop_assert!(practical <= 2.0 * oracle + 1e-9, "gap {g}s: {practical} vs {oracle}");
        }
    }

    /// OPG penalties are non-negative for arbitrary deterministic-miss
    /// layouts (the sub-additivity argument), probed through the public
    /// eviction behaviour: with ε = 0 the chosen victim's penalty is the
    /// minimum, so OPG never crashes or violates cache invariants.
    #[test]
    fn opg_runs_cleanly_on_any_trace(trace in trace_strategy(150), capacity in 1usize..6) {
        for dpm in [OpgDpm::Oracle, OpgDpm::Practical] {
            let o = Opg::new(&trace, power(), dpm, Joules::ZERO);
            let _ = misses(&trace, capacity, Box::new(o));
        }
    }

    /// Multi-block requests preserve the structural invariants: the
    /// capacity bound holds, and the off-line cursor expansion agrees
    /// with the cache's per-block iteration (Belady panics on any
    /// mismatch). MIN's request-level miss count is *not* asserted
    /// against LRU here: MIN is optimal per block, and all-blocks-hit
    /// request accounting can reorder the two.
    #[test]
    fn multiblock_requests_preserve_invariants(
        trace in multiblock_trace_strategy(80),
        capacity in 2usize..10,
    ) {
        let _ = misses(&trace, capacity, Box::new(Belady::new(&trace)));
        let mut cache = BlockCache::new(capacity, Box::new(Lru::new()), WritePolicy::WriteBack);
        for r in &trace {
            let _ = cache.access(r, |_| false);
            prop_assert!(cache.len() <= capacity);
        }
    }

    /// Multi-block traces survive the text format round-trip too.
    #[test]
    fn multiblock_trace_serialization_round_trips(trace in multiblock_trace_strategy(60)) {
        let mut buf = Vec::new();
        trace.to_writer(&mut buf).expect("write to memory");
        let back = Trace::from_reader(buf.as_slice()).expect("parse own output");
        prop_assert_eq!(back, trace);
    }

    /// The trace text format round-trips every trace exactly.
    #[test]
    fn trace_serialization_round_trips(trace in trace_strategy(150)) {
        let mut buf = Vec::new();
        trace.to_writer(&mut buf).expect("write to memory");
        let back = Trace::from_reader(buf.as_slice()).expect("parse own output");
        prop_assert_eq!(back, trace);
    }

    /// The scan-resistant policies (ARC, MQ, LIRS, 2Q) run cleanly on any
    /// trace, hold the capacity invariant, and never evict the incoming
    /// block.
    #[test]
    fn alternative_policies_hold_invariants(trace in trace_strategy(120), capacity in 1usize..10) {
        use pc_cache::policy::{ArcPolicy, Lirs, Mq, TwoQ};
        let policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(ArcPolicy::new(capacity)),
            Box::new(Mq::new(capacity)),
            Box::new(Lirs::new(capacity)),
            Box::new(TwoQ::new(capacity)),
        ];
        for policy in policies {
            let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
            for r in &trace {
                let res = cache.access(r, |_| false);
                prop_assert!(cache.len() <= capacity);
                if let Some(v) = res.evicted {
                    prop_assert!(v != r.block);
                }
            }
        }
    }

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_has_no_false_negatives(blocks in proptest::collection::vec((0u32..4, 0u64..10_000), 1..200)) {
        let mut bloom = BloomFilter::new(1 << 14, 4);
        let ids: Vec<BlockId> = blocks
            .into_iter()
            .map(|(d, b)| BlockId::new(DiskId::new(d), BlockNo::new(b)))
            .collect();
        for &id in &ids {
            bloom.insert_check(id);
        }
        for &id in &ids {
            prop_assert!(bloom.contains(id));
        }
    }

    /// Histogram quantiles are monotone in p and bounded by recorded data.
    #[test]
    fn histogram_quantiles_are_monotone(samples in proptest::collection::vec(1u64..100_000, 1..200)) {
        let mut h = IntervalHistogram::standard();
        for s in &samples {
            h.record(SimDuration::from_millis(*s));
        }
        let mut last = SimDuration::ZERO;
        for p in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let q = h.quantile(p);
            prop_assert!(q >= last);
            last = q;
        }
    }

    /// Log recovery returns exactly the pending generation: nothing
    /// flushed, everything appended since the last flush (latest value
    /// per block).
    #[test]
    fn log_recovery_is_exact(ops in proptest::collection::vec((0u32..3, 0u64..10, proptest::bool::ANY), 1..100)) {
        let mut log = LogSpace::new(3);
        let mut pending: std::collections::HashMap<BlockId, u64> = std::collections::HashMap::new();
        let mut value = 0u64;
        for (d, b, flush) in ops {
            let disk = DiskId::new(d);
            if flush {
                log.flush_region(disk);
                pending.retain(|k, _| k.disk() != disk);
            } else {
                value += 1;
                log.append(disk, BlockNo::new(b), value);
                pending.insert(BlockId::new(disk, BlockNo::new(b)), value);
            }
        }
        let recovered: std::collections::HashMap<BlockId, u64> = log.recover().into_iter().collect();
        prop_assert_eq!(recovered, pending);
    }

    /// A PA-LRU with an over-generous priority classification still obeys
    /// LRU semantics within each stack (sanity against starvation bugs).
    #[test]
    fn pa_lru_eviction_respects_stack_order(trace in trace_strategy(80)) {
        let mut pa = PaLru::new(PaLruConfig::default());
        let mut resident = std::collections::HashSet::new();
        let mut inserted_order = Vec::new();
        for r in &trace {
            let hit = resident.contains(&r.block);
            pa.on_access(r.block, r.time, hit);
            if !hit {
                pa.on_insert(r.block, r.time);
                resident.insert(r.block);
                inserted_order.push(r.block);
            }
        }
        // Evicting everything terminates and returns each block once.
        let mut evicted = std::collections::HashSet::new();
        for _ in 0..resident.len() {
            let v = pa.evict();
            prop_assert!(resident.contains(&v));
            prop_assert!(evicted.insert(v), "double eviction of {v}");
        }
    }
}

/// `break_even` must be consistent with the envelope: at the break-even
/// gap, the mode's line meets the full-speed line.
#[test]
fn break_even_meets_the_idle_line() {
    let model = power();
    for (id, _) in model.modes() {
        if id.is_full_speed() {
            continue;
        }
        let be = model.break_even(id);
        let at_idle = model.energy_line(ModeId::FULL_SPEED, be).as_joules();
        let at_mode = model.energy_line(id, be).as_joules();
        assert!(
            (at_idle - at_mode).abs() < 1e-4, // break-even rounds to 1 µs
            "{id}: {at_idle} vs {at_mode}"
        );
    }
}
