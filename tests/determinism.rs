//! Reproducibility: the whole stack is deterministic given a seed, and
//! distinct seeds genuinely vary the workload.

use pc_sim::{run_replacement, PolicySpec, SimConfig};
use pc_trace::{CelloConfig, OltpConfig, SyntheticConfig};

#[test]
fn identical_seeds_give_identical_reports() {
    for policy in [PolicySpec::Lru, PolicySpec::PaLru, PolicySpec::Belady] {
        let run = |seed| {
            let trace = OltpConfig::default().with_requests(4_000).generate(seed);
            run_replacement(&trace, &policy, &SimConfig::default())
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "{} must be deterministic", a.policy);
    }
}

#[test]
fn different_seeds_change_the_workload_but_not_the_shape() {
    let energies: Vec<f64> = (0..3)
        .map(|seed| {
            let trace = OltpConfig::default().with_requests(4_000).generate(seed);
            run_replacement(&trace, &PolicySpec::Lru, &SimConfig::default())
                .total_energy()
                .as_joules()
        })
        .collect();
    assert!(energies[0] != energies[1] || energies[1] != energies[2]);
    // Same order of magnitude: the generator is stable across seeds.
    let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = energies.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 1.5, "energies vary too wildly: {energies:?}");
}

/// The sweep executor's contract: the worker count is invisible in the
/// results. Serialized reports (which exclude self-timing) from a
/// `--jobs 1` run must be byte-identical to a `--jobs 8` run.
#[test]
fn sweep_results_are_identical_for_any_job_count() {
    use pc_experiments::{sweep, Params};

    let trace = OltpConfig::default().with_requests(4_000).generate(42);
    let specs = vec![
        PolicySpec::Lru,
        PolicySpec::PaLru,
        PolicySpec::Fifo,
        PolicySpec::Belady,
    ];
    let reports_at = |jobs: usize| {
        let params = Params::quick().with_jobs(jobs);
        sweep::over(&params, specs.clone(), |spec| {
            run_replacement(&trace, spec, &SimConfig::default()).to_json()
        })
    };
    let serial: Vec<String> = reports_at(1);
    let parallel: Vec<String> = reports_at(8);
    assert_eq!(
        serial, parallel,
        "jobs=1 and jobs=8 must serialize identically"
    );
}

/// The determinism bridge for the binary trace format: exporting a
/// workload to a `.pct` file and replaying it through the simulator
/// must serialize byte-identically to the in-memory path, for every
/// family. This is what makes `pc-server --capture` output (and any
/// exported file) a faithful stand-in for the generator it recorded.
#[test]
fn file_backed_replay_matches_the_in_memory_path_byte_for_byte() {
    use pc_experiments::{traceio, Params, TraceKind};
    use pc_trace::{Trace, Workload};

    for name in ["synthetic", "oltp", "cello96"] {
        let workload = Workload::parse(name).unwrap().with_requests(3_000);
        let in_memory: Trace =
            Trace::from_records(workload.disk_count(), workload.stream(42).collect());
        let path =
            std::env::temp_dir().join(format!("pc-bridge-{name}-{}.pct", std::process::id()));
        traceio::export(&workload, 42, &path).unwrap();
        let from_file = pc_tracefile::read_trace(&path).unwrap();

        for policy in [PolicySpec::Lru, PolicySpec::PaLru] {
            let a = run_replacement(&in_memory, &policy, &SimConfig::default());
            let b = run_replacement(&from_file, &policy, &SimConfig::default());
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{name}/{} file-backed replay must match in-memory",
                a.policy
            );
        }

        // The Params override routes every TraceKind to the file.
        let via_params = Params::quick().with_trace_file(path.clone());
        assert_eq!(via_params.trace(TraceKind::Oltp), from_file);
        assert_eq!(via_params.trace(TraceKind::Cello), from_file);
        std::fs::remove_file(&path).unwrap();
    }
}

/// The zero-copy ingest contract: simulating straight off a memory map
/// (`run_replacement_stream`, no materialized `Trace`, no sort) must
/// serialize byte-identically to materializing the file through
/// `read_trace`, for every family and for both an on-line and the
/// power-aware policy.
#[test]
fn streaming_off_the_map_matches_the_materialized_path_byte_for_byte() {
    use pc_experiments::traceio;
    use pc_sim::run_replacement_stream;
    use pc_trace::Workload;
    use pc_tracefile::MappedTrace;

    for name in ["synthetic", "oltp", "cello96"] {
        let workload = Workload::parse(name).unwrap().with_requests(3_000);
        let path =
            std::env::temp_dir().join(format!("pc-stream-{name}-{}.pct", std::process::id()));
        traceio::export(&workload, 42, &path).unwrap();
        let materialized = pc_tracefile::read_trace(&path).unwrap();
        let map = MappedTrace::open(&path).unwrap();
        assert!(map.is_time_sorted(), "exports are time-ordered");

        for policy in [PolicySpec::Lru, PolicySpec::PaLru] {
            let a = run_replacement(&materialized, &policy, &SimConfig::default());
            let b = run_replacement_stream(
                map.disk_count(),
                map.records().map(Result::unwrap),
                &policy,
                &SimConfig::default(),
            );
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{name}/{} streaming must match materialized",
                a.policy
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// `TraceSource` picks the streaming path for on-line policies and
/// falls back to one shared materialization for off-line ones — and
/// both routes must serialize identically to the plain in-memory run.
#[test]
fn trace_source_streams_online_and_falls_back_for_offline_policies() {
    use pc_experiments::{traceio, TraceSource};
    use pc_trace::Workload;
    use pc_tracefile::MappedTrace;

    let workload = Workload::parse("oltp").unwrap().with_requests(3_000);
    let path = std::env::temp_dir().join(format!("pc-source-{}.pct", std::process::id()));
    traceio::export(&workload, 42, &path).unwrap();
    let materialized = pc_tracefile::read_trace(&path).unwrap();
    let source = TraceSource::from_map(MappedTrace::open(&path).unwrap());

    // Belady needs the whole future: the source must not stream it.
    assert!(source.streams(&PolicySpec::Lru));
    assert!(!source.streams(&PolicySpec::Belady));

    for policy in [PolicySpec::Lru, PolicySpec::Belady] {
        let a = run_replacement(&materialized, &policy, &SimConfig::default());
        let b = source.run_replacement(&policy, &SimConfig::default());
        assert_eq!(a.to_json(), b.to_json(), "{} via TraceSource", a.policy);
    }
    std::fs::remove_file(&path).unwrap();
}

/// `read_trace`'s sorted fast path: a file written in time order (the
/// common case — every export and finalized capture) must produce
/// exactly the same `Trace` as one whose records arrive shuffled and
/// need the sorting fallback.
#[test]
fn read_trace_sorted_fast_path_is_an_identity() {
    use pc_trace::Workload;

    let workload = Workload::parse("cello96").unwrap().with_requests(2_000);
    let mut records: Vec<pc_trace::Record> = workload.clone().stream(17).collect();
    // Make every timestamp unique so the comparison is insensitive to
    // how the fallback's stable sort breaks ties.
    for (i, r) in records.iter_mut().enumerate() {
        r.time = pc_units::SimTime::from_micros(i as u64 * 5);
    }
    let mut shuffled = records.clone();
    shuffled.reverse();

    let dir = std::env::temp_dir();
    let sorted_path = dir.join(format!("pc-sorted-{}.pct", std::process::id()));
    let shuffled_path = dir.join(format!("pc-shuffled-{}.pct", std::process::id()));
    pc_tracefile::write_records(&sorted_path, workload.disk_count(), records.iter().copied())
        .unwrap();
    pc_tracefile::write_records(
        &shuffled_path,
        workload.disk_count(),
        shuffled.iter().copied(),
    )
    .unwrap();

    let fast = pc_tracefile::read_trace(&sorted_path).unwrap();
    let fallback = pc_tracefile::read_trace(&shuffled_path).unwrap();
    assert_eq!(fast, fallback, "sort-skipping must not change the trace");
    std::fs::remove_file(&sorted_path).unwrap();
    std::fs::remove_file(&shuffled_path).unwrap();
}

#[test]
fn all_generators_are_seed_deterministic() {
    assert_eq!(
        OltpConfig::default().with_requests(1_000).generate(1),
        OltpConfig::default().with_requests(1_000).generate(1)
    );
    assert_eq!(
        CelloConfig::default().with_requests(1_000).generate(1),
        CelloConfig::default().with_requests(1_000).generate(1)
    );
    assert_eq!(
        SyntheticConfig::default().with_requests(1_000).generate(1),
        SyntheticConfig::default().with_requests(1_000).generate(1)
    );
}
