//! End-to-end tests of the serving layer: a real `pc-server` on a
//! loopback socket driven by the real load generator, plus the
//! deterministic in-process path the CI smoke job leans on.

use std::sync::atomic::Ordering;

use pc_server::{parse_stats_json, run_in_process, run_tcp, EngineConfig, LoadgenConfig, Server};
use pc_sim::PolicySpec;
use pc_trace::Workload;
use pc_units::Joules;

#[test]
fn loadgen_drives_a_sharded_server_end_to_end() {
    let shards = 4;
    let engine = EngineConfig::new(shards, 4).with_policy(PolicySpec::PaLru);
    let server = Server::bind("127.0.0.1:0", engine).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let report = run_tcp(&LoadgenConfig {
        conns: 4,
        secs: 0.5,
        ..LoadgenConfig::new(addr)
    })
    .expect("load generation");

    assert!(report.responses > 0, "no responses came back");
    assert_eq!(report.sent, report.responses, "responses were lost");
    assert!(report.hit_ratio() > 0.0, "zipf traffic must hit sometimes");

    // The STATS snapshot parsed and covers every shard with real energy.
    let summary = parse_stats_json(&report.stats_json).expect("stats JSON parses");
    assert_eq!(summary.shard_energy_j.len(), shards);
    assert!(
        summary.shard_energy_j.iter().all(|&e| e > 0.0),
        "every active shard accounts energy: {:?}",
        summary.shard_energy_j
    );
    assert!(summary.requests >= report.responses);

    // Graceful drain: flag, join, closed books in the final snapshot.
    stop.store(true, Ordering::Relaxed);
    let run = daemon.join().expect("daemon thread");
    assert_eq!(run.snapshot.total_requests(), report.responses);
    assert!(run.snapshot.total_energy() > Joules::ZERO);
    // Final (closed-books) energy is at least the live STATS energy.
    assert!(run.snapshot.total_energy().as_joules() >= summary.energy_j - 1e-9);
}

#[test]
fn shutdown_opcode_drains_the_server() {
    let server = Server::bind("127.0.0.1:0", EngineConfig::new(2, 2)).expect("bind");
    let addr = server.local_addr().unwrap().to_string();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));
    pc_server::loadgen::send_shutdown(&addr).expect("shutdown handshake");
    let run = daemon.join().expect("daemon thread");
    assert_eq!(run.snapshot.total_requests(), 0);
}

#[test]
fn in_process_mode_matches_itself_across_runs_for_every_workload() {
    for name in ["synthetic", "oltp", "cello96"] {
        let workload = Workload::parse(name).unwrap().with_requests(3_000);
        let engine = EngineConfig::new(3, workload.disk_count());
        let (r1, h1, s1) = run_in_process(&engine, &workload, 11);
        let (r2, h2, s2) = run_in_process(&engine, &workload, 11);
        assert_eq!(r1, 3_000, "{name}");
        assert_eq!((r1, h1), (r2, h2), "{name}");
        assert_eq!(s1.to_json(), s2.to_json(), "{name}: snapshots diverged");
        assert!(s1.total_energy() > Joules::ZERO, "{name}");
    }
}
