//! End-to-end tests of the serving layer: a real `pc-server` on a
//! loopback socket driven by the real load generator, plus the
//! deterministic in-process path the CI smoke job leans on — including
//! the overload protocol (bounded queues, `BUSY`, retry/backoff) under
//! fault injection.

use std::sync::atomic::Ordering;
use std::time::Duration;

use pc_server::{
    parse_stats_json, run_in_process, run_tcp, EngineConfig, LoadgenConfig, Server, SlowShard,
};
use pc_sim::PolicySpec;
use pc_trace::Workload;
use pc_units::Joules;

#[test]
fn loadgen_drives_a_sharded_server_end_to_end() {
    let shards = 4;
    let engine = EngineConfig::new(shards, 4).with_policy(PolicySpec::PaLru);
    let server = Server::bind("127.0.0.1:0", engine).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let report = run_tcp(&LoadgenConfig {
        conns: 4,
        secs: 0.5,
        ..LoadgenConfig::new(addr)
    })
    .expect("load generation");

    assert!(report.responses > 0, "no responses came back");
    // Every send is answered exactly once: an I/O reply or a BUSY.
    assert_eq!(
        report.sent,
        report.responses + report.busy_rejects,
        "responses were lost"
    );
    assert!(report.hit_ratio() > 0.0, "zipf traffic must hit sometimes");

    // The STATS snapshot parsed and covers every shard with real energy.
    let summary = parse_stats_json(&report.stats_json).expect("stats JSON parses");
    assert_eq!(summary.shard_energy_j.len(), shards);
    assert!(
        summary.shard_energy_j.iter().all(|&e| e > 0.0),
        "every active shard accounts energy: {:?}",
        summary.shard_energy_j
    );
    assert!(summary.requests >= report.responses);

    // Graceful drain: flag, join, closed books in the final snapshot.
    stop.store(true, Ordering::Relaxed);
    let run = daemon.join().expect("daemon thread");
    assert_eq!(run.snapshot.total_requests(), report.responses);
    assert!(run.snapshot.total_energy() > Joules::ZERO);
    // Final (closed-books) energy is at least the live STATS energy.
    assert!(run.snapshot.total_energy().as_joules() >= summary.energy_j - 1e-9);
}

#[test]
fn shutdown_opcode_drains_the_server() {
    let server = Server::bind("127.0.0.1:0", EngineConfig::new(2, 2)).expect("bind");
    let addr = server.local_addr().unwrap().to_string();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));
    pc_server::loadgen::send_shutdown(&addr).expect("shutdown handshake");
    let run = daemon.join().expect("daemon thread");
    assert_eq!(run.snapshot.total_requests(), 0);
}

#[test]
fn in_process_mode_matches_itself_across_runs_for_every_workload() {
    for name in ["synthetic", "oltp", "cello96"] {
        let workload = Workload::parse(name).unwrap().with_requests(3_000);
        let engine = EngineConfig::new(3, workload.disk_count());
        let r1 = run_in_process(&engine, &workload, 11);
        let r2 = run_in_process(&engine, &workload, 11);
        assert_eq!(r1.submitted, 3_000, "{name}");
        assert_eq!(r1.served, 3_000, "{name}: an unslowed cluster admits all");
        assert_eq!(
            (r1.submitted, r1.served, r1.hits, r1.busy_rejects),
            (r2.submitted, r2.served, r2.hits, r2.busy_rejects),
            "{name}"
        );
        assert_eq!(
            r1.snapshot.to_json(),
            r2.snapshot.to_json(),
            "{name}: snapshots diverged"
        );
        assert!(r1.snapshot.total_energy() > Joules::ZERO, "{name}");
    }
}

#[test]
fn in_process_overload_is_deterministic_and_loses_nothing() {
    // The spec'd fault injection — queue bound 8, 500 µs delay on
    // shard 0 — against a synthetic stream whose inter-arrival mean
    // (50 µs) actually outruns the slowed shard's virtual service
    // rate: the virtual-time model must reject the same records on
    // every run, and the energy books must close over exactly the
    // served requests.
    let workload = Workload::Synthetic(
        pc_trace::SyntheticConfig::default()
            .with_requests(20_000)
            .with_gaps(pc_trace::GapDistribution::exponential(
                pc_units::SimDuration::from_micros(50),
            )),
    );
    let engine = EngineConfig::new(4, workload.disk_count())
        .with_queue_bound(8)
        .with_slow_shard(SlowShard {
            shard: 0,
            micros: 500,
        });
    let a = run_in_process(&engine, &workload, 11);
    let b = run_in_process(&engine, &workload, 11);

    assert!(a.busy_rejects > 0, "the slowed shard must shed load");
    assert_eq!(a.submitted, 20_000);
    assert_eq!(
        a.served + a.busy_rejects,
        a.submitted,
        "every request is either served or rejected, never lost or both"
    );
    assert_eq!(
        a.snapshot.total_requests(),
        a.served,
        "rejected requests must not leak into the books"
    );
    assert!(a.snapshot.total_energy() > Joules::ZERO);

    assert_eq!(
        (a.submitted, a.served, a.hits, a.busy_rejects),
        (b.submitted, b.served, b.hits, b.busy_rejects),
        "overload outcome diverged across runs"
    );
    assert_eq!(a.snapshot.to_json(), b.snapshot.to_json());
}

#[test]
fn tcp_overload_bounces_busy_and_closes_the_books() {
    // Fault injection on the real TCP path: shard 0 sleeps 300 µs per
    // request behind an 8-deep queue, so a paced flood must observe
    // BUSY; backoff retries deliver what the budget allows, and the
    // server's closing books cover exactly the I/O replies.
    let engine = EngineConfig::new(4, 4)
        .with_queue_bound(8)
        .with_slow_shard(SlowShard {
            shard: 0,
            micros: 300,
        });
    let server = Server::bind("127.0.0.1:0", engine).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let report = run_tcp(&LoadgenConfig {
        conns: 4,
        secs: 0.6,
        rate: Some(20_000.0),
        retry_budget: 64,
        backoff_us: 100,
        backoff_cap_us: 2_000,
        ..LoadgenConfig::new(addr)
    })
    .expect("load generation");

    assert!(report.busy_rejects > 0, "a full queue must answer BUSY");
    assert!(report.retries > 0, "BUSY must trigger backoff retries");
    assert_eq!(
        report.sent,
        report.responses + report.busy_rejects,
        "every send must be answered exactly once (IO or BUSY)"
    );
    assert!(
        report.stats.busy_rejects >= report.busy_rejects,
        "server-side reject counter must cover client-observed BUSYs"
    );
    assert!(report.stats.queue_high_water > 0);

    stop.store(true, Ordering::Relaxed);
    let run = daemon.join().expect("daemon thread");
    assert_eq!(
        run.snapshot.total_requests(),
        report.responses,
        "books must close over exactly the admitted requests"
    );
    assert!(run.snapshot.total_energy() > Joules::ZERO);
}

#[test]
fn payload_mode_round_trips_verified_block_contents() {
    // The protocol-v2 data plane end to end: WRITE_DATA carries real
    // block contents into the slab store, READ_DATA serves CRC-verified
    // frames back, and the load generator checks every DATA reply
    // against the deterministic disk image byte for byte.
    let engine = EngineConfig::new(2, 4)
        .with_policy(PolicySpec::PaLru)
        .with_block_bytes(512);
    let server = Server::bind("127.0.0.1:0", engine).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let report = run_tcp(&LoadgenConfig {
        conns: 2,
        secs: 0.4,
        payload: true,
        block_bytes: 512,
        ..LoadgenConfig::new(addr)
    })
    .expect("payload load generation");

    assert!(report.responses > 0, "no responses came back");
    assert!(
        report.payload_bytes > 0,
        "payload mode must move actual block contents"
    );
    assert_eq!(
        report.verify_failures, 0,
        "every DATA reply must match the disk image exactly"
    );
    assert_eq!(report.corrupt, 0, "no fault injection, no CORRUPT replies");
    assert_eq!(
        report.stats.crc_failures, 0,
        "a healthy slab never fails CRC verification"
    );
    assert!(report.hit_ratio() > 0.0, "zipf traffic must hit sometimes");
    let rendered = report.render();
    assert!(
        rendered.contains("payload:"),
        "payload runs must print the payload accounting line:\n{rendered}"
    );

    stop.store(true, Ordering::Relaxed);
    let run = daemon.join().expect("daemon thread");
    assert_eq!(run.snapshot.total_requests(), report.responses);
    assert!(run.snapshot.total_energy() > Joules::ZERO);
}

#[test]
fn injected_slab_corruption_surfaces_as_corrupt_replies_and_stats() {
    // CRC fault injection: `corrupt_every = 1` damages one slab byte
    // before every verified read, so resident reads must answer
    // CORRUPT (never silently serve damaged bytes), the STATS snapshot
    // must count every failure, and the store must recover the frame —
    // the DATA replies that do come back still match the image.
    let engine = EngineConfig::new(2, 4)
        .with_block_bytes(512)
        .with_corrupt_every(1);
    let server = Server::bind("127.0.0.1:0", engine).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let report = run_tcp(&LoadgenConfig {
        conns: 2,
        secs: 0.4,
        payload: true,
        block_bytes: 512,
        ..LoadgenConfig::new(addr)
    })
    .expect("payload load generation");

    assert!(
        report.corrupt > 0,
        "every verified resident read is damaged, so CORRUPT must surface"
    );
    assert!(
        report.stats.crc_failures >= report.corrupt,
        "server-side crc_failures ({}) must cover client-observed CORRUPTs ({})",
        report.stats.crc_failures,
        report.corrupt
    );
    assert_eq!(
        report.verify_failures, 0,
        "damaged frames answer CORRUPT; served DATA must still be pristine"
    );
    assert!(
        report.payload_bytes > 0,
        "non-resident reads still serve the disk image"
    );

    stop.store(true, Ordering::Relaxed);
    daemon.join().expect("daemon thread");
}

#[test]
fn capture_records_a_live_run_and_the_file_replays_over_the_wire() {
    // The full capture → replay loop: a server with --capture records
    // every admitted request into a .pct trace; the file must hold
    // exactly the admitted requests (recorded + dropped accounting),
    // live STATS must surface the capture gauges, and replaying the
    // file through a fresh server via `--trace` must serve every
    // record it contains.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("pc-e2e-capture-{}.pct", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let engine = EngineConfig::new(2, 4).with_policy(PolicySpec::PaLru);
    let server = Server::bind("127.0.0.1:0", engine)
        .expect("bind loopback")
        .with_capture(path.clone());
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let report = run_tcp(&LoadgenConfig {
        conns: 2,
        secs: 0.4,
        ..LoadgenConfig::new(addr)
    })
    .expect("load generation");
    assert!(report.responses > 0);
    assert!(
        report.stats.capture_recorded > 0,
        "live STATS must surface the capture gauges"
    );

    stop.store(true, Ordering::Relaxed);
    let run = daemon.join().expect("daemon thread");
    let cap = run.capture.expect("capturing run must report the capture");
    assert_eq!(cap.path, path);
    assert_eq!(
        cap.written + cap.dropped,
        run.snapshot.total_requests(),
        "every admitted request is either in the file or drop-counted"
    );

    let trace = pc_tracefile::read_trace(&path).expect("captured file parses");
    assert_eq!(trace.len() as u64, cap.written);
    assert!(
        trace.records().windows(2).all(|w| w[0].time <= w[1].time),
        "read_trace returns a time-sorted trace"
    );

    // Replay the captured file against a fresh server.
    let replay_server =
        Server::bind("127.0.0.1:0", EngineConfig::new(2, 4)).expect("bind replay server");
    let replay_addr = replay_server.local_addr().unwrap().to_string();
    let replay_stop = replay_server.stop_flag();
    let replay_daemon = std::thread::spawn(move || replay_server.run().expect("replay run"));

    let replay = run_tcp(&LoadgenConfig {
        conns: 2,
        secs: 30.0, // Finite trace: the run ends when the records do.
        trace: Some(path.clone()),
        ..LoadgenConfig::new(replay_addr)
    })
    .expect("trace replay");
    assert_eq!(
        replay.sent - replay.retries,
        cap.written,
        "replay must first-send exactly the captured records"
    );
    assert_eq!(replay.sent, replay.responses + replay.busy_rejects);

    replay_stop.store(true, Ordering::Relaxed);
    replay_daemon.join().expect("replay daemon");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn a_server_that_never_replies_cannot_hang_the_client() {
    // A listener that accepts and then goes silent: the load
    // generator's socket timeouts must surface an error instead of
    // blocking forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let _keep_alive = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((sock, _)) = listener.accept() {
            held.push(sock); // Accept, hold open, never read or write.
        }
    });

    let started = std::time::Instant::now();
    let result = run_tcp(&LoadgenConfig {
        conns: 1,
        secs: 0.2,
        io_timeout: Duration::from_millis(300),
        ..LoadgenConfig::new(addr)
    });
    assert!(result.is_err(), "a silent server must surface as an error");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "the client must give up long before a human does"
    );
}

#[test]
fn a_pipelined_batch_straddling_queue_capacity_splits_into_io_then_busy() {
    use pc_server::protocol::{encode_request, FrameBuf, Request, Response};
    use std::io::Write;

    // One shard, 4-deep queue, 5 ms service delay: a 32-request batch
    // written in a single syscall lands as one readable event, so the
    // event loop's single `try_reserve` must split it — head admitted,
    // tail bounced BUSY — with every request answered exactly once.
    let engine = EngineConfig::new(1, 4)
        .with_queue_bound(4)
        .with_slow_shard(SlowShard {
            shard: 0,
            micros: 5_000,
        });
    let server = Server::bind("127.0.0.1:0", engine).expect("bind loopback");
    let addr = server.local_addr().unwrap();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    const BATCH: u32 = 32;
    let mut wire = Vec::new();
    for seq in 0..BATCH {
        encode_request(
            &Request::Io {
                seq,
                write: false,
                disk: 0,
                block: u64::from(seq) * 13,
                blocks: 1,
            },
            &mut wire,
        );
    }
    stream.write_all(&wire).expect("one-shot batch write");

    let mut fb = FrameBuf::new();
    let (mut served, mut busy) = (0u64, 0u64);
    let mut answered = std::collections::HashSet::new();
    while answered.len() < BATCH as usize {
        match fb.next_response().expect("well-formed response stream") {
            Some(Response::Io { seq, .. }) => {
                assert!(answered.insert(seq), "seq {seq} answered twice");
                served += 1;
            }
            Some(Response::Busy { seq, .. }) => {
                assert!(answered.insert(seq), "seq {seq} answered twice");
                busy += 1;
            }
            Some(other) => panic!("unexpected response {other:?}"),
            None => {
                let n = fb.read_from(&mut stream).expect("read responses");
                assert!(
                    n > 0,
                    "server closed with {} unanswered",
                    BATCH as usize - answered.len()
                );
            }
        }
    }
    assert_eq!(served + busy, u64::from(BATCH), "IO-or-BUSY, exactly once");
    assert!(served > 0, "the queue admits the head of the batch");
    assert!(busy > 0, "the tail past capacity must bounce BUSY");
    drop(stream);

    stop.store(true, Ordering::Relaxed);
    let run = daemon.join().expect("daemon thread");
    assert_eq!(
        run.snapshot.total_requests(),
        served,
        "books must close over exactly the admitted half of the batch"
    );
}

#[cfg(target_os = "linux")]
#[test]
fn event_loop_holds_hundreds_of_mostly_idle_connections() {
    // A scaled-down CI-shape of the high-count mode: 2 hot streams plus
    // ~300 mostly-idle sockets held through the run. The final STATS
    // snapshot must see the idle population on the IO-thread gauges,
    // and the books must still balance exactly.
    const TOTAL: usize = 300;
    let engine = EngineConfig::new(2, 4).with_policy(PolicySpec::PaLru);
    let server = Server::bind("127.0.0.1:0", engine).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let report = run_tcp(&LoadgenConfig {
        conns: 2,
        connections: TOTAL,
        secs: 0.4,
        ..LoadgenConfig::new(addr)
    })
    .expect("high-count load generation");

    let idle = (TOTAL - 2) as u64;
    assert_eq!(
        report.idle_conns, idle,
        "every idle socket answered its probe"
    );
    assert_eq!(
        report.sent,
        report.responses + report.busy_rejects,
        "idle probes are in the books too"
    );
    assert!(
        report.stats.io_connections >= idle,
        "the snapshot must observe the idle population: io_connections={} < {idle}",
        report.stats.io_connections
    );
    let rendered = report.render();
    assert!(
        rendered.contains("conn-scale:"),
        "high-count runs must print the conn-scale accounting line:\n{rendered}"
    );

    stop.store(true, Ordering::Relaxed);
    let run = daemon.join().expect("daemon thread");
    assert_eq!(run.snapshot.total_requests(), report.responses);
    assert!(run.snapshot.total_energy() > Joules::ZERO);
}
