//! WTDU persistence through the full stack: simulate client traffic with
//! crashes at arbitrary points and verify the log-recovery protocol never
//! loses an acknowledged write.

use std::collections::HashMap;

use pc_cache::policy::Lru;
use pc_cache::{BlockCache, Effect, WritePolicy};
use pc_trace::{IoOp, Record};
use pc_units::{BlockId, BlockNo, DiskId, SimTime};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A model of persistent state: what each disk block holds, as a write
/// generation number. `0` = never written.
#[derive(Debug, Default)]
struct PersistentModel {
    disk: HashMap<BlockId, u64>,
}

/// Replays a random write/read workload against a WTDU cache with a
/// random sleeping pattern, mirroring every `WriteDisk` effect into the
/// persistent model. At a random point, "crash": apply log recovery and
/// check that the persistent state then reflects the *latest*
/// acknowledged write of every block.
#[test]
fn wtdu_recovery_restores_every_acknowledged_write() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cache = BlockCache::new(32, Box::new(Lru::new()), WritePolicy::Wtdu);
        let mut persistent = PersistentModel::default();
        // The client's view: the latest write generation per block.
        let mut acknowledged: HashMap<BlockId, u64> = HashMap::new();
        let mut generation = 0u64;

        let steps = 200 + rng.gen_range(0..200);
        let crash_at = rng.gen_range(50..steps);
        for step in 0..crash_at {
            let block = BlockId::new(
                DiskId::new(rng.gen_range(0..4)),
                BlockNo::new(rng.gen_range(0..40)),
            );
            let op = if rng.gen_bool(0.7) {
                IoOp::Write
            } else {
                IoOp::Read
            };
            // Disks drift asleep/awake arbitrarily.
            let asleep = rng.gen_bool(0.5);
            let record = Record::new(SimTime::from_millis(step), block, op);
            // The write's new value exists as of this request: acknowledge
            // it first so any effect referencing the block (including its
            // own write-through) persists the *new* generation.
            if op == IoOp::Write {
                generation += 1;
                acknowledged.insert(block, generation);
            }
            let result = cache.access_alloc(&record, |_| asleep);
            for effect in result.effects {
                if let Effect::WriteDisk(b) = effect {
                    // The disk now holds the latest cached value of b.
                    if let Some(&gen) = acknowledged.get(&b) {
                        persistent.disk.insert(b, gen);
                    }
                }
            }
        }

        // CRASH. The volatile cache is gone; replay the log. The value the
        // log carries is the cache's per-write sequence number, which by
        // construction advances in lock-step with our `generation`
        // counter, so a stale log entry replayed over a newer direct
        // write would be caught below.
        for (block, logged_value) in cache.log().recover() {
            persistent.disk.insert(block, logged_value);
        }

        // Every acknowledged write must now be persistent.
        for (block, &gen) in &acknowledged {
            let on_disk = persistent.disk.get(block).copied().unwrap_or(0);
            assert_eq!(
                on_disk, gen,
                "seed {seed}: lost write generation for {block} (disk has {on_disk}, client saw {gen})"
            );
        }
    }
}

/// Write-back, by contrast, is allowed to lose un-flushed dirty data on a
/// crash — this test documents the persistence gap WTDU closes (and
/// guards against the test above passing vacuously).
#[test]
fn write_back_can_lose_dirty_data_on_crash() {
    let mut cache = BlockCache::new(32, Box::new(Lru::new()), WritePolicy::WriteBack);
    let block = BlockId::new(DiskId::new(0), BlockNo::new(1));
    let result = cache.access_alloc(
        &Record::new(SimTime::from_millis(0), block, IoOp::Write),
        |_| true,
    );
    // No disk write, no log write: the data lives only in volatile RAM.
    assert!(result.effects.is_empty());
    assert!(cache.log().recover().is_empty());
}
