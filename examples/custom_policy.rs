//! Extending the library: plug a custom replacement policy into the
//! cache and benchmark it against the built-ins.
//!
//! Implements CLOCK (second-chance) — a policy the paper doesn't study —
//! against the public [`ReplacementPolicy`] trait, then runs it through
//! the same simulator as LRU and PA-LRU.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use pc_cache::policy::{PaLru, PaLruConfig};
use pc_cache::{BlockCache, ReplacementPolicy, Slot, WritePolicy};
use pc_diskmodel::ServiceRequest;
use pc_disksim::{DiskArray, DpmPolicy};
use pc_sim::SimConfig;
use pc_trace::OltpConfig;
use pc_units::{BlockId, SimTime};

/// CLOCK / second-chance replacement: a referenced bit per resident
/// block; the hand sweeps, clearing bits, and evicts the first
/// unreferenced block it finds.
///
/// The cache hands every resident block a dense [`Slot`], so the policy
/// needs no hash map of its own: the ring stores slots and the
/// referenced bits live in a flat slot-indexed vector.
#[derive(Debug, Default)]
struct Clock {
    ring: Vec<Slot>,
    referenced: Vec<bool>,
    hand: usize,
}

impl ReplacementPolicy for Clock {
    fn name(&self) -> String {
        "clock".to_owned()
    }

    fn on_access(&mut self, slot: Option<Slot>, _block: BlockId, _time: SimTime) {
        if let Some(slot) = slot {
            self.referenced[slot.index()] = true;
        }
    }

    fn on_insert(&mut self, slot: Slot, _block: BlockId, _time: SimTime) {
        self.ring.push(slot);
        if slot.index() >= self.referenced.len() {
            self.referenced.resize(slot.index() + 1, false);
        }
        self.referenced[slot.index()] = false;
    }

    fn evict(&mut self) -> Slot {
        loop {
            if self.ring.is_empty() {
                panic!("no block to evict");
            }
            self.hand %= self.ring.len();
            let candidate = self.ring[self.hand];
            if self.referenced[candidate.index()] {
                self.referenced[candidate.index()] = false;
                self.hand += 1;
            } else {
                self.ring.swap_remove(self.hand);
                return candidate;
            }
        }
    }
}

fn main() {
    let trace = OltpConfig::default().with_requests(30_000).generate(3);
    let sim = SimConfig::default();
    let power = sim.power_model();

    println!(
        "{:8} {:>12} {:>10} {:>10}",
        "policy", "energy", "hit-ratio", "spin-ups"
    );
    let builders: Vec<Box<dyn Fn() -> Box<dyn ReplacementPolicy>>> = vec![
        Box::new(|| Box::new(pc_cache::policy::Lru::new())),
        Box::new(|| Box::new(Clock::default())),
        Box::new({
            let power = power.clone();
            move || Box::new(PaLru::new(PaLruConfig::for_power_model(&power)))
        }),
    ];
    for build in builders {
        // Drive the cache + disk array directly (the same loop pc-sim
        // runs), showing the public API a downstream system would use.
        let mut cache = BlockCache::new(4_096, build(), WritePolicy::WriteBack);
        let mut disks = DiskArray::new(
            trace.disk_count(),
            power.clone(),
            sim.service.clone(),
            DpmPolicy::Practical,
        );
        let mut effects = Vec::new();
        for r in &trace {
            cache.access(r, |d| disks.disk(d).is_sleeping(r.time), &mut effects);
            for effect in &effects {
                let b = effect.block();
                disks.service(b.disk(), r.time, ServiceRequest::single(b.block()));
            }
        }
        let last = trace.records().last().expect("non-empty trace").time;
        disks.finish(last.max(disks.latest_completion()));
        let total = disks.total_report();
        println!(
            "{:8} {:>12} {:>9.1}% {:>10}",
            cache.policy_name(),
            disks.total_energy().to_string(),
            cache.stats().hit_ratio() * 100.0,
            total.spin_ups,
        );
    }
}
