//! Extending the library: plug a custom replacement policy into the
//! cache and benchmark it against the built-ins.
//!
//! Implements CLOCK (second-chance) — a policy the paper doesn't study —
//! against the public [`ReplacementPolicy`] trait, then runs it through
//! the same simulator as LRU and PA-LRU.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use std::collections::HashMap;

use pc_cache::policy::{PaLru, PaLruConfig};
use pc_cache::{BlockCache, ReplacementPolicy, WritePolicy};
use pc_diskmodel::ServiceRequest;
use pc_disksim::{DiskArray, DpmPolicy};
use pc_sim::SimConfig;
use pc_trace::OltpConfig;
use pc_units::{BlockId, SimTime};

/// CLOCK / second-chance replacement: a referenced bit per resident
/// block; the hand sweeps, clearing bits, and evicts the first
/// unreferenced block it finds.
#[derive(Debug, Default)]
struct Clock {
    ring: Vec<BlockId>,
    referenced: HashMap<BlockId, bool>,
    hand: usize,
}

impl ReplacementPolicy for Clock {
    fn name(&self) -> String {
        "clock".to_owned()
    }

    fn on_access(&mut self, block: BlockId, _time: SimTime, hit: bool) {
        if hit {
            if let Some(bit) = self.referenced.get_mut(&block) {
                *bit = true;
            }
        }
    }

    fn on_insert(&mut self, block: BlockId, _time: SimTime) {
        self.ring.push(block);
        self.referenced.insert(block, false);
    }

    fn evict(&mut self) -> BlockId {
        loop {
            if self.ring.is_empty() {
                panic!("no block to evict");
            }
            self.hand %= self.ring.len();
            let candidate = self.ring[self.hand];
            let bit = self.referenced.get_mut(&candidate).expect("tracked");
            if *bit {
                *bit = false;
                self.hand += 1;
            } else {
                self.ring.swap_remove(self.hand);
                self.referenced.remove(&candidate);
                return candidate;
            }
        }
    }
}

fn main() {
    let trace = OltpConfig::default().with_requests(30_000).generate(3);
    let sim = SimConfig::default();
    let power = sim.power_model();

    println!(
        "{:8} {:>12} {:>10} {:>10}",
        "policy", "energy", "hit-ratio", "spin-ups"
    );
    let builders: Vec<Box<dyn Fn() -> Box<dyn ReplacementPolicy>>> = vec![
        Box::new(|| Box::new(pc_cache::policy::Lru::new())),
        Box::new(|| Box::new(Clock::default())),
        Box::new({
            let power = power.clone();
            move || Box::new(PaLru::new(PaLruConfig::for_power_model(&power)))
        }),
    ];
    for build in builders {
        // Drive the cache + disk array directly (the same loop pc-sim
        // runs), showing the public API a downstream system would use.
        let mut cache = BlockCache::new(4_096, build(), WritePolicy::WriteBack);
        let mut disks = DiskArray::new(
            trace.disk_count(),
            power.clone(),
            sim.service.clone(),
            DpmPolicy::Practical,
        );
        let mut effects = Vec::new();
        for r in &trace {
            cache.access(r, |d| disks.disk(d).is_sleeping(r.time), &mut effects);
            for effect in &effects {
                let b = effect.block();
                disks.service(b.disk(), r.time, ServiceRequest::single(b.block()));
            }
        }
        let last = trace.records().last().expect("non-empty trace").time;
        disks.finish(last.max(disks.latest_completion()));
        let total = disks.total_report();
        println!(
            "{:8} {:>12} {:>9.1}% {:>10}",
            cache.policy_name(),
            disks.total_energy().to_string(),
            cache.stats().hit_ratio() * 100.0,
            total.spin_ups,
        );
    }
}
