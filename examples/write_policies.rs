//! The paper's §6 story: how the cache's write policy changes disk
//! energy, plus a demonstration of WTDU's crash-recovery log.
//!
//! ```text
//! cargo run --release --example write_policies
//! ```

use pc_cache::policy::Lru;
use pc_cache::{BlockCache, WritePolicy};
use pc_sim::{run_write_policy, PolicySpec, SimConfig};
use pc_trace::{IoOp, Record, SyntheticConfig};
use pc_units::{BlockId, BlockNo, DiskId, SimTime};

fn main() {
    // -------- Energy comparison on the Table-3 synthetic workload ------
    let policies = [
        WritePolicy::WriteThrough,
        WritePolicy::WriteBack,
        WritePolicy::Wbeu { dirty_limit: 64 },
        WritePolicy::Wtdu,
    ];
    println!("== Energy by write policy (write-heavy synthetic workload) ==\n");
    println!(
        "{:14} {:>13} {:>11} {:>11} {:>10}",
        "policy", "energy", "disk-writes", "log-writes", "saving"
    );
    let trace = SyntheticConfig::default()
        .with_requests(100_000)
        .with_write_ratio(0.8)
        .generate(11);
    let mut wt_energy = None;
    for wp in policies {
        let cfg = SimConfig::default().with_write_policy(wp);
        let r = run_write_policy(&trace, &PolicySpec::Lru, &cfg);
        let energy = r.total_energy();
        let saving = wt_energy
            .map(|wt: f64| 100.0 * (1.0 - energy.as_joules() / wt))
            .unwrap_or(0.0);
        if wt_energy.is_none() {
            wt_energy = Some(energy.as_joules());
        }
        println!(
            "{:14} {:>13} {:>11} {:>11} {:>9.1}%",
            r.write_policy,
            energy.to_string(),
            r.cache.disk_writes,
            r.cache.log_writes,
            saving
        );
    }

    // -------- WTDU's persistence story ---------------------------------
    println!("\n== WTDU crash recovery ==\n");
    let mut cache = BlockCache::new(64, Box::new(Lru::new()), WritePolicy::Wtdu);
    let block = |d: u32, b: u64| BlockId::new(DiskId::new(d), BlockNo::new(b));

    // Disk 3 is asleep; three client writes are logged instead of waking it.
    for (i, b) in [(0u64, 10u64), (1, 11), (2, 10)] {
        cache.access_alloc(
            &Record::new(SimTime::from_millis(i), block(3, b), IoOp::Write),
            |_| true, // every disk asleep
        );
    }
    println!(
        "3 writes to sleeping disk3 -> {} log appends, {} pending in its region",
        cache.log().total_appends(),
        cache.log().pending(DiskId::new(3)),
    );

    // Power failure here! Recovery replays exactly the pending writes —
    // with the *latest* value per block.
    let replay = cache.log().recover();
    println!("crash now: recovery replays {} block(s):", replay.len());
    for (b, version) in &replay {
        println!("  {b} (write generation {version})");
    }

    // Alternative history: the disk wakes for a read before any crash;
    // the region is flushed and retired, so a later crash replays nothing.
    cache.access_alloc(
        &Record::new(SimTime::from_millis(9), block(3, 99), IoOp::Read),
        |_| true,
    );
    println!(
        "after disk3 wakes and flushes: recovery replays {} block(s)",
        cache.log().recover().len()
    );
}
