//! Measures trace-ingest startup and memory for the two `.pct` paths:
//!
//! ```text
//! cargo run --release --example trace_ingest -- mmap  FILE.pct
//! cargo run --release --example trace_ingest -- read  FILE.pct
//! ```
//!
//! `mmap` opens the file with [`pc_tracefile::MappedTrace`] and streams
//! it record by record (each chunk's CRC verifying on first touch) —
//! the path `repro --trace` and `pc-loadgen --trace` use. `read`
//! materializes the whole file with [`pc_tracefile::read_trace`]. Both
//! report time-to-first-record (what a streaming simulation waits
//! before its first simulated request), the full-pass wall time and
//! throughput, and the process's peak RSS (`VmHWM`). Run the two modes
//! as separate processes: peak RSS is a high-water mark, so a single
//! process would charge the second mode with the first one's footprint.

use std::time::Instant;

/// Peak resident set size of this process in kilobytes, from
/// `/proc/self/status` (`VmHWM`); `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn report(label: &str, first: std::time::Duration, full: std::time::Duration, records: u64) {
    println!("{label}:");
    println!("  time to first record: {first:.2?}");
    println!("  full pass:            {full:.2?}  ({records} records)");
    println!(
        "  throughput:           {:.1} M records/s",
        records as f64 / full.as_secs_f64() / 1e6
    );
    match peak_rss_kb() {
        Some(kb) => println!("  peak RSS:             {:.1} MiB", kb as f64 / 1024.0),
        None => println!("  peak RSS:             unavailable"),
    }
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let (mode, path) = match (args.get(1), args.get(2)) {
        (Some(mode), Some(path)) if mode == "mmap" || mode == "read" => (mode.as_str(), path),
        _ => {
            eprintln!("usage: trace_ingest <mmap|read> FILE.pct");
            std::process::exit(2);
        }
    };

    let start = Instant::now();
    match mode {
        "mmap" => {
            let map = pc_tracefile::MappedTrace::open(path)?;
            let mut records = map.records();
            let first_record = records.next().transpose()?;
            let first = start.elapsed();
            let mut count = u64::from(first_record.is_some());
            for record in records {
                record?;
                count += 1;
            }
            report(
                "mmap (MappedTrace, lazy CRC)",
                first,
                start.elapsed(),
                count,
            );
        }
        "read" => {
            let trace = pc_tracefile::read_trace(path)?;
            let first = start.elapsed();
            // The materializing path has every record in hand the moment
            // it has any: first-record latency is the whole decode.
            let count = trace.iter().count() as u64;
            report(
                "read (read_trace, materialized)",
                first,
                start.elapsed(),
                count,
            );
        }
        _ => unreachable!(),
    }
    Ok(())
}
