//! The paper's §5 story end-to-end: run all five replacement strategies
//! on the OLTP-like workload under both DPM schemes and show *why*
//! PA-LRU wins, with a per-disk drill-down of one hot and one cacheable
//! disk (the paper's disks 4 and 14).
//!
//! ```text
//! cargo run --release --example oltp_energy
//! ```

use pc_disksim::DpmPolicy;
use pc_sim::{run_replacement, PolicySpec, SimConfig};
use pc_trace::OltpConfig;
use pc_units::{DiskId, Joules};

fn main() {
    let trace = OltpConfig::default().generate(42); // the full 2-hour trace
    let base = SimConfig::default();

    println!("== Energy (normalized to LRU), OLTP-like trace ==\n");
    println!("{:16} {:>12} {:>12}", "policy", "oracle-dpm", "practical");
    let oracle = base.clone().with_dpm(DpmPolicy::Oracle);
    let practical = base.clone().with_dpm(DpmPolicy::Practical);
    let policies: [(&str, PolicySpec, bool); 5] = [
        ("infinite-cache", PolicySpec::Lru, true),
        ("belady", PolicySpec::Belady, false),
        (
            "opg",
            PolicySpec::Opg {
                epsilon: Joules::ZERO,
            },
            false,
        ),
        ("lru", PolicySpec::Lru, false),
        ("pa-lru", PolicySpec::PaLru, false),
    ];
    let lru_o = run_replacement(&trace, &PolicySpec::Lru, &oracle);
    let lru_p = run_replacement(&trace, &PolicySpec::Lru, &practical);
    let mut pa_report = None;
    let mut lru_report = None;
    for (name, spec, infinite) in policies {
        let mk = |cfg: &SimConfig| {
            let cfg = if infinite {
                cfg.clone().with_infinite_cache()
            } else {
                cfg.clone()
            };
            run_replacement(&trace, &spec, &cfg)
        };
        let ro = mk(&oracle);
        let rp = mk(&practical);
        println!(
            "{:16} {:>12.3} {:>12.3}",
            name,
            ro.energy_ratio(&lru_o),
            rp.energy_ratio(&lru_p)
        );
        if name == "pa-lru" {
            pa_report = Some(rp);
        } else if name == "lru" {
            lru_report = Some(rp);
        }
    }

    let pa = pa_report.expect("pa-lru ran");
    let lru = lru_report.expect("lru ran");
    println!(
        "\nmean response: lru {}  pa-lru {}  ({:.0}% better)",
        lru.mean_response(),
        pa.mean_response(),
        100.0 * (1.0 - pa.mean_response().as_secs_f64() / lru.mean_response().as_secs_f64())
    );

    println!("\n== Why: two representative disks under Practical DPM ==\n");
    for (label, disk) in [
        ("hot disk 4", DiskId::new(4)),
        ("cacheable disk 14", DiskId::new(14)),
    ] {
        for (policy, report) in [("lru", &lru), ("pa-lru", &pa)] {
            let d = &report.disks[disk.as_usize()];
            let f = d.time_fractions();
            println!(
                "{label:18} {policy:7}  standby {:4.1}%  transitions {:4.1}%  spin-ups {:4}  disk-gap {}",
                f.per_mode.last().unwrap() * 100.0,
                (f.spin_up + f.spin_down) * 100.0,
                d.spin_ups,
                d.mean_interarrival(),
            );
        }
    }
    println!(
        "\nPA-LRU pins the cacheable disks' working sets, stretching their idle\n\
         periods into the deep power modes — fewer spin-ups, less energy, and\n\
         faster responses, exactly the paper's Figure 6/7 mechanism."
    );
}
