//! Visualize a disk's power states over time under the three
//! power-management schemes — an ASCII Gantt view of what the energy
//! numbers summarize.
//!
//! Legend: `#` servicing, `v` spinning down, `^` spinning up,
//! digits = resting in that power mode (0 = full-speed idle,
//! 5 = standby).
//!
//! ```text
//! cargo run --release --example power_timeline
//! ```

use pc_diskmodel::{DiskPowerSpec, PowerModel, ServiceModel, ServiceRequest};
use pc_disksim::{DiskSim, DpmPolicy};
use pc_units::{BlockNo, DiskId, SimDuration, SimTime};

fn main() {
    // One scripted request pattern: a burst, a medium gap (NAP territory),
    // another access, then a long lull (standby territory).
    let arrivals_secs = [5u64, 6, 7, 40, 45, 170];
    let horizon = SimTime::from_secs(200);

    println!(
        "Request arrivals at t = {arrivals_secs:?} s; one character = 2 s; legend: \
         # service, v down, ^ up, 0..5 rest mode\n"
    );
    for policy in [DpmPolicy::AlwaysOn, DpmPolicy::Practical, DpmPolicy::Oracle] {
        let mut disk = DiskSim::new(
            DiskId::new(0),
            PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15()),
            ServiceModel::ultrastar_36z15(),
            policy,
        )
        .with_timeline();
        for (i, &s) in arrivals_secs.iter().enumerate() {
            let arrival = SimTime::from_secs(s).max(disk.ready_at());
            disk.service(
                arrival,
                ServiceRequest::single(BlockNo::new(i as u64 * 40_000)),
            );
        }
        disk.finish(horizon);
        let strip = disk.timeline().expect("recording enabled").render(
            SimTime::ZERO,
            horizon,
            SimDuration::from_secs(2),
        );
        let report = disk.report();
        println!("{policy:<10?} |{strip}|");
        println!(
            "{:>10}  energy {:>10}, spin-ups {}, mean response {}\n",
            "",
            report.total_energy().to_string(),
            report.spin_ups,
            report.mean_response(),
        );
    }
    println!(
        "AlwaysOn burns idle power through every gap; Practical descends the\n\
         threshold ladder and pays spin-up waits; Oracle drops straight to the\n\
         best mode and wakes just in time."
    );
}
