//! Quickstart: simulate a small storage system and compare LRU with the
//! power-aware PA-LRU on energy and response time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pc_sim::{run_replacement, PolicySpec, SimConfig};
use pc_trace::OltpConfig;

fn main() {
    // 1. A workload: one hour of OLTP-like traffic over 21 disks
    //    (hot database disks up front, cacheable ones at the back).
    let trace = OltpConfig::default().with_requests(36_000).generate(7);
    println!(
        "workload: {} requests over {} disks, {:.0} s",
        trace.len(),
        trace.disk_count(),
        trace.duration().as_secs_f64()
    );

    // 2. A storage system: 32 MB cache over multi-speed IBM Ultrastar
    //    36Z15 disks managed by threshold-based (Practical) DPM.
    let config = SimConfig::default();

    // 3. Run both policies over the same trace and compare.
    let lru = run_replacement(&trace, &PolicySpec::Lru, &config);
    let pa = run_replacement(&trace, &PolicySpec::PaLru, &config);

    for r in [&lru, &pa] {
        println!(
            "{:8}  energy {:>12}   mean response {:>10}   hit ratio {:.1}%   spin-ups {}",
            r.policy,
            r.total_energy().to_string(),
            r.mean_response().to_string(),
            r.cache.hit_ratio() * 100.0,
            r.total_spin_ups(),
        );
    }
    println!(
        "\nPA-LRU saves {:.1}% disk energy vs LRU on this run.",
        pa.saving_over(&lru)
    );
}
