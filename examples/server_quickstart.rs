//! Quickstart for the serving layer: boot a sharded `pc-server` on a
//! loopback port, replay a short synthetic burst through `pc-loadgen`'s
//! library entry point, then drain the daemon and print both sides'
//! reports. Run with:
//!
//! ```text
//! cargo run --release --example server_quickstart
//! ```

use pc_server::{run_in_process, run_tcp, EngineConfig, LoadgenConfig, Server};
use pc_sim::PolicySpec;
use pc_trace::Workload;

fn main() -> std::io::Result<()> {
    // --- TCP mode: the real daemon on an ephemeral loopback port. ---
    let engine = EngineConfig::new(4, 4).with_policy(PolicySpec::PaLru);
    let server = Server::bind("127.0.0.1:0", engine.clone())?;
    let addr = server.local_addr()?.to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run());

    let load = LoadgenConfig {
        conns: 4,
        secs: 1.0,
        ..LoadgenConfig::new(addr)
    };
    let report = run_tcp(&load)?;
    println!("--- load generator ---");
    print!("{}", report.render());

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let summary = daemon.join().expect("daemon thread")?;
    println!("--- server closing report ---");
    print!("{}", summary.snapshot.render_table());

    // --- In-process mode: same path, no sockets, fully deterministic. ---
    let workload = Workload::parse("synthetic").unwrap().with_requests(50_000);
    let ip = run_in_process(&engine, &workload, 42);
    println!("--- in-process (deterministic) ---");
    println!(
        "submitted={} served={} hits={} energy_j={:.2}",
        ip.submitted,
        ip.served,
        ip.hits,
        ip.snapshot.total_energy().as_joules()
    );
    Ok(())
}
