//! Storage addressing identifiers.
//!
//! A storage system is an array of disks; each disk is an array of
//! fixed-size blocks. [`DiskId`] and [`BlockNo`] are the two coordinates,
//! and [`BlockId`] is the pair — the key under which the storage cache
//! indexes data.

use std::fmt;

/// The index of a disk within the storage system's disk array.
///
/// # Examples
///
/// ```
/// use pc_units::DiskId;
///
/// let d = DiskId::new(14);
/// assert_eq!(d.index(), 14);
/// assert_eq!(d.to_string(), "disk14");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DiskId(u32);

/// The index of a block within one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockNo(u64);

/// A globally-unique block address: a `(disk, block)` pair.
///
/// # Examples
///
/// ```
/// use pc_units::{BlockId, BlockNo, DiskId};
///
/// let id = BlockId::new(DiskId::new(2), BlockNo::new(4096));
/// assert_eq!(id.disk(), DiskId::new(2));
/// assert_eq!(id.block(), BlockNo::new(4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId {
    disk: DiskId,
    block: BlockNo,
}

impl DiskId {
    /// Creates a disk identifier from its array index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        DiskId(index)
    }

    /// Returns the disk's array index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the disk's array index as a `usize`, for direct slice
    /// indexing.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl BlockNo {
    /// Creates a block number.
    #[must_use]
    pub const fn new(number: u64) -> Self {
        BlockNo(number)
    }

    /// Returns the raw block number.
    #[must_use]
    pub const fn number(self) -> u64 {
        self.0
    }
}

impl BlockId {
    /// Creates a block address from its disk and block coordinates.
    #[must_use]
    pub const fn new(disk: DiskId, block: BlockNo) -> Self {
        BlockId { disk, block }
    }

    /// Returns the disk coordinate.
    #[must_use]
    pub const fn disk(self) -> DiskId {
        self.disk
    }

    /// Returns the block coordinate.
    #[must_use]
    pub const fn block(self) -> BlockNo {
        self.block
    }
}

impl From<u32> for DiskId {
    fn from(index: u32) -> Self {
        DiskId(index)
    }
}

impl From<u64> for BlockNo {
    fn from(number: u64) -> Self {
        BlockNo(number)
    }
}

impl From<(DiskId, BlockNo)> for BlockId {
    fn from((disk, block): (DiskId, BlockNo)) -> Self {
        BlockId { disk, block }
    }
}

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

impl fmt::Display for BlockNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.disk, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_round_trip() {
        let id = BlockId::new(DiskId::new(3), BlockNo::new(77));
        assert_eq!(id.disk().index(), 3);
        assert_eq!(id.block().number(), 77);
        assert_eq!(BlockId::from((DiskId::new(3), BlockNo::new(77))), id);
    }

    #[test]
    fn ordering_groups_by_disk_first() {
        let a = BlockId::new(DiskId::new(0), BlockNo::new(999));
        let b = BlockId::new(DiskId::new(1), BlockNo::new(0));
        assert!(a < b);
    }

    #[test]
    fn display_is_compact() {
        let id = BlockId::new(DiskId::new(2), BlockNo::new(5));
        assert_eq!(id.to_string(), "disk2#5");
    }

    #[test]
    fn conversions() {
        assert_eq!(DiskId::from(9u32), DiskId::new(9));
        assert_eq!(BlockNo::from(9u64), BlockNo::new(9));
        assert_eq!(DiskId::new(9).as_usize(), 9usize);
    }
}
