//! Strongly-typed units for the `powercache` simulator workspace.
//!
//! Every quantity that crosses a crate boundary in this workspace is wrapped
//! in a newtype so that instants cannot be confused with durations, joules
//! with watts, or disk numbers with block numbers ([C-NEWTYPE]).
//!
//! * [`SimTime`] — an absolute instant on the simulation clock (µs).
//! * [`SimDuration`] — a span between two instants (µs).
//! * [`Joules`], [`Watts`] — energy and power, with the obvious
//!   `power × duration = energy` arithmetic.
//! * [`DiskId`], [`BlockNo`], [`BlockId`] — storage addressing.
//!
//! # Examples
//!
//! ```
//! use pc_units::{Joules, SimDuration, SimTime, Watts};
//!
//! let start = SimTime::ZERO;
//! let end = start + SimDuration::from_secs_f64(2.0);
//! let idle_power = Watts::new(10.2);
//! let energy: Joules = idle_power * (end - start);
//! assert!((energy.as_joules() - 20.4).abs() < 1e-9);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod ids;
mod time;

pub use energy::{Joules, Watts};
pub use ids::{BlockId, BlockNo, DiskId};
pub use time::{SimDuration, SimTime};
