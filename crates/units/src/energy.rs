//! Energy and power quantities.
//!
//! [`Watts`] × [`SimDuration`](crate::SimDuration) yields [`Joules`];
//! [`Joules`] ÷ [`Watts`] yields a duration. Both types are thin `f64`
//! wrappers that keep dimensional analysis in the type system.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::SimDuration;

/// An amount of energy, in joules.
///
/// # Examples
///
/// ```
/// use pc_units::{Joules, SimDuration, Watts};
///
/// let spin_up = Joules::new(135.0);
/// let idle = Watts::new(10.2) * SimDuration::from_secs(10);
/// assert!((spin_up + idle).as_joules() > 235.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

/// A rate of energy consumption, in watts.
///
/// # Examples
///
/// ```
/// use pc_units::{SimDuration, Watts};
///
/// let energy = Watts::new(2.5) * SimDuration::from_secs(4);
/// assert!((energy.as_joules() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy amount.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is not finite.
    #[must_use]
    pub fn new(joules: f64) -> Self {
        assert!(joules.is_finite(), "energy must be finite, got {joules}");
        Joules(joules)
    }

    /// Returns the amount in joules.
    #[must_use]
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// Returns the smaller of two amounts.
    #[must_use]
    pub fn min(self, other: Joules) -> Joules {
        Joules(self.0.min(other.0))
    }

    /// Returns the larger of two amounts.
    #[must_use]
    pub fn max(self, other: Joules) -> Joules {
        Joules(self.0.max(other.0))
    }
}

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power level.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is not finite.
    #[must_use]
    pub fn new(watts: f64) -> Self {
        assert!(watts.is_finite(), "power must be finite, got {watts}");
        Watts(watts)
    }

    /// Returns the level in watts.
    #[must_use]
    pub const fn as_watts(self) -> f64 {
        self.0
    }
}

impl Add for Joules {
    type Output = Joules;

    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;

    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;

    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<Watts> for Joules {
    type Output = SimDuration;

    /// Returns how long the energy would last at the given constant power.
    fn div(self, rhs: Watts) -> SimDuration {
        SimDuration::from_secs_f64(self.0 / rhs.0)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, Add::add)
    }
}

impl Mul<SimDuration> for Watts {
    type Output = Joules;

    fn mul(self, rhs: SimDuration) -> Joules {
        Joules(self.0 * rhs.as_secs_f64())
    }
}

impl Sub for Watts {
    type Output = Watts;

    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}J", self.0)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}W", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_duration_is_energy() {
        let e = Watts::new(10.0) * SimDuration::from_millis(1500);
        assert!((e.as_joules() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn energy_over_power_is_duration() {
        let d = Joules::new(20.0) / Watts::new(4.0);
        assert_eq!(d, SimDuration::from_secs(5));
    }

    #[test]
    fn joules_sum_and_ordering() {
        let total: Joules = [1.0, 2.0, 3.5].into_iter().map(Joules::new).sum();
        assert!((total.as_joules() - 6.5).abs() < 1e-12);
        assert!(Joules::new(1.0) < Joules::new(2.0));
        assert_eq!(Joules::new(1.0).max(Joules::new(2.0)), Joules::new(2.0));
        assert_eq!(Joules::new(1.0).min(Joules::new(2.0)), Joules::new(1.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_energy() {
        let _ = Joules::new(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Joules::new(1.5).to_string(), "1.500J");
        assert_eq!(Watts::new(10.2).to_string(), "10.200W");
    }
}
