//! Simulation clock types.
//!
//! The simulator uses a discrete clock with microsecond resolution. Two
//! distinct types keep instants and spans apart: [`SimTime`] is a point on
//! the clock, [`SimDuration`] is the distance between two points. Only the
//! operations that make physical sense are implemented (`time + duration`,
//! `time - time`, `duration * scalar`, …).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use pc_units::{SimDuration, SimTime};
///
/// let t = SimTime::from_millis(250);
/// assert_eq!(t + SimDuration::from_millis(750), SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in microseconds.
///
/// # Examples
///
/// ```
/// use pc_units::SimDuration;
///
/// let gap = SimDuration::from_secs(2) + SimDuration::from_millis(500);
/// assert!((gap.as_secs_f64() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Returns the instant as microseconds since the simulation start.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (possibly fractional) seconds since the start.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the span from `earlier` to `self`, or [`SimDuration::ZERO`]
    /// if `earlier` is actually later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Returns the span in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the span as (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns `true` if the span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the shorter of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns the longer of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns `self - other`, or [`SimDuration::ZERO`] if `other` is longer.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative scale factor, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a - b, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(100) * 3;
        assert_eq!(d, SimDuration::from_millis(300));
        assert_eq!(d / 2, SimDuration::from_millis(150));
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.0000015),
            SimDuration::from_micros(2)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }
}
