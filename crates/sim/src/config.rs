//! Simulation configuration and policy construction.

use pc_cache::policy::{
    ArcPolicy, Belady, Fifo, Lirs, Lru, MetaConfig, MetaPolicy, Mq, Opg, OpgDpm, Pa, PaLru,
    PaLruConfig, TwoQ,
};
use pc_cache::{ReplacementPolicy, WritePolicy};
use pc_diskmodel::{DiskPowerSpec, PowerModel, ServiceModel};
use pc_disksim::DpmPolicy;
use pc_trace::Trace;
use pc_units::{Joules, SimDuration};

/// Which replacement policy to run (constructed per trace, since the
/// off-line policies need the future).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Least-recently-used (the paper's baseline).
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Belady's off-line MIN.
    Belady,
    /// The off-line power-aware greedy algorithm, priced against the
    /// configured DPM with rounding threshold ε.
    Opg {
        /// Penalty rounding threshold (0 = pure OPG, huge = Belady).
        epsilon: Joules,
    },
    /// The on-line power-aware LRU with the paper's parameters (T derived
    /// from the power model's first NAP break-even time).
    PaLru,
    /// PA-LRU with explicit parameters (ablations).
    PaLruWith(PaLruConfig),
    /// ARC (Megiddo & Modha) sized to the cache capacity.
    Arc,
    /// The Multi-Queue policy (Zhou, Philbin & Li) sized to the cache
    /// capacity.
    Mq,
    /// LIRS (Jiang & Zhang) sized to the cache capacity.
    Lirs,
    /// 2Q (Johnson & Shasha) sized to the cache capacity.
    TwoQ,
    /// The generic PA wrapper around ARC (paper §4's claimed
    /// composability).
    PaArc(PaLruConfig),
    /// The generic PA wrapper around MQ.
    PaMq(PaLruConfig),
    /// The generic PA wrapper around LIRS.
    PaLirs(PaLruConfig),
    /// The generic PA wrapper around 2Q.
    PaTwoQ(PaLruConfig),
    /// The adaptive meta-policy: epoch-based online selection among the
    /// 11 online policies (hit ratio, cold-miss fraction and miss-gap
    /// distribution drive an AWRP-style weight ranking).
    Meta,
}

impl PolicySpec {
    /// Whether [`PolicySpec::build`] consumes the trace's future
    /// (off-line policies: Belady and OPG). Streaming entry points like
    /// [`run_replacement_stream`](crate::run_replacement_stream) only
    /// work for policies that don't — callers check this to pick between
    /// streaming and materializing.
    #[must_use]
    pub fn needs_future(&self) -> bool {
        matches!(self, PolicySpec::Belady | PolicySpec::Opg { .. })
    }

    /// A short display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            PolicySpec::Lru => "lru".into(),
            PolicySpec::Fifo => "fifo".into(),
            PolicySpec::Belady => "belady".into(),
            PolicySpec::Opg { epsilon } => format!("opg(eps={})", epsilon.as_joules()),
            PolicySpec::PaLru | PolicySpec::PaLruWith(_) => "pa-lru".into(),
            PolicySpec::Arc => "arc".into(),
            PolicySpec::Mq => "mq".into(),
            PolicySpec::Lirs => "lirs".into(),
            PolicySpec::TwoQ => "2q".into(),
            PolicySpec::PaArc(_) => "pa-arc".into(),
            PolicySpec::PaMq(_) => "pa-mq".into(),
            PolicySpec::PaLirs(_) => "pa-lirs".into(),
            PolicySpec::PaTwoQ(_) => "pa-2q".into(),
            PolicySpec::Meta => "meta".into(),
        }
    }

    /// Builds the policy instance for a trace, power model and cache
    /// capacity.
    #[must_use]
    pub fn build(
        &self,
        trace: &Trace,
        power: &PowerModel,
        dpm: DpmPolicy,
        capacity: usize,
    ) -> Box<dyn ReplacementPolicy> {
        // ARC/MQ size their ghosts against the capacity; clamp the
        // infinite-cache sentinel to something arithmetic-safe (ghosts
        // are irrelevant without evictions).
        let sized = capacity.min(1 << 30);
        match self {
            PolicySpec::Lru => Box::new(Lru::new()),
            PolicySpec::Fifo => Box::new(Fifo::new()),
            PolicySpec::Belady => Box::new(Belady::new(trace)),
            PolicySpec::Opg { epsilon } => {
                let pricing = match dpm {
                    DpmPolicy::Oracle => OpgDpm::Oracle,
                    _ => OpgDpm::Practical,
                };
                Box::new(Opg::new(trace, power.clone(), pricing, *epsilon))
            }
            PolicySpec::PaLru => Box::new(PaLru::new(PaLruConfig::for_power_model(power))),
            PolicySpec::PaLruWith(cfg) => Box::new(PaLru::new(cfg.clone())),
            PolicySpec::Arc => Box::new(ArcPolicy::new(sized)),
            PolicySpec::Mq => Box::new(Mq::new(sized)),
            PolicySpec::PaArc(cfg) => Box::new(Pa::new(
                cfg.clone(),
                ArcPolicy::new(sized),
                ArcPolicy::new(sized),
            )),
            PolicySpec::PaMq(cfg) => Box::new(Pa::new(cfg.clone(), Mq::new(sized), Mq::new(sized))),
            PolicySpec::Lirs => Box::new(Lirs::new(sized)),
            PolicySpec::TwoQ => Box::new(TwoQ::new(sized)),
            PolicySpec::PaLirs(cfg) => {
                Box::new(Pa::new(cfg.clone(), Lirs::new(sized), Lirs::new(sized)))
            }
            PolicySpec::PaTwoQ(cfg) => {
                Box::new(Pa::new(cfg.clone(), TwoQ::new(sized), TwoQ::new(sized)))
            }
            PolicySpec::Meta => {
                Box::new(MetaPolicy::new(MetaConfig::for_power_model(power, sized)))
            }
        }
    }
}

/// Full simulator configuration.
///
/// Defaults follow the paper's §5.1 setup: IBM Ultrastar 36Z15 with the
/// 6-mode multi-speed extension, Practical DPM, write-back caching, and a
/// 4096-block (32 MB at 8 KiB) storage cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Cache capacity in blocks (`usize::MAX` = the paper's
    /// infinite-cache lower bound).
    pub cache_blocks: usize,
    /// Disk data-sheet parameters.
    pub power_spec: DiskPowerSpec,
    /// Use the 6-mode multi-speed model (false = classic 2-mode).
    pub multi_speed: bool,
    /// Disk power management below the cache.
    pub dpm: DpmPolicy,
    /// Cache write policy.
    pub write_policy: WritePolicy,
    /// Mechanical timing model.
    pub service: ServiceModel,
    /// Response time charged to every access for the cache itself.
    pub hit_time: SimDuration,
    /// Sequential read-ahead depth (0 = disabled; on-line policies only).
    pub prefetch_depth: u64,
    /// Carrera-style serve-at-speed disks (multi-speed option 1; the
    /// paper uses option 2, serve at full speed only).
    pub serve_at_speed: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cache_blocks: 4_096,
            power_spec: DiskPowerSpec::ultrastar_36z15(),
            multi_speed: true,
            dpm: DpmPolicy::Practical,
            write_policy: WritePolicy::WriteBack,
            service: ServiceModel::ultrastar_36z15(),
            hit_time: SimDuration::from_micros(200),
            prefetch_depth: 0,
            serve_at_speed: false,
        }
    }
}

impl SimConfig {
    /// Sets the cache capacity in blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    #[must_use]
    pub fn with_cache_blocks(mut self, blocks: usize) -> Self {
        assert!(blocks > 0, "cache needs at least one block");
        self.cache_blocks = blocks;
        self
    }

    /// Switches to the infinite-cache baseline.
    #[must_use]
    pub fn with_infinite_cache(mut self) -> Self {
        self.cache_blocks = usize::MAX;
        self
    }

    /// Sets the disk power-management scheme.
    #[must_use]
    pub fn with_dpm(mut self, dpm: DpmPolicy) -> Self {
        self.dpm = dpm;
        self
    }

    /// Sets the write policy.
    #[must_use]
    pub fn with_write_policy(mut self, wp: WritePolicy) -> Self {
        self.write_policy = wp;
        self
    }

    /// Replaces the disk spec (e.g. the Figure-8 spin-up-cost sweep).
    #[must_use]
    pub fn with_power_spec(mut self, spec: DiskPowerSpec) -> Self {
        self.power_spec = spec;
        self
    }

    /// Selects the 2-mode model instead of multi-speed (ablations).
    #[must_use]
    pub fn with_two_mode_disks(mut self) -> Self {
        self.multi_speed = false;
        self
    }

    /// Enables sequential read-ahead of `depth` blocks behind every read
    /// miss (on-line replacement policies only).
    #[must_use]
    pub fn with_prefetch_depth(mut self, depth: u64) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Switches the disks to Carrera-style serve-at-speed operation
    /// (multi-speed option 1; requires a causal DPM).
    #[must_use]
    pub fn with_serve_at_speed(mut self) -> Self {
        self.serve_at_speed = true;
        self
    }

    /// The derived power model.
    #[must_use]
    pub fn power_model(&self) -> PowerModel {
        if self.multi_speed {
            PowerModel::multi_speed(&self.power_spec)
        } else {
            PowerModel::two_mode(&self.power_spec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_trace::OltpConfig;

    #[test]
    fn builders_compose() {
        let c = SimConfig::default()
            .with_cache_blocks(128)
            .with_dpm(DpmPolicy::Oracle)
            .with_write_policy(WritePolicy::WriteThrough)
            .with_two_mode_disks();
        assert_eq!(c.cache_blocks, 128);
        assert_eq!(c.dpm, DpmPolicy::Oracle);
        assert_eq!(c.power_model().mode_count(), 2);
        let inf = c.with_infinite_cache();
        assert_eq!(inf.cache_blocks, usize::MAX);
    }

    #[test]
    fn policy_specs_build() {
        let trace = OltpConfig::default().with_requests(100).generate(0);
        let config = SimConfig::default();
        let power = config.power_model();
        for spec in [
            PolicySpec::Lru,
            PolicySpec::Fifo,
            PolicySpec::Belady,
            PolicySpec::Arc,
            PolicySpec::Mq,
            PolicySpec::PaArc(PaLruConfig::default()),
            PolicySpec::PaMq(PaLruConfig::default()),
            PolicySpec::Opg {
                epsilon: Joules::ZERO,
            },
            PolicySpec::PaLru,
        ] {
            let p = spec.build(&trace, &power, DpmPolicy::Practical, 1024);
            assert!(!p.name().is_empty());
            assert!(!spec.name().is_empty());
        }
    }

    #[test]
    fn opg_pricing_follows_dpm() {
        let trace = OltpConfig::default().with_requests(50).generate(0);
        let config = SimConfig::default();
        let power = config.power_model();
        let spec = PolicySpec::Opg {
            epsilon: Joules::ZERO,
        };
        let oracle = spec.build(&trace, &power, DpmPolicy::Oracle, 1024);
        let practical = spec.build(&trace, &power, DpmPolicy::Practical, 1024);
        assert!(oracle.name().contains("oracle"));
        assert!(practical.name().contains("practical"));
    }
}
