//! The complete storage-system simulator: cache + disks + power
//! management, wired together the way the paper's CacheSim + DiskSim
//! stack was.
//!
//! Two runners cover the paper's two experiment families:
//!
//! * [`run_replacement`] — the §5 replacement-policy experiments
//!   (Figures 6–8). Two-phase: the cache filters the trace into per-disk
//!   request sequences; each disk then replays its sequence under Oracle
//!   or Practical DPM. Valid because no §5 policy reads live disk power
//!   state.
//! * [`run_write_policy`] — the §6 write-policy experiments (Figure 9).
//!   Integrated single pass: WBEU and WTDU consult the disks' *current*
//!   power mode, so cache and disks co-simulate (Practical DPM, like the
//!   paper's published panels).
//!
//! # Examples
//!
//! ```
//! use pc_sim::{run_replacement, PolicySpec, SimConfig};
//! use pc_trace::OltpConfig;
//!
//! let trace = OltpConfig::default().with_requests(2_000).generate(1);
//! let config = SimConfig::default().with_cache_blocks(512);
//! let lru = run_replacement(&trace, &PolicySpec::Lru, &config);
//! let infinite = run_replacement(&trace, &PolicySpec::Lru, &config.clone().with_infinite_cache());
//! assert!(infinite.cache.hit_ratio() >= lru.cache.hit_ratio());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod report;
mod runner;

pub use config::{PolicySpec, SimConfig};
pub use report::{RunTiming, SimReport};
pub use runner::{
    run_replacement, run_replacement_stream, run_write_policy, OnlineStepper, StepOutcome,
};
