//! Whole-simulation reports.

use pc_cache::{CacheStats, IntervalHistogram};
use pc_disksim::DiskReport;
use pc_units::{Joules, SimDuration, SimTime};

/// Wall-clock self-timing of one simulation run (host time, not
/// simulated time).
///
/// Timing is observational: it is excluded from [`SimReport`] equality
/// and from [`SimReport::to_json`], so reports stay byte-identical across
/// machines and `--jobs` settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTiming {
    /// Wall-clock time the run took.
    pub wall: std::time::Duration,
    /// Trace requests simulated per wall-clock second.
    pub req_per_sec: f64,
}

impl RunTiming {
    /// Builds timing from a measured wall time and the request count.
    #[must_use]
    pub fn from_wall(wall: std::time::Duration, requests: u64) -> Self {
        let secs = wall.as_secs_f64();
        RunTiming {
            wall,
            req_per_sec: if secs > 0.0 {
                requests as f64 / secs
            } else {
                0.0
            },
        }
    }

    /// Wall time in milliseconds.
    #[must_use]
    pub fn wall_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }
}

/// Everything one simulation run produces: cache counters, per-disk
/// energy/time accounting, log-device accounting (WTDU), and the
/// client-visible response-time aggregate.
///
/// Equality ignores [`timing`](SimReport::timing): two runs of the same
/// experiment compare equal however long they took.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Replacement policy name.
    pub policy: String,
    /// Write policy name.
    pub write_policy: String,
    /// Cache counters.
    pub cache: CacheStats,
    /// Per-disk accounting, indexed by disk.
    pub disks: Vec<DiskReport>,
    /// Log-device accounting (WTDU only). Only its *service* energy is
    /// charged to the run (the log device is assumed always-on for other
    /// reasons, matching the paper).
    pub log: Option<DiskReport>,
    /// Sum of client-visible response times across all trace requests.
    pub response_total: SimDuration,
    /// Distribution of per-request response times (geometric bins from
    /// 100 µs), for tail-latency queries.
    pub response_hist: IntervalHistogram,
    /// Number of trace requests.
    pub requests: u64,
    /// Simulation horizon (energy is accounted up to this instant).
    pub horizon: SimTime,
    /// Wall-clock self-timing (excluded from equality and JSON).
    pub timing: RunTiming,
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        // Every field except `timing`, which is host noise.
        self.policy == other.policy
            && self.write_policy == other.write_policy
            && self.cache == other.cache
            && self.disks == other.disks
            && self.log == other.log
            && self.response_total == other.response_total
            && self.response_hist == other.response_hist
            && self.requests == other.requests
            && self.horizon == other.horizon
    }
}

impl SimReport {
    /// Total energy: all data-disk energy plus the log device's
    /// incremental service energy (paper §6 includes log-write energy in
    /// WTDU's numbers).
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        let disks: Joules = self.disks.iter().map(DiskReport::total_energy).sum();
        let log = self.log.as_ref().map_or(Joules::ZERO, |l| l.service_energy);
        disks + log
    }

    /// Mean client-visible response time.
    #[must_use]
    pub fn mean_response(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.response_total / self.requests
        }
    }

    /// The `p`-quantile of per-request response times (histogram upper
    /// bound; e.g. `response_quantile(0.99)` for the p99 tail).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    #[must_use]
    pub fn response_quantile(&self, p: f64) -> SimDuration {
        self.response_hist.quantile(p)
    }

    /// The fine-binned histogram a runner should collect responses into.
    #[must_use]
    pub fn response_histogram() -> IntervalHistogram {
        // 100 µs … ~1.7 h in 24 doubling bins: covers cache hits through
        // multi-spin-up pile-ups.
        IntervalHistogram::geometric(SimDuration::from_micros(100), 24)
    }

    /// This run's energy as a fraction of a baseline run's (the paper's
    /// "normalized to LRU" bars).
    #[must_use]
    pub fn energy_ratio(&self, baseline: &SimReport) -> f64 {
        self.total_energy().as_joules() / baseline.total_energy().as_joules()
    }

    /// Percentage energy saving relative to a baseline (positive = this
    /// run uses less energy), the paper's Figure 8/9 metric.
    #[must_use]
    pub fn saving_over(&self, baseline: &SimReport) -> f64 {
        100.0 * (1.0 - self.energy_ratio(baseline))
    }

    /// Total spin-ups across all data disks.
    #[must_use]
    pub fn total_spin_ups(&self) -> u64 {
        self.disks.iter().map(|d| d.spin_ups).sum()
    }

    /// Per-disk total energy, **disk-indexed** (element `i` is disk `i`).
    ///
    /// Downstream consumers (loadgen closing reports, per-policy energy
    /// breakdowns) must iterate this vector — never collect disks into a
    /// hash map first — so the serialized breakdown is byte-stable across
    /// runs and hosts.
    #[must_use]
    pub fn energy_by_disk(&self) -> Vec<Joules> {
        self.disks.iter().map(DiskReport::total_energy).collect()
    }

    /// Serializes the report as a deterministic JSON document.
    ///
    /// Hand-rolled (the workspace is fully self-contained, no serde):
    /// fixed key order, durations as integer microseconds, energies as
    /// joules. [`timing`](SimReport::timing) is deliberately omitted so
    /// identical simulations serialize byte-identically regardless of
    /// host speed or `--jobs`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_str_field(&mut out, "policy", &self.policy);
        out.push(',');
        push_str_field(&mut out, "write_policy", &self.write_policy);
        out.push_str(",\"cache\":");
        push_cache_json(&mut out, &self.cache);
        out.push_str(",\"energy_by_disk_j\":[");
        // Disk-indexed, not map-ordered: element i is disk i, so the
        // document is byte-stable run over run.
        for (i, e) in self.energy_by_disk().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            use std::fmt::Write as _;
            let _ = write!(out, "{:?}", e.as_joules());
        }
        out.push_str("],\"disks\":[");
        for (i, d) in self.disks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_disk_json(&mut out, d);
        }
        out.push_str("],\"log\":");
        match &self.log {
            Some(l) => push_disk_json(&mut out, l),
            None => out.push_str("null"),
        }
        use std::fmt::Write as _;
        let _ = write!(
            out,
            ",\"response_total_us\":{},\"response_hist\":",
            self.response_total.as_micros()
        );
        push_hist_json(&mut out, &self.response_hist);
        let _ = write!(
            out,
            ",\"requests\":{},\"horizon_us\":{}}}",
            self.requests,
            self.horizon.as_micros()
        );
        out
    }
}

/// Appends `"key":"value"` with minimal string escaping (policy names are
/// plain ASCII, but quote/backslash are escaped defensively).
fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_cache_json(out: &mut String, c: &CacheStats) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"accesses\":{},\"hits\":{},\"reads\":{},\"writes\":{},\
         \"evictions\":{},\"dirty_evictions\":{},\"disk_reads\":{},\
         \"disk_writes\":{},\"log_writes\":{},\"prefetch_reads\":{}}}",
        c.accesses,
        c.hits,
        c.reads,
        c.writes,
        c.evictions,
        c.dirty_evictions,
        c.disk_reads,
        c.disk_writes,
        c.log_writes,
        c.prefetch_reads
    );
}

fn push_disk_json(out: &mut String, d: &DiskReport) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"service_time_us\":{}", d.service_time.as_micros());
    out.push_str(",\"mode_time_us\":[");
    for (i, t) in d.mode_time.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", t.as_micros());
    }
    let _ = write!(
        out,
        "],\"spin_down_time_us\":{},\"spin_up_time_us\":{},\
         \"service_energy_j\":{:?}",
        d.spin_down_time.as_micros(),
        d.spin_up_time.as_micros(),
        d.service_energy.as_joules()
    );
    out.push_str(",\"mode_energy_j\":[");
    for (i, e) in d.mode_energy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{:?}", e.as_joules());
    }
    let _ = write!(
        out,
        "],\"spin_down_energy_j\":{:?},\"spin_up_energy_j\":{:?},\
         \"requests\":{},\"spin_downs\":{},\"spin_ups\":{},\
         \"response_total_us\":{},\"response_max_us\":{},\
         \"interarrival_total_us\":{},\"interarrival_count\":{}}}",
        d.spin_down_energy.as_joules(),
        d.spin_up_energy.as_joules(),
        d.requests,
        d.spin_downs,
        d.spin_ups,
        d.response_total.as_micros(),
        d.response_max.as_micros(),
        d.interarrival_total.as_micros(),
        d.interarrival_count
    );
}

fn push_hist_json(out: &mut String, h: &IntervalHistogram) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"total\":{},\"cdf\":[", h.total());
    for (i, (edge, frac)) in h.cdf().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{:?}]", edge.as_micros(), frac);
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_energy(joules: f64) -> SimReport {
        let mut d = DiskReport::new(1);
        d.service_energy = Joules::new(joules);
        SimReport {
            disks: vec![d],
            requests: 4,
            response_total: SimDuration::from_secs(2),
            ..SimReport::default()
        }
    }

    #[test]
    fn ratios_and_savings() {
        let a = report_with_energy(80.0);
        let b = report_with_energy(100.0);
        assert!((a.energy_ratio(&b) - 0.8).abs() < 1e-12);
        assert!((a.saving_over(&b) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn log_service_energy_counts_but_only_service() {
        let mut r = report_with_energy(10.0);
        let mut log = DiskReport::new(1);
        log.service_energy = Joules::new(5.0);
        log.mode_energy[0] = Joules::new(1_000.0); // idle power: excluded
        r.log = Some(log);
        assert!((r.total_energy().as_joules() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mean_response() {
        let r = report_with_energy(1.0);
        assert_eq!(r.mean_response(), SimDuration::from_millis(500));
        assert_eq!(SimReport::default().mean_response(), SimDuration::ZERO);
    }

    #[test]
    fn energy_breakdown_is_disk_indexed_and_byte_stable() {
        let mut r = report_with_energy(10.0);
        let mut d1 = DiskReport::new(1);
        d1.service_energy = Joules::new(3.0);
        r.disks.push(d1);
        let by_disk = r.energy_by_disk();
        assert_eq!(by_disk.len(), 2);
        assert!((by_disk[0].as_joules() - 10.0).abs() < 1e-12);
        assert!((by_disk[1].as_joules() - 3.0).abs() < 1e-12);
        let json = r.to_json();
        assert!(json.contains("\"energy_by_disk_j\":[10.0,3.0]"), "{json}");
        assert_eq!(json, r.clone().to_json(), "serialization is stable");
    }
}
