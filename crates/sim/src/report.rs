//! Whole-simulation reports.

use serde::{Deserialize, Serialize};

use pc_cache::{CacheStats, IntervalHistogram};
use pc_disksim::DiskReport;
use pc_units::{Joules, SimDuration, SimTime};

/// Everything one simulation run produces: cache counters, per-disk
/// energy/time accounting, log-device accounting (WTDU), and the
/// client-visible response-time aggregate.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Replacement policy name.
    pub policy: String,
    /// Write policy name.
    pub write_policy: String,
    /// Cache counters.
    pub cache: CacheStats,
    /// Per-disk accounting, indexed by disk.
    pub disks: Vec<DiskReport>,
    /// Log-device accounting (WTDU only). Only its *service* energy is
    /// charged to the run (the log device is assumed always-on for other
    /// reasons, matching the paper).
    pub log: Option<DiskReport>,
    /// Sum of client-visible response times across all trace requests.
    pub response_total: SimDuration,
    /// Distribution of per-request response times (geometric bins from
    /// 100 µs), for tail-latency queries.
    pub response_hist: IntervalHistogram,
    /// Number of trace requests.
    pub requests: u64,
    /// Simulation horizon (energy is accounted up to this instant).
    pub horizon: SimTime,
}

impl SimReport {
    /// Total energy: all data-disk energy plus the log device's
    /// incremental service energy (paper §6 includes log-write energy in
    /// WTDU's numbers).
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        let disks: Joules = self.disks.iter().map(DiskReport::total_energy).sum();
        let log = self.log.as_ref().map_or(Joules::ZERO, |l| l.service_energy);
        disks + log
    }

    /// Mean client-visible response time.
    #[must_use]
    pub fn mean_response(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.response_total / self.requests
        }
    }

    /// The `p`-quantile of per-request response times (histogram upper
    /// bound; e.g. `response_quantile(0.99)` for the p99 tail).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    #[must_use]
    pub fn response_quantile(&self, p: f64) -> SimDuration {
        self.response_hist.quantile(p)
    }

    /// The fine-binned histogram a runner should collect responses into.
    #[must_use]
    pub fn response_histogram() -> IntervalHistogram {
        // 100 µs … ~1.7 h in 24 doubling bins: covers cache hits through
        // multi-spin-up pile-ups.
        IntervalHistogram::geometric(SimDuration::from_micros(100), 24)
    }

    /// This run's energy as a fraction of a baseline run's (the paper's
    /// "normalized to LRU" bars).
    #[must_use]
    pub fn energy_ratio(&self, baseline: &SimReport) -> f64 {
        self.total_energy().as_joules() / baseline.total_energy().as_joules()
    }

    /// Percentage energy saving relative to a baseline (positive = this
    /// run uses less energy), the paper's Figure 8/9 metric.
    #[must_use]
    pub fn saving_over(&self, baseline: &SimReport) -> f64 {
        100.0 * (1.0 - self.energy_ratio(baseline))
    }

    /// Total spin-ups across all data disks.
    #[must_use]
    pub fn total_spin_ups(&self) -> u64 {
        self.disks.iter().map(|d| d.spin_ups).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_energy(joules: f64) -> SimReport {
        let mut d = DiskReport::new(1);
        d.service_energy = Joules::new(joules);
        SimReport {
            disks: vec![d],
            requests: 4,
            response_total: SimDuration::from_secs(2),
            ..SimReport::default()
        }
    }

    #[test]
    fn ratios_and_savings() {
        let a = report_with_energy(80.0);
        let b = report_with_energy(100.0);
        assert!((a.energy_ratio(&b) - 0.8).abs() < 1e-12);
        assert!((a.saving_over(&b) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn log_service_energy_counts_but_only_service() {
        let mut r = report_with_energy(10.0);
        let mut log = DiskReport::new(1);
        log.service_energy = Joules::new(5.0);
        log.mode_energy[0] = Joules::new(1_000.0); // idle power: excluded
        r.log = Some(log);
        assert!((r.total_energy().as_joules() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mean_response() {
        let r = report_with_energy(1.0);
        assert_eq!(r.mean_response(), SimDuration::from_millis(500));
        assert_eq!(SimReport::default().mean_response(), SimDuration::ZERO);
    }
}
