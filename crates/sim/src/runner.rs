//! The simulation loops.

use pc_cache::{BlockCache, Effect, WritePolicy};
use pc_diskmodel::ServiceRequest;
use pc_disksim::{DiskArray, DiskSim, DpmPolicy};
use pc_trace::{IoOp, Record, Trace};
use pc_units::{BlockNo, DiskId, SimDuration, SimTime};

use crate::{PolicySpec, SimConfig, SimReport};

/// Runs a replacement-policy experiment (paper §5, Figures 6–8): the
/// cache shapes each disk's request sequence, and the disks account
/// energy under the configured DPM (Oracle or Practical).
///
/// The write policy should be power-*unaware* here (write-back by
/// default); use [`run_write_policy`] for WBEU/WTDU.
///
/// # Panics
///
/// Panics if the configuration combines Oracle DPM with a power-aware
/// write policy (WBEU/WTDU), which is not causally well-defined — see
/// DESIGN.md §2.
#[must_use]
pub fn run_replacement(trace: &Trace, policy: &PolicySpec, config: &SimConfig) -> SimReport {
    run(trace, policy, config)
}

/// Runs a write-policy experiment (paper §6, Figure 9) under a causal DPM
/// (the paper's published Figure-9 panels use Practical DPM).
///
/// # Panics
///
/// Panics if `config.dpm` is [`DpmPolicy::Oracle`].
#[must_use]
pub fn run_write_policy(trace: &Trace, policy: &PolicySpec, config: &SimConfig) -> SimReport {
    assert!(
        config.dpm != DpmPolicy::Oracle,
        "write-policy experiments need a causal DPM (the cache reads live disk state)"
    );
    run(trace, policy, config)
}

/// The single simulation loop both entry points share: build the policy
/// for the trace, then drive an [`OnlineStepper`] over it record by
/// record.
fn run(trace: &Trace, policy: &PolicySpec, config: &SimConfig) -> SimReport {
    let wall_start = std::time::Instant::now();
    let power = config.power_model();
    let built = policy.build(trace, &power, config.dpm, config.cache_blocks);
    let mut stepper = OnlineStepper::new(trace.disk_count(), built, config);
    for record in trace {
        stepper.step(record);
    }
    let mut report = stepper.into_report();
    report.timing = crate::RunTiming::from_wall(wall_start.elapsed(), report.requests);
    report
}

/// Runs a replacement-policy experiment off a record stream — same loop,
/// same accounting, same [`SimReport`] as [`run_replacement`], but the
/// trace never needs to exist as an in-memory [`Trace`]: a time-ordered
/// memory-mapped file (or any other iterator) feeds the stepper directly,
/// so steady-state memory is O(1) in the trace length.
///
/// Records must arrive in non-decreasing time order — the stepper is a
/// discrete-event timeline. File-backed callers check sortedness at open
/// time and fall back to the materializing path when it fails.
///
/// # Panics
///
/// Panics if `policy` is off-line ([`PolicySpec::needs_future`]): Belady
/// and OPG consume the whole future up front and cannot stream. Also
/// panics under the same Oracle-DPM/write-policy conflict as
/// [`run_replacement`].
#[must_use]
pub fn run_replacement_stream<I>(
    disk_count: u32,
    records: I,
    policy: &PolicySpec,
    config: &SimConfig,
) -> SimReport
where
    I: IntoIterator<Item = Record>,
{
    assert!(
        !policy.needs_future(),
        "off-line policy {} needs the whole trace; use run_replacement",
        policy.name()
    );
    let wall_start = std::time::Instant::now();
    let power = config.power_model();
    // On-line policies ignore the trace argument, so an empty one builds
    // the identical policy instance.
    let built = policy.build(
        &Trace::new(disk_count),
        &power,
        config.dpm,
        config.cache_blocks,
    );
    let mut stepper = OnlineStepper::new(disk_count, built, config);
    for record in records {
        stepper.step(&record);
    }
    let mut report = stepper.into_report();
    report.timing = crate::RunTiming::from_wall(wall_start.elapsed(), report.requests);
    report
}

/// The outcome of one online request step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Whether every block of the request was resident in the cache.
    pub hit: bool,
    /// The client-visible response time (cache hit time plus any
    /// synchronous disk work the request waited for).
    pub response: SimDuration,
}

/// The reusable per-request service/energy step: one cache, one virtual
/// disk array (plus the WTDU log device), advanced request by request.
///
/// This is the integrated simulation loop of [`run_replacement`] /
/// [`run_write_policy`] factored out so an *online* host — the `pc-server`
/// daemon, a shard thread, a REPL — can push requests as they arrive
/// instead of replaying a prebuilt [`Trace`]. Each [`step`](Self::step)
/// drives the cache, services the emitted effects (coalescing contiguous
/// blocks into multi-block transfers), and records the client-visible
/// response; [`into_report`](Self::into_report) closes the energy books
/// and returns the same [`SimReport`] a batch run would have produced.
///
/// Request times must be non-decreasing — the stepper is a discrete-event
/// timeline, not a scheduler.
///
/// # Examples
///
/// ```
/// use pc_sim::{OnlineStepper, SimConfig};
/// use pc_cache::policy::Lru;
/// use pc_trace::{IoOp, Record};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let mut stepper = OnlineStepper::new(1, Box::new(Lru::new()), &SimConfig::default());
/// let block = BlockId::new(DiskId::new(0), BlockNo::new(7));
/// let miss = stepper.step(&Record::new(SimTime::from_millis(1), block, IoOp::Read));
/// let hit = stepper.step(&Record::new(SimTime::from_millis(2), block, IoOp::Read));
/// assert!(!miss.hit && hit.hit);
/// assert!(stepper.live_energy() > pc_units::Joules::ZERO);
/// ```
pub struct OnlineStepper {
    cache: BlockCache,
    array: DiskArray,
    log_disk: DiskSim,
    log_cursor: u64,
    write_policy: WritePolicy,
    hit_time: SimDuration,
    response_total: SimDuration,
    response_hist: pc_cache::IntervalHistogram,
    horizon: SimTime,
    requests: u64,
    // One scratch buffer for the stepper's lifetime: the cache fills it on
    // each access and `coalesce` walks it in place, so the steady-state
    // per-request path performs no heap allocation.
    effects: Vec<Effect>,
}

impl std::fmt::Debug for OnlineStepper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineStepper")
            .field("cache", &self.cache)
            .field("requests", &self.requests)
            .field("horizon", &self.horizon)
            .finish_non_exhaustive()
    }
}

impl OnlineStepper {
    /// Creates a stepper over `disk_count` disks with the given (already
    /// built) replacement policy and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration combines Oracle DPM with a power-aware
    /// write policy (WBEU/WTDU) — the cache reads live disk state, so the
    /// combination is not causally well-defined (see DESIGN.md §2).
    #[must_use]
    pub fn new(
        disk_count: u32,
        policy: Box<dyn pc_cache::ReplacementPolicy>,
        config: &SimConfig,
    ) -> Self {
        let power_aware_writes = matches!(
            config.write_policy,
            WritePolicy::Wbeu { .. } | WritePolicy::Wtdu
        );
        assert!(
            !(power_aware_writes && config.dpm == DpmPolicy::Oracle),
            "WBEU/WTDU require a causal DPM"
        );
        let power = config.power_model();
        let cache = BlockCache::new(config.cache_blocks, policy, config.write_policy)
            .with_prefetch_depth(config.prefetch_depth);
        let array = DiskArray::new_configured(
            disk_count.max(1),
            power.clone(),
            config.service.clone(),
            config.dpm,
            config.serve_at_speed,
        );
        // The WTDU log device: always active; only its service energy is
        // ever charged (see SimReport::total_energy).
        let log_disk = DiskSim::new(
            DiskId::new(disk_count),
            power,
            config.service.clone(),
            DpmPolicy::AlwaysOn,
        );
        OnlineStepper {
            cache,
            array,
            log_disk,
            log_cursor: 0,
            write_policy: config.write_policy,
            hit_time: config.hit_time,
            response_total: SimDuration::ZERO,
            response_hist: SimReport::response_histogram(),
            horizon: SimTime::ZERO,
            requests: 0,
            effects: Vec::new(),
        }
    }

    /// Processes one request: cache access, disk-side effect servicing,
    /// and response accounting. The cache consults live disk power state
    /// (used only by WBEU/WTDU); the disks lazily account idle periods,
    /// which is what lets Oracle DPM make clairvoyant per-gap decisions in
    /// the same pass.
    pub fn step(&mut self, record: &Record) -> StepOutcome {
        self.requests += 1;
        self.horizon = self.horizon.max(record.time);
        let array = &mut self.array;
        let outcome = self.cache.access(
            record,
            |d| array.disk(d).is_sleeping(record.time),
            &mut self.effects,
        );

        // Service the disk-side work in order, coalescing contiguous
        // single-block effects into multi-block transfers (a 16-block
        // read pays one seek + one latency, not sixteen), and remembering
        // the response of the transfer that carries the client's own I/O.
        let mut own_read = None;
        let mut own_write = None;
        for run in coalesce(&self.effects) {
            match run {
                EffectRun::Disk {
                    first,
                    blocks,
                    read,
                } => {
                    let served = self.array.service(
                        first.disk(),
                        record.time,
                        ServiceRequest {
                            block: first.block(),
                            blocks,
                        },
                    );
                    let carries_own = first.disk() == record.block.disk()
                        && (first.block().number()..first.block().number() + blocks)
                            .contains(&record.block.block().number());
                    if carries_own {
                        if read {
                            own_read = Some(served.response);
                        } else {
                            own_write = Some(served.response);
                        }
                    }
                }
                EffectRun::Log { blocks } => {
                    // Log appends are sequential on the log device; they
                    // are always the client's own write (only the current
                    // request's write handler emits them).
                    let served = self.log_disk.service(
                        record.time,
                        ServiceRequest {
                            block: BlockNo::new(self.log_cursor + 1),
                            blocks,
                        },
                    );
                    self.log_cursor += blocks;
                    own_write = Some(served.response);
                }
            }
        }

        // Client-visible response: cache time, plus the synchronous disk
        // work this request had to wait for. Write-back style writes
        // complete in the cache; write-through style writes wait for
        // persistence; read misses wait for the fetch.
        let synchronous = match record.op {
            IoOp::Read => own_read.unwrap_or(SimDuration::ZERO),
            IoOp::Write => match self.write_policy {
                WritePolicy::WriteThrough | WritePolicy::Wtdu => {
                    own_write.unwrap_or(SimDuration::ZERO)
                }
                WritePolicy::WriteBack | WritePolicy::Wbeu { .. } => SimDuration::ZERO,
            },
        };
        let response = self.hit_time + synchronous;
        self.response_total += response;
        self.response_hist.record(response);
        StepOutcome {
            hit: outcome.hit,
            response,
        }
    }

    /// The cache's counters so far (a `Copy` snapshot — safe to hand
    /// across threads).
    #[must_use]
    pub fn cache_stats(&self) -> pc_cache::CacheStats {
        self.cache.stats()
    }

    /// The policy's adaptive-selection gauges (`--policy meta` only;
    /// fixed policies return `None`).
    #[must_use]
    pub fn meta_stats(&self) -> Option<pc_cache::MetaStats> {
        self.cache.meta_stats()
    }

    /// Requests stepped so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The latest request time seen.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Energy accounted so far: all data-disk energy plus the log
    /// device's incremental service energy. The disks account lazily, so
    /// this covers each disk up to its most recent power event; the final
    /// [`into_report`](Self::into_report) closes the books through the
    /// full horizon.
    #[must_use]
    pub fn live_energy(&self) -> pc_units::Joules {
        let disks: pc_units::Joules = self.array.reports().iter().map(|d| d.total_energy()).sum();
        disks + self.log_disk.report().service_energy
    }

    /// The per-request response-time distribution so far.
    #[must_use]
    pub fn response_hist(&self) -> &pc_cache::IntervalHistogram {
        &self.response_hist
    }

    /// The dense cache slot `block` currently occupies, if resident.
    /// Read-only: the serving layer's payload slab uses this to address
    /// per-block storage without touching policy or energy state.
    #[must_use]
    pub fn resident_slot(&self, block: pc_units::BlockId) -> Option<pc_cache::Slot> {
        self.cache.slot_of(block)
    }

    /// Exclusive upper bound on slot indices ever issued by the cache —
    /// the safe length for slot-parallel side tables.
    #[must_use]
    pub fn slot_bound(&self) -> usize {
        self.cache.slot_bound()
    }

    /// Sum of client-visible response times so far.
    #[must_use]
    pub fn response_total(&self) -> SimDuration {
        self.response_total
    }

    /// Finishes the timeline (accounting every disk through the horizon)
    /// and returns the complete report. `timing` is left default — batch
    /// drivers stamp their own wall-clock measurement.
    #[must_use]
    pub fn into_report(mut self) -> SimReport {
        let end = self
            .horizon
            .max(self.array.latest_completion())
            .max(self.log_disk.ready_at());
        self.array.finish(end);
        self.log_disk.finish(end);

        let log = if self.cache.stats().log_writes > 0 || self.write_policy == WritePolicy::Wtdu {
            Some(self.log_disk.report().clone())
        } else {
            None
        };

        SimReport {
            policy: self.cache.policy_name(),
            write_policy: self.write_policy.name().to_owned(),
            cache: self.cache.stats(),
            disks: self.array.reports().into_iter().cloned().collect(),
            log,
            response_total: self.response_total,
            response_hist: self.response_hist,
            requests: self.requests,
            horizon: end,
            timing: crate::RunTiming::default(),
        }
    }
}

/// A maximal run of coalescible effects: contiguous same-direction disk
/// transfers, or consecutive log appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EffectRun {
    /// `blocks` consecutive blocks starting at `first`, read or written.
    Disk {
        first: pc_units::BlockId,
        blocks: u64,
        read: bool,
    },
    /// `blocks` consecutive appends to the log device.
    Log { blocks: u64 },
}

/// Merges per-block effects into multi-block transfers where contiguous.
///
/// Returns a lazy iterator over the effect slice, so coalescing allocates
/// nothing: each [`EffectRun`] is produced on demand by advancing a cursor
/// through the slice.
fn coalesce(effects: &[Effect]) -> Coalesce<'_> {
    Coalesce { effects, pos: 0 }
}

/// Iterator state for [`coalesce`]: a cursor over the effect slice.
struct Coalesce<'a> {
    effects: &'a [Effect],
    pos: usize,
}

impl Iterator for Coalesce<'_> {
    type Item = EffectRun;

    fn next(&mut self) -> Option<EffectRun> {
        let first = *self.effects.get(self.pos)?;
        self.pos += 1;
        match first {
            Effect::ReadDisk(b) | Effect::WriteDisk(b) => {
                let read = matches!(first, Effect::ReadDisk(_));
                let mut blocks = 1u64;
                while let Some(&next) = self.effects.get(self.pos) {
                    let (nb, next_read) = match next {
                        Effect::ReadDisk(n) => (n, true),
                        Effect::WriteDisk(n) => (n, false),
                        Effect::WriteLog(_) => break,
                    };
                    if next_read != read
                        || nb.disk() != b.disk()
                        || nb.block().number() != b.block().number() + blocks
                    {
                        break;
                    }
                    blocks += 1;
                    self.pos += 1;
                }
                Some(EffectRun::Disk {
                    first: b,
                    blocks,
                    read,
                })
            }
            Effect::WriteLog(_) => {
                let mut blocks = 1u64;
                while matches!(self.effects.get(self.pos), Some(Effect::WriteLog(_))) {
                    blocks += 1;
                    self.pos += 1;
                }
                Some(EffectRun::Log { blocks })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_trace::{CelloConfig, OltpConfig, SyntheticConfig};
    use pc_units::Joules;

    fn oltp(n: usize) -> Trace {
        OltpConfig::default().with_requests(n).generate(42)
    }

    #[test]
    fn accounting_covers_the_whole_horizon_on_every_disk() {
        let t = oltp(3_000);
        let r = run_replacement(&t, &PolicySpec::Lru, &SimConfig::default());
        assert_eq!(r.disks.len(), 21);
        for d in &r.disks {
            // Total accounted time ≥ horizon (waits extend past arrivals).
            assert!(
                d.total_time().as_secs_f64() >= (r.horizon - SimTime::ZERO).as_secs_f64() - 1e-6
            );
        }
        assert!(r.total_energy() > Joules::ZERO);
        assert!(r.mean_response() > SimDuration::ZERO);
    }

    #[test]
    fn oracle_dpm_beats_practical_dpm() {
        let t = oltp(3_000);
        let practical = run_replacement(&t, &PolicySpec::Lru, &SimConfig::default());
        let oracle = run_replacement(
            &t,
            &PolicySpec::Lru,
            &SimConfig::default().with_dpm(DpmPolicy::Oracle),
        );
        assert!(oracle.total_energy() < practical.total_energy());
        // Oracle never delays a request for spin-ups.
        assert!(oracle.mean_response() <= practical.mean_response());
    }

    #[test]
    fn infinite_cache_is_an_energy_lower_bound_under_oracle() {
        let t = oltp(4_000);
        let cfg = SimConfig::default().with_dpm(DpmPolicy::Oracle);
        let infinite = run_replacement(&t, &PolicySpec::Lru, &cfg.clone().with_infinite_cache());
        for policy in [PolicySpec::Lru, PolicySpec::Belady, PolicySpec::PaLru] {
            let r = run_replacement(&t, &policy, &cfg);
            assert!(
                infinite.total_energy().as_joules() <= r.total_energy().as_joules() * 1.001,
                "infinite {} vs {} {}",
                infinite.total_energy(),
                r.policy,
                r.total_energy()
            );
        }
    }

    #[test]
    fn belady_minimizes_misses_across_policies() {
        let t = oltp(4_000);
        let cfg = SimConfig::default();
        let belady = run_replacement(&t, &PolicySpec::Belady, &cfg);
        for policy in [PolicySpec::Lru, PolicySpec::Fifo, PolicySpec::PaLru] {
            let r = run_replacement(&t, &policy, &cfg);
            assert!(
                belady.cache.misses() <= r.cache.misses(),
                "belady {} vs {} {}",
                belady.cache.misses(),
                r.policy,
                r.cache.misses()
            );
        }
    }

    #[test]
    fn write_back_saves_energy_over_write_through_on_write_heavy_traffic() {
        let t = SyntheticConfig::default()
            .with_requests(6_000)
            .with_disks(8)
            .with_write_ratio(0.9)
            .generate(7);
        let wb = run_write_policy(
            &t,
            &PolicySpec::Lru,
            &SimConfig::default().with_write_policy(WritePolicy::WriteBack),
        );
        let wt = run_write_policy(
            &t,
            &PolicySpec::Lru,
            &SimConfig::default().with_write_policy(WritePolicy::WriteThrough),
        );
        assert!(
            wb.total_energy() < wt.total_energy(),
            "wb {} wt {}",
            wb.total_energy(),
            wt.total_energy()
        );
        // Write-back defers far more disk writes than write-through issues.
        assert!(wb.cache.disk_writes < wt.cache.disk_writes);
    }

    #[test]
    fn wtdu_logs_instead_of_waking_disks() {
        let t = SyntheticConfig::default()
            .with_requests(4_000)
            .with_disks(8)
            .with_write_ratio(0.8)
            .generate(3);
        let wtdu = run_write_policy(
            &t,
            &PolicySpec::Lru,
            &SimConfig::default().with_write_policy(WritePolicy::Wtdu),
        );
        assert!(wtdu.cache.log_writes > 0, "some writes must hit the log");
        assert!(wtdu.log.is_some());
        let wt = run_write_policy(
            &t,
            &PolicySpec::Lru,
            &SimConfig::default().with_write_policy(WritePolicy::WriteThrough),
        );
        assert!(
            wtdu.total_energy() < wt.total_energy(),
            "wtdu {} wt {}",
            wtdu.total_energy(),
            wt.total_energy()
        );
    }

    #[test]
    fn cello_offers_little_headroom() {
        // The paper's §5.2: Cello's cold-miss-dominated, dense traffic
        // leaves even an infinite cache only ~12% below LRU.
        let t = CelloConfig::default().with_requests(20_000).generate(9);
        let cfg = SimConfig::default();
        let lru = run_replacement(&t, &PolicySpec::Lru, &cfg);
        let infinite = run_replacement(&t, &PolicySpec::Lru, &cfg.clone().with_infinite_cache());
        let ratio = infinite.energy_ratio(&lru);
        assert!(ratio > 0.75, "infinite/LRU ratio {ratio} suspiciously low");
    }

    #[test]
    fn coalesce_merges_contiguous_same_direction_effects() {
        use pc_units::{BlockId, BlockNo};
        let b = |n: u64| BlockId::new(DiskId::new(0), BlockNo::new(n));
        let other = BlockId::new(DiskId::new(1), BlockNo::new(12));
        let effects = vec![
            Effect::ReadDisk(b(10)),
            Effect::ReadDisk(b(11)),
            Effect::ReadDisk(b(12)),
            Effect::WriteDisk(b(13)), // direction change splits
            Effect::ReadDisk(b(14)),
            Effect::ReadDisk(other), // disk change splits
            Effect::WriteLog(b(1)),
            Effect::WriteLog(b(7)), // log runs merge regardless of blocks
        ];
        let runs: Vec<EffectRun> = coalesce(&effects).collect();
        assert_eq!(
            runs,
            vec![
                EffectRun::Disk {
                    first: b(10),
                    blocks: 3,
                    read: true
                },
                EffectRun::Disk {
                    first: b(13),
                    blocks: 1,
                    read: false
                },
                EffectRun::Disk {
                    first: b(14),
                    blocks: 1,
                    read: true
                },
                EffectRun::Disk {
                    first: other,
                    blocks: 1,
                    read: true
                },
                EffectRun::Log { blocks: 2 },
            ]
        );
    }

    #[test]
    fn coalesce_empty_yields_nothing() {
        assert_eq!(coalesce(&[]).next(), None);
    }

    #[test]
    fn coalesce_single_effect_is_a_unit_run() {
        use pc_units::{BlockId, BlockNo};
        let b = BlockId::new(DiskId::new(3), BlockNo::new(9));
        let runs: Vec<EffectRun> = coalesce(&[Effect::WriteDisk(b)]).collect();
        assert_eq!(
            runs,
            vec![EffectRun::Disk {
                first: b,
                blocks: 1,
                read: false
            }]
        );
        let runs: Vec<EffectRun> = coalesce(&[Effect::WriteLog(b)]).collect();
        assert_eq!(runs, vec![EffectRun::Log { blocks: 1 }]);
    }

    #[test]
    fn coalesce_alternating_directions_never_merge() {
        use pc_units::{BlockId, BlockNo};
        let b = |n: u64| BlockId::new(DiskId::new(0), BlockNo::new(n));
        // Contiguous block numbers, but the direction flips each time.
        let effects = [
            Effect::ReadDisk(b(1)),
            Effect::WriteDisk(b(2)),
            Effect::ReadDisk(b(3)),
            Effect::WriteDisk(b(4)),
        ];
        let runs: Vec<EffectRun> = coalesce(&effects).collect();
        assert_eq!(runs.len(), 4);
        assert!(runs
            .iter()
            .all(|r| matches!(r, EffectRun::Disk { blocks: 1, .. })));
    }

    #[test]
    fn coalesce_log_runs_split_only_on_disk_effects() {
        use pc_units::{BlockId, BlockNo};
        let b = |n: u64| BlockId::new(DiskId::new(0), BlockNo::new(n));
        let effects = [
            Effect::WriteLog(b(5)),
            Effect::WriteLog(b(90)), // non-contiguous blocks still merge
            Effect::WriteLog(b(2)),
            Effect::ReadDisk(b(10)),
            Effect::WriteLog(b(11)),
        ];
        let runs: Vec<EffectRun> = coalesce(&effects).collect();
        assert_eq!(
            runs,
            vec![
                EffectRun::Log { blocks: 3 },
                EffectRun::Disk {
                    first: b(10),
                    blocks: 1,
                    read: true
                },
                EffectRun::Log { blocks: 1 },
            ]
        );
    }

    #[test]
    fn coalesce_matches_eager_reference_on_random_sequences() {
        // Cross-check the lazy iterator against a straightforward eager
        // fold over a few hundred random effect sequences.
        use pc_units::{BlockId, BlockNo};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        fn eager(effects: &[Effect]) -> Vec<EffectRun> {
            let mut runs: Vec<EffectRun> = Vec::new();
            for e in effects {
                match *e {
                    Effect::ReadDisk(b) | Effect::WriteDisk(b) => {
                        let is_read = matches!(e, Effect::ReadDisk(_));
                        if let Some(EffectRun::Disk {
                            first,
                            blocks,
                            read,
                        }) = runs.last_mut()
                        {
                            if *read == is_read
                                && first.disk() == b.disk()
                                && first.block().number() + *blocks == b.block().number()
                            {
                                *blocks += 1;
                                continue;
                            }
                        }
                        runs.push(EffectRun::Disk {
                            first: b,
                            blocks: 1,
                            read: is_read,
                        });
                    }
                    Effect::WriteLog(_) => {
                        if let Some(EffectRun::Log { blocks }) = runs.last_mut() {
                            *blocks += 1;
                            continue;
                        }
                        runs.push(EffectRun::Log { blocks: 1 });
                    }
                }
            }
            runs
        }
        let mut rng = StdRng::seed_from_u64(0xC0A1E5CE);
        for _ in 0..300 {
            let len = rng.gen_range(0..12usize);
            let effects: Vec<Effect> = (0..len)
                .map(|_| {
                    let b = BlockId::new(
                        DiskId::new(rng.gen_range(0..2u32)),
                        BlockNo::new(rng.gen_range(0..6u64)),
                    );
                    match rng.gen_range(0..3u32) {
                        0 => Effect::ReadDisk(b),
                        1 => Effect::WriteDisk(b),
                        _ => Effect::WriteLog(b),
                    }
                })
                .collect();
            let lazy: Vec<EffectRun> = coalesce(&effects).collect();
            assert_eq!(lazy, eager(&effects), "effects {effects:?}");
        }
    }

    #[test]
    fn multi_block_reads_cost_one_mechanical_operation() {
        // A single 16-block sequential read must be cheaper than 16
        // scattered single-block reads (one seek + latency vs sixteen).
        use pc_trace::{IoOp, Record};
        use pc_units::{BlockId, BlockNo};
        let mut seq = pc_trace::Trace::new(1);
        let mut r = Record::new(
            SimTime::from_secs(1),
            BlockId::new(DiskId::new(0), BlockNo::new(1_000)),
            IoOp::Read,
        );
        r.blocks = 16;
        seq.push(r);
        let mut scattered = pc_trace::Trace::new(1);
        for i in 0..16u64 {
            scattered.push(Record::new(
                SimTime::from_secs(1),
                BlockId::new(DiskId::new(0), BlockNo::new(i * 50_000)),
                IoOp::Read,
            ));
        }
        let cfg = SimConfig::default();
        let a = run_replacement(&seq, &PolicySpec::Lru, &cfg);
        let b = run_replacement(&scattered, &PolicySpec::Lru, &cfg);
        let service_a: SimDuration = a.disks.iter().map(|d| d.service_time).sum();
        let service_b: SimDuration = b.disks.iter().map(|d| d.service_time).sum();
        assert!(
            service_a.as_secs_f64() * 3.0 < service_b.as_secs_f64(),
            "coalesced {service_a} vs scattered {service_b}"
        );
    }

    #[test]
    fn response_quantiles_bracket_the_mean() {
        let t = oltp(4_000);
        let r = run_replacement(&t, &PolicySpec::Lru, &SimConfig::default());
        let p50 = r.response_quantile(0.5);
        let p99 = r.response_quantile(0.99);
        assert!(p50 <= p99);
        // The distribution is heavy-tailed: spin-up waits push p99 far
        // above the (hit-dominated) median.
        assert!(p50 < SimDuration::from_millis(50), "p50 {p50}");
        assert!(p99 > r.mean_response(), "p99 {p99}");
    }

    #[test]
    fn prefetching_is_wired_through_the_config() {
        let t = SyntheticConfig {
            seq_probability: 0.8,
            local_probability: 0.1,
            reuse_probability: 0.0,
            ..SyntheticConfig::default()
        }
        .with_requests(4_000)
        .generate(1);
        let plain = run_replacement(&t, &PolicySpec::Lru, &SimConfig::default());
        let ahead = run_replacement(
            &t,
            &PolicySpec::Lru,
            &SimConfig::default().with_prefetch_depth(4),
        );
        assert!(ahead.cache.prefetch_reads > 0);
        assert!(ahead.cache.hit_ratio() > plain.cache.hit_ratio() + 0.1);
    }

    #[test]
    #[should_panic(expected = "causal DPM")]
    fn write_policy_runner_rejects_oracle() {
        let t = oltp(10);
        let _ = run_write_policy(
            &t,
            &PolicySpec::Lru,
            &SimConfig::default()
                .with_dpm(DpmPolicy::Oracle)
                .with_write_policy(WritePolicy::Wtdu),
        );
    }
}
