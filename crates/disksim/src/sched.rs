//! Disk queue scheduling (the DiskSim feature layer): FCFS, SSTF and
//! C-SCAN service disciplines over one disk's request stream.
//!
//! [`DiskSim`] itself services strictly in arrival order. This module
//! adds the classic reordering disciplines on top: requests that arrive
//! while the disk is busy pool in a queue, and the discipline picks which
//! pending request the head serves next. Reordering reduces seek time
//! (energy and latency) under queueing pressure — and starves nothing
//! under C-SCAN's one-directional sweep.
//!
//! Power management is untouched: the scheduler hands requests to the
//! underlying [`DiskSim`] in service order, so idle-period accounting,
//! spin transitions and mode residency work exactly as in the FCFS case.

use pc_diskmodel::{PowerModel, ServiceModel, ServiceRequest};
use pc_units::{DiskId, SimDuration, SimTime};

use crate::{DiskReport, DiskSim, DpmPolicy};

/// A disk queue service discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// First-come-first-served (what [`DiskSim`] does natively).
    Fcfs,
    /// Shortest-seek-time-first: serve the pending request closest to the
    /// head. Minimizes seeks, can starve edge cylinders.
    Sstf,
    /// Circular SCAN: sweep toward higher cylinders, wrap around.
    /// Starvation-free with near-SSTF seek costs.
    Cscan,
}

impl QueueDiscipline {
    /// Short lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueueDiscipline::Fcfs => "fcfs",
            QueueDiscipline::Sstf => "sstf",
            QueueDiscipline::Cscan => "cscan",
        }
    }
}

/// The outcome of one scheduled request, tagged with its submission
/// index so callers can re-associate reordered completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOutcome {
    /// Index of the request in the submitted slice.
    pub index: usize,
    /// Total response time (arrival → completion), including queueing,
    /// spin-ups and service.
    pub response: SimDuration,
    /// Completion instant.
    pub completion: SimTime,
}

/// Replays one disk's arrival-ordered request list under a queue
/// discipline, returning the per-request outcomes (in completion order)
/// and the disk's full power/energy report.
///
/// `requests` must be sorted by arrival time.
///
/// # Panics
///
/// Panics if the arrivals are out of order.
///
/// # Examples
///
/// ```
/// use pc_diskmodel::{DiskPowerSpec, PowerModel, ServiceModel, ServiceRequest};
/// use pc_disksim::{schedule_disk, DpmPolicy, QueueDiscipline};
/// use pc_units::{BlockNo, DiskId, SimTime};
///
/// let power = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
/// let burst: Vec<(SimTime, ServiceRequest)> = (0..8)
///     .map(|i| (SimTime::from_millis(1), ServiceRequest::single(BlockNo::new(i * 500_000))))
///     .collect();
/// let (outcomes, report) = schedule_disk(
///     DiskId::new(0),
///     &burst,
///     power,
///     ServiceModel::default(),
///     DpmPolicy::Practical,
///     QueueDiscipline::Sstf,
///     SimTime::from_secs(60),
/// );
/// assert_eq!(outcomes.len(), 8);
/// assert!(report.total_energy().as_joules() > 0.0);
/// ```
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn schedule_disk(
    disk: DiskId,
    requests: &[(SimTime, ServiceRequest)],
    power: PowerModel,
    service: ServiceModel,
    dpm: DpmPolicy,
    discipline: QueueDiscipline,
    horizon: SimTime,
) -> (Vec<ScheduledOutcome>, DiskReport) {
    assert!(
        requests.windows(2).all(|w| w[0].0 <= w[1].0),
        "requests must be sorted by arrival"
    );
    let geometry = service.clone();
    let mut inner = DiskSim::new(disk, power, service, dpm);
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut pending: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut head_cylinder = 0u64;

    while next < requests.len() || !pending.is_empty() {
        // Admit everything that has arrived by the time the disk frees up
        // (or, if it is idle with nothing pending, by the next arrival).
        let now = if pending.is_empty() {
            let arrival = requests[next].0;
            arrival.max(inner.ready_at())
        } else {
            inner.ready_at()
        };
        while next < requests.len() && requests[next].0 <= now {
            pending.push(next);
            next += 1;
        }
        if pending.is_empty() {
            continue; // the next arrival defines the new `now`
        }

        let pick = choose(&pending, requests, &geometry, head_cylinder, discipline);
        let index = pending.swap_remove(pick);
        let (arrival, request) = requests[index];
        // Queued requests start when the disk frees; the underlying
        // DiskSim then accounts spin state and service. Passing the
        // effective arrival keeps its idle accounting exact: a non-empty
        // queue means zero idle.
        let effective = arrival.max(inner.ready_at());
        let served = inner.service(effective, request);
        head_cylinder = geometry.cylinder_of(request.block);
        outcomes.push(ScheduledOutcome {
            index,
            response: served.completion - arrival,
            completion: served.completion,
        });
    }

    inner.finish(horizon.max(inner.ready_at()));
    (outcomes, inner.report().clone())
}

/// Picks the position (within `pending`) of the request to serve next.
fn choose(
    pending: &[usize],
    requests: &[(SimTime, ServiceRequest)],
    geometry: &ServiceModel,
    head: u64,
    discipline: QueueDiscipline,
) -> usize {
    match discipline {
        QueueDiscipline::Fcfs => {
            // Earliest arrival; submission order breaks ties.
            let mut best = 0;
            for (i, &idx) in pending.iter().enumerate() {
                if requests[idx].0 < requests[pending[best]].0
                    || (requests[idx].0 == requests[pending[best]].0 && idx < pending[best])
                {
                    best = i;
                }
            }
            best
        }
        QueueDiscipline::Sstf => {
            let mut best = 0;
            let mut best_dist = u64::MAX;
            for (i, &idx) in pending.iter().enumerate() {
                let cyl = geometry.cylinder_of(requests[idx].1.block);
                let dist = cyl.abs_diff(head);
                if dist < best_dist {
                    best = i;
                    best_dist = dist;
                }
            }
            best
        }
        QueueDiscipline::Cscan => {
            // Smallest cylinder at or ahead of the head; if none, wrap to
            // the smallest cylinder overall.
            let mut ahead: Option<(usize, u64)> = None;
            let mut wrap: Option<(usize, u64)> = None;
            for (i, &idx) in pending.iter().enumerate() {
                let cyl = geometry.cylinder_of(requests[idx].1.block);
                if cyl >= head {
                    if ahead.is_none_or(|(_, c)| cyl < c) {
                        ahead = Some((i, cyl));
                    }
                } else if wrap.is_none_or(|(_, c)| cyl < c) {
                    wrap = Some((i, cyl));
                }
            }
            ahead.or(wrap).expect("pending is non-empty").0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_diskmodel::DiskPowerSpec;
    use pc_units::BlockNo;

    fn power() -> PowerModel {
        PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())
    }

    /// A simultaneous burst spread across the platter: the classic
    /// scheduler discriminator.
    fn burst(n: u64) -> Vec<(SimTime, ServiceRequest)> {
        let service = ServiceModel::ultrastar_36z15();
        let spread = service.blocks_per_cylinder * service.cylinders / n;
        (0..n)
            .map(|i| {
                // Zig-zag across cylinders so FCFS seeks maximally.
                let pos = if i % 2 == 0 { i / 2 } else { n - 1 - i / 2 };
                (
                    SimTime::from_millis(1),
                    ServiceRequest::single(BlockNo::new(pos * spread)),
                )
            })
            .collect()
    }

    fn run(discipline: QueueDiscipline) -> (Vec<ScheduledOutcome>, DiskReport) {
        schedule_disk(
            DiskId::new(0),
            &burst(64),
            power(),
            ServiceModel::ultrastar_36z15(),
            DpmPolicy::Practical,
            discipline,
            SimTime::from_secs(30),
        )
    }

    fn mean_response(outcomes: &[ScheduledOutcome]) -> f64 {
        outcomes
            .iter()
            .map(|o| o.response.as_secs_f64())
            .sum::<f64>()
            / outcomes.len() as f64
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        for d in [
            QueueDiscipline::Fcfs,
            QueueDiscipline::Sstf,
            QueueDiscipline::Cscan,
        ] {
            let (outcomes, _) = run(d);
            let mut seen: Vec<usize> = outcomes.iter().map(|o| o.index).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..64).collect::<Vec<_>>(), "{d:?}");
            // Completions are monotone (one head, one request at a time).
            for w in outcomes.windows(2) {
                assert!(w[0].completion <= w[1].completion);
            }
        }
    }

    #[test]
    fn sstf_and_cscan_cut_seek_time_under_load() {
        let (_, fcfs) = run(QueueDiscipline::Fcfs);
        let (_, sstf) = run(QueueDiscipline::Sstf);
        let (_, cscan) = run(QueueDiscipline::Cscan);
        assert!(
            sstf.service_time < fcfs.service_time,
            "sstf {} vs fcfs {}",
            sstf.service_time,
            fcfs.service_time
        );
        assert!(cscan.service_time < fcfs.service_time);
        // Less head movement = less service energy too.
        assert!(sstf.service_energy < fcfs.service_energy);
    }

    #[test]
    fn reordering_improves_mean_response_in_bursts() {
        let (fcfs, _) = run(QueueDiscipline::Fcfs);
        let (sstf, _) = run(QueueDiscipline::Sstf);
        assert!(
            mean_response(&sstf) < mean_response(&fcfs),
            "sstf {} vs fcfs {}",
            mean_response(&sstf),
            mean_response(&fcfs)
        );
    }

    #[test]
    fn fcfs_discipline_matches_plain_disksim() {
        let reqs = burst(16);
        let (outcomes, report) = schedule_disk(
            DiskId::new(0),
            &reqs,
            power(),
            ServiceModel::ultrastar_36z15(),
            DpmPolicy::Practical,
            QueueDiscipline::Fcfs,
            SimTime::from_secs(30),
        );
        let mut plain = DiskSim::new(
            DiskId::new(0),
            power(),
            ServiceModel::ultrastar_36z15(),
            DpmPolicy::Practical,
        );
        let mut responses = Vec::new();
        for &(t, r) in &reqs {
            responses.push(plain.service(t, r).response);
        }
        plain.finish(SimTime::from_secs(30));
        for (o, r) in outcomes.iter().zip(responses) {
            assert_eq!(o.response, r, "request {}", o.index);
        }
        assert_eq!(report.total_energy(), plain.report().total_energy());
    }

    #[test]
    fn spaced_requests_are_unaffected_by_discipline() {
        // With no queueing there is nothing to reorder: all disciplines
        // agree exactly.
        let service = ServiceModel::ultrastar_36z15();
        let reqs: Vec<(SimTime, ServiceRequest)> = (0..10u64)
            .map(|i| {
                (
                    SimTime::from_secs(1 + i * 3),
                    ServiceRequest::single(BlockNo::new(i * 7 * service.blocks_per_cylinder)),
                )
            })
            .collect();
        let mut energies = Vec::new();
        for d in [
            QueueDiscipline::Fcfs,
            QueueDiscipline::Sstf,
            QueueDiscipline::Cscan,
        ] {
            let (outcomes, report) = schedule_disk(
                DiskId::new(0),
                &reqs,
                power(),
                service.clone(),
                DpmPolicy::Practical,
                d,
                SimTime::from_secs(60),
            );
            let order: Vec<usize> = outcomes.iter().map(|o| o.index).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "{d:?}");
            energies.push(report.total_energy().as_joules());
        }
        assert!((energies[0] - energies[1]).abs() < 1e-9);
        assert!((energies[0] - energies[2]).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn rejects_unsorted_arrivals() {
        let reqs = vec![
            (
                SimTime::from_secs(2),
                ServiceRequest::single(BlockNo::new(1)),
            ),
            (
                SimTime::from_secs(1),
                ServiceRequest::single(BlockNo::new(2)),
            ),
        ];
        let _ = schedule_disk(
            DiskId::new(0),
            &reqs,
            power(),
            ServiceModel::ultrastar_36z15(),
            DpmPolicy::Practical,
            QueueDiscipline::Fcfs,
            SimTime::from_secs(10),
        );
    }
}
