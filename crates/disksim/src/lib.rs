//! Disk energy simulation with pluggable power management.
//!
//! This crate implements the disk side of the paper's evaluation stack —
//! the role DiskSim plus the authors' power-model extension played:
//!
//! * [`DpmPolicy`] — the disk power-management schemes of §2.2:
//!   [`DpmPolicy::Oracle`] (per-gap envelope-optimal, zero added latency),
//!   [`DpmPolicy::Practical`] (the 2-competitive threshold ladder),
//!   [`DpmPolicy::FixedThreshold`] (single-threshold spin-down, for
//!   ablations) and [`DpmPolicy::AlwaysOn`].
//! * [`DiskSim`] — one disk's lazily-advanced state machine: FCFS queueing,
//!   seek/rotation/transfer service, spin-down/spin-up transitions with
//!   real durations, and complete per-mode time and energy accounting.
//! * [`DiskArray`] — the whole storage system's disk farm.
//! * [`DiskReport`] — per-disk accounting used for the paper's Figures 6–9
//!   (energy, response time, per-mode residency, transition counts).
//!
//! # Examples
//!
//! ```
//! use pc_diskmodel::{DiskPowerSpec, PowerModel, ServiceModel, ServiceRequest};
//! use pc_disksim::{DiskSim, DpmPolicy};
//! use pc_units::{BlockNo, DiskId, SimTime};
//!
//! let power = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
//! let mut disk = DiskSim::new(DiskId::new(0), power, ServiceModel::default(), DpmPolicy::Practical);
//! let served = disk.service(SimTime::from_secs(1), ServiceRequest::single(BlockNo::new(7)));
//! assert!(served.response > pc_units::SimDuration::ZERO);
//! disk.finish(SimTime::from_secs(120));
//! assert!(disk.report().total_energy().as_joules() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod disk;
mod report;
mod sched;
mod timeline;

pub use array::DiskArray;
pub use disk::{DiskSim, DpmPolicy, Served};
pub use report::DiskReport;
pub use sched::{schedule_disk, QueueDiscipline, ScheduledOutcome};
pub use timeline::{PowerEvent, Timeline, TimelineEntry};
