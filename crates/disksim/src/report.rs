//! Per-disk accounting.

use pc_units::{Joules, SimDuration};

/// Complete time and energy accounting for one simulated disk.
///
/// Every simulated microsecond of the disk's life is attributed to exactly
/// one bucket: servicing (active), residing in a power mode, spinning
/// down, or spinning up — which is what makes the paper's Figure 7a
/// percentage-breakdown reproducible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiskReport {
    /// Time spent actively servicing requests (seek + rotation + transfer).
    pub service_time: SimDuration,
    /// Time resting in each power mode, indexed by mode (0 = full-speed
    /// idle).
    pub mode_time: Vec<SimDuration>,
    /// Time spent in spin-down transitions.
    pub spin_down_time: SimDuration,
    /// Time spent in spin-up transitions.
    pub spin_up_time: SimDuration,
    /// Energy spent servicing requests.
    pub service_energy: Joules,
    /// Energy spent resting in each power mode.
    pub mode_energy: Vec<Joules>,
    /// Energy spent in spin-down transitions.
    pub spin_down_energy: Joules,
    /// Energy spent in spin-up transitions.
    pub spin_up_energy: Joules,
    /// Number of requests serviced.
    pub requests: u64,
    /// Number of spin-down transitions (counting each ladder demotion).
    pub spin_downs: u64,
    /// Number of spin-ups back to full speed.
    pub spin_ups: u64,
    /// Sum of per-request response times (completion − arrival).
    pub response_total: SimDuration,
    /// Largest single response time observed.
    pub response_max: SimDuration,
    /// Sum of gaps between consecutive request arrivals at this disk.
    pub interarrival_total: SimDuration,
    /// Number of gaps in `interarrival_total`.
    pub interarrival_count: u64,
}

impl DiskReport {
    /// Creates an empty report for a disk with `modes` power modes.
    #[must_use]
    pub fn new(modes: usize) -> Self {
        DiskReport {
            mode_time: vec![SimDuration::ZERO; modes],
            mode_energy: vec![Joules::ZERO; modes],
            ..DiskReport::default()
        }
    }

    /// Total energy attributed to this disk.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.service_energy
            + self.mode_energy.iter().copied().sum::<Joules>()
            + self.spin_down_energy
            + self.spin_up_energy
    }

    /// Total accounted time (should equal the simulated horizon once the
    /// simulation is finished).
    #[must_use]
    pub fn total_time(&self) -> SimDuration {
        self.service_time
            + self.mode_time.iter().copied().sum::<SimDuration>()
            + self.spin_down_time
            + self.spin_up_time
    }

    /// Mean response time, or zero if the disk serviced no requests.
    #[must_use]
    pub fn mean_response(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.response_total / self.requests
        }
    }

    /// Mean gap between consecutive arrivals, or zero with fewer than two
    /// requests.
    #[must_use]
    pub fn mean_interarrival(&self) -> SimDuration {
        if self.interarrival_count == 0 {
            SimDuration::ZERO
        } else {
            self.interarrival_total / self.interarrival_count
        }
    }

    /// Fraction of accounted time spent in the given bucket list
    /// `(service, per-mode, spin-down, spin-up)`, for Figure-7a style
    /// breakdowns. Returns zeros for an empty report.
    #[must_use]
    pub fn time_fractions(&self) -> TimeFractions {
        let total = self.total_time().as_secs_f64();
        if total == 0.0 {
            return TimeFractions::default();
        }
        TimeFractions {
            service: self.service_time.as_secs_f64() / total,
            per_mode: self
                .mode_time
                .iter()
                .map(|t| t.as_secs_f64() / total)
                .collect(),
            spin_down: self.spin_down_time.as_secs_f64() / total,
            spin_up: self.spin_up_time.as_secs_f64() / total,
        }
    }

    /// Merges another report into this one (used to total an array).
    ///
    /// # Panics
    ///
    /// Panics if the two reports have different mode counts.
    pub fn merge(&mut self, other: &DiskReport) {
        assert_eq!(
            self.mode_time.len(),
            other.mode_time.len(),
            "cannot merge reports with different mode counts"
        );
        self.service_time += other.service_time;
        self.spin_down_time += other.spin_down_time;
        self.spin_up_time += other.spin_up_time;
        self.service_energy += other.service_energy;
        self.spin_down_energy += other.spin_down_energy;
        self.spin_up_energy += other.spin_up_energy;
        self.requests += other.requests;
        self.spin_downs += other.spin_downs;
        self.spin_ups += other.spin_ups;
        self.response_total += other.response_total;
        self.response_max = self.response_max.max(other.response_max);
        self.interarrival_total += other.interarrival_total;
        self.interarrival_count += other.interarrival_count;
        for (a, b) in self.mode_time.iter_mut().zip(&other.mode_time) {
            *a += *b;
        }
        for (a, b) in self.mode_energy.iter_mut().zip(&other.mode_energy) {
            *a += *b;
        }
    }
}

/// A Figure-7a style percentage time breakdown.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeFractions {
    /// Fraction of time servicing requests.
    pub service: f64,
    /// Fraction of time resting in each mode.
    pub per_mode: Vec<f64>,
    /// Fraction of time spinning down.
    pub spin_down: f64,
    /// Fraction of time spinning up.
    pub spin_up: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_buckets() {
        let mut r = DiskReport::new(2);
        r.service_time = SimDuration::from_secs(1);
        r.mode_time[0] = SimDuration::from_secs(2);
        r.mode_time[1] = SimDuration::from_secs(3);
        r.spin_down_time = SimDuration::from_secs(4);
        r.spin_up_time = SimDuration::from_secs(5);
        assert_eq!(r.total_time(), SimDuration::from_secs(15));
        r.service_energy = Joules::new(1.0);
        r.mode_energy[1] = Joules::new(2.0);
        r.spin_up_energy = Joules::new(3.0);
        assert!((r.total_energy().as_joules() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn means_handle_empty_reports() {
        let r = DiskReport::new(2);
        assert_eq!(r.mean_response(), SimDuration::ZERO);
        assert_eq!(r.mean_interarrival(), SimDuration::ZERO);
        assert_eq!(r.time_fractions(), TimeFractions::default());
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut r = DiskReport::new(3);
        r.service_time = SimDuration::from_secs(1);
        r.mode_time[0] = SimDuration::from_secs(5);
        r.mode_time[2] = SimDuration::from_secs(3);
        r.spin_up_time = SimDuration::from_secs(1);
        let f = r.time_fractions();
        let sum = f.service + f.per_mode.iter().sum::<f64>() + f.spin_down + f.spin_up;
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DiskReport::new(1);
        a.requests = 2;
        a.response_max = SimDuration::from_secs(1);
        let mut b = DiskReport::new(1);
        b.requests = 3;
        b.response_max = SimDuration::from_secs(2);
        b.mode_energy[0] = Joules::new(5.0);
        a.merge(&b);
        assert_eq!(a.requests, 5);
        assert_eq!(a.response_max, SimDuration::from_secs(2));
        assert!((a.total_energy().as_joules() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mode counts")]
    fn merge_rejects_mismatched_modes() {
        let mut a = DiskReport::new(1);
        a.merge(&DiskReport::new(2));
    }
}
