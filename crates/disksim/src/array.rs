//! The storage system's disk farm.

use pc_diskmodel::{PowerModel, ServiceModel, ServiceRequest};
use pc_units::{DiskId, Joules, SimTime};

use crate::{DiskReport, DiskSim, DpmPolicy, Served};

/// A homogeneous array of simulated disks.
///
/// # Examples
///
/// ```
/// use pc_diskmodel::{DiskPowerSpec, PowerModel, ServiceModel, ServiceRequest};
/// use pc_disksim::{DiskArray, DpmPolicy};
/// use pc_units::{BlockNo, DiskId, SimTime};
///
/// let power = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
/// let mut array = DiskArray::new(4, power, ServiceModel::default(), DpmPolicy::Practical);
/// array.service(DiskId::new(2), SimTime::from_secs(1), ServiceRequest::single(BlockNo::new(5)));
/// array.finish(SimTime::from_secs(30));
/// assert_eq!(array.reports().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DiskArray {
    disks: Vec<DiskSim>,
}

impl DiskArray {
    /// Creates `count` identical disks.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(count: u32, power: PowerModel, service: ServiceModel, policy: DpmPolicy) -> Self {
        DiskArray::new_configured(count, power, service, policy, false)
    }

    /// Creates `count` identical disks, optionally in Carrera-style
    /// serve-at-speed mode (see [`DiskSim::with_serve_at_speed`]).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, or if serve-at-speed is combined with
    /// [`DpmPolicy::Oracle`].
    #[must_use]
    pub fn new_configured(
        count: u32,
        power: PowerModel,
        service: ServiceModel,
        policy: DpmPolicy,
        serve_at_speed: bool,
    ) -> Self {
        assert!(count > 0, "need at least one disk");
        let disks = (0..count)
            .map(|i| {
                let d = DiskSim::new(DiskId::new(i), power.clone(), service.clone(), policy);
                if serve_at_speed {
                    d.with_serve_at_speed()
                } else {
                    d
                }
            })
            .collect();
        DiskArray { disks }
    }

    /// Number of disks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Always `false`: arrays have at least one disk.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Services a request on one disk.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range (see [`DiskSim::service`] for the
    /// ordering requirements).
    pub fn service(&mut self, disk: DiskId, arrival: SimTime, request: ServiceRequest) -> Served {
        self.disks[disk.as_usize()].service(arrival, request)
    }

    /// Access to one disk (e.g. for [`DiskSim::peek_mode`]).
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    #[must_use]
    pub fn disk(&self, disk: DiskId) -> &DiskSim {
        &self.disks[disk.as_usize()]
    }

    /// The latest completion time across all disks (the earliest valid
    /// [`DiskArray::finish`] horizon).
    #[must_use]
    pub fn latest_completion(&self) -> SimTime {
        self.disks
            .iter()
            .map(DiskSim::ready_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Closes all disks at the simulation horizon.
    ///
    /// # Panics
    ///
    /// Propagates [`DiskSim::finish`]'s panics.
    pub fn finish(&mut self, end: SimTime) {
        for d in &mut self.disks {
            d.finish(end);
        }
    }

    /// Per-disk reports, indexed by disk.
    #[must_use]
    pub fn reports(&self) -> Vec<&DiskReport> {
        self.disks.iter().map(DiskSim::report).collect()
    }

    /// The element-wise sum of all per-disk reports.
    #[must_use]
    pub fn total_report(&self) -> DiskReport {
        let mut total = DiskReport::new(self.disks[0].power_model().mode_count());
        for d in &self.disks {
            total.merge(d.report());
        }
        total
    }

    /// Total energy across the array.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.disks.iter().map(|d| d.report().total_energy()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_diskmodel::DiskPowerSpec;
    use pc_units::{BlockNo, SimDuration};

    fn array(n: u32) -> DiskArray {
        DiskArray::new(
            n,
            PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15()),
            ServiceModel::ultrastar_36z15(),
            DpmPolicy::Practical,
        )
    }

    #[test]
    fn routes_requests_to_the_right_disk() {
        let mut a = array(3);
        a.service(
            DiskId::new(1),
            SimTime::from_secs(1),
            ServiceRequest::single(BlockNo::new(1)),
        );
        a.finish(SimTime::from_secs(10));
        let reports = a.reports();
        assert_eq!(reports[1].requests, 1);
        assert_eq!(reports[0].requests, 0);
        assert_eq!(reports[2].requests, 0);
    }

    #[test]
    fn total_energy_sums_disks() {
        let mut a = array(2);
        a.finish(SimTime::from_secs(50));
        let total = a.total_energy().as_joules();
        // Two request-free disks for 50 s each: they descend the ladder,
        // so total energy lands strictly between all-standby and all-idle.
        assert!(total > 2.0 * 50.0 * 2.5 && total < 2.0 * 50.0 * 10.2);
        let merged = a.total_report();
        assert!((merged.total_energy().as_joules() - total).abs() < 1e-9);
        assert_eq!(merged.total_time(), SimDuration::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn rejects_empty_array() {
        let _ = array(0);
    }
}
