//! Power-state timelines: an optional per-disk event recorder.
//!
//! When enabled ([`DiskSim::with_timeline`](crate::DiskSim::with_timeline)),
//! the disk records every power-state change and service interval with
//! exact timestamps — the raw material for Gantt-style visualizations
//! (see `examples/power_timeline.rs`), for debugging power-management
//! decisions, and for tests that pin down the exact state sequence of a
//! scripted scenario.

use std::fmt;

use pc_diskmodel::ModeId;
use pc_units::{SimDuration, SimTime};

/// One power/service event on a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerEvent {
    /// The disk begins resting in `mode`.
    Rest {
        /// The mode entered.
        mode: ModeId,
    },
    /// A spin-down transition toward `to` begins.
    SpinDown {
        /// The destination mode.
        to: ModeId,
    },
    /// A spin-up transition back to full speed begins.
    SpinUp,
    /// Request service (seek + rotation + transfer) begins.
    ServiceStart,
    /// Request service completes.
    ServiceEnd,
}

impl fmt::Display for PowerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerEvent::Rest { mode } => write!(f, "rest({mode})"),
            PowerEvent::SpinDown { to } => write!(f, "spin-down→{to}"),
            PowerEvent::SpinUp => f.write_str("spin-up"),
            PowerEvent::ServiceStart => f.write_str("service-start"),
            PowerEvent::ServiceEnd => f.write_str("service-end"),
        }
    }
}

/// A timestamped [`PowerEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// When the event occurs.
    pub at: SimTime,
    /// What happens.
    pub event: PowerEvent,
}

/// An append-only, time-ordered sequence of power events.
///
/// # Examples
///
/// ```
/// use pc_diskmodel::{DiskPowerSpec, PowerModel, ServiceModel, ServiceRequest};
/// use pc_disksim::{DiskSim, DpmPolicy, PowerEvent};
/// use pc_units::{BlockNo, DiskId, SimDuration, SimTime};
///
/// let power = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
/// let mut disk = DiskSim::new(DiskId::new(0), power, ServiceModel::default(), DpmPolicy::Practical)
///     .with_timeline();
/// let a = disk.service(SimTime::from_secs(1), ServiceRequest::single(BlockNo::new(1)));
/// disk.service(a.completion + SimDuration::from_secs(15), ServiceRequest::single(BlockNo::new(2)));
/// // The 15 s gap crossed the first two thresholds: the timeline shows
/// // the demotions and the final spin-up.
/// let downs = disk
///     .timeline()
///     .expect("recording enabled")
///     .iter()
///     .filter(|e| matches!(e.event, PowerEvent::SpinDown { .. }))
///     .count();
/// assert_eq!(downs, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Appends an event. Events must not go back in time.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `at` precedes the last recorded event.
    pub(crate) fn push(&mut self, at: SimTime, event: PowerEvent) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.at <= at),
            "timeline must be ordered: {event} at {at}"
        );
        self.entries.push(TimelineEntry { at, event });
    }

    /// The recorded entries, in time order.
    #[must_use]
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, TimelineEntry> {
        self.entries.iter()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders an ASCII strip of the disk's state over `[from, to)`, one
    /// character per `step` of simulated time:
    /// `#` servicing, `v`/`^` spinning down/up, `0`–`9` resting in that
    /// mode index, `.` unknown (before the first event).
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `to <= from`.
    #[must_use]
    pub fn render(&self, from: SimTime, to: SimTime, step: SimDuration) -> String {
        assert!(!step.is_zero(), "step must be positive");
        assert!(to > from, "empty render window");
        let cells = ((to - from).as_micros() / step.as_micros()).max(1) as usize;
        let mut out = String::with_capacity(cells);
        let mut idx = 0usize;
        let mut current: Option<char> = None;
        for c in 0..cells {
            let cell_time = from + step * (c as u64);
            while idx < self.entries.len() && self.entries[idx].at <= cell_time {
                current = Some(match self.entries[idx].event {
                    PowerEvent::Rest { mode } => {
                        char::from_digit(mode.index().min(9) as u32, 10).expect("digit")
                    }
                    PowerEvent::SpinDown { .. } => 'v',
                    PowerEvent::SpinUp => '^',
                    PowerEvent::ServiceStart => '#',
                    PowerEvent::ServiceEnd => '0',
                });
                idx += 1;
            }
            out.push(current.unwrap_or('.'));
        }
        out
    }
}

impl<'a> IntoIterator for &'a Timeline {
    type Item = &'a TimelineEntry;
    type IntoIter = std::slice::Iter<'a, TimelineEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let mut tl = Timeline::default();
        tl.push(t(1), PowerEvent::ServiceStart);
        tl.push(t(2), PowerEvent::ServiceEnd);
        tl.push(
            t(2),
            PowerEvent::Rest {
                mode: ModeId::FULL_SPEED,
            },
        );
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.entries()[0].at, t(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ordered")]
    fn rejects_time_travel() {
        let mut tl = Timeline::default();
        tl.push(t(5), PowerEvent::SpinUp);
        tl.push(t(1), PowerEvent::ServiceStart);
    }

    #[test]
    fn render_paints_states_per_cell() {
        let mut tl = Timeline::default();
        tl.push(
            t(0),
            PowerEvent::Rest {
                mode: ModeId::FULL_SPEED,
            },
        );
        tl.push(t(3), PowerEvent::SpinDown { to: ModeId::new(1) });
        tl.push(
            t(4),
            PowerEvent::Rest {
                mode: ModeId::new(1),
            },
        );
        tl.push(t(8), PowerEvent::SpinUp);
        let strip = tl.render(t(0), t(10), SimDuration::from_secs(1));
        assert_eq!(strip, "000v1111^^");
    }

    #[test]
    fn render_marks_unknown_prefix() {
        let mut tl = Timeline::default();
        tl.push(t(5), PowerEvent::ServiceStart);
        let strip = tl.render(t(0), t(8), SimDuration::from_secs(1));
        assert_eq!(strip, ".....###");
    }
}
