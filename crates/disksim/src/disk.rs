//! One disk's power/service state machine.

use pc_diskmodel::{LadderStep, ModeId, PowerModel, ServiceModel, ServiceRequest, Transition};
use pc_units::{BlockNo, DiskId, SimDuration, SimTime};

use crate::{DiskReport, PowerEvent, Timeline};

/// A disk power-management scheme (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpmPolicy {
    /// Never leave full-speed idle.
    AlwaysOn,
    /// Threshold ladder with the 2-competitive thresholds of Irani et al.
    /// (the paper's "Practical DPM").
    Practical,
    /// Clairvoyant per-gap optimum: spin down immediately to the best mode
    /// for the gap and spin up just in time (the paper's "Oracle DPM").
    /// Requests never wait for spin-ups.
    Oracle,
    /// Spin straight down to standby after a fixed idle threshold
    /// (classic single-threshold DPM; used for ablations).
    FixedThreshold(SimDuration),
}

/// The outcome of servicing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// Time the request waited before service began (queueing plus any
    /// spin-down completion and spin-up).
    pub wait: SimDuration,
    /// Mechanical service time (seek + rotation + transfer).
    pub service: SimDuration,
    /// Total response time (`wait + service`).
    pub response: SimDuration,
    /// Absolute completion time.
    pub completion: SimTime,
}

/// One simulated disk: FCFS service, power-mode state machine, and full
/// time/energy accounting.
///
/// The state machine is *lazily advanced*: idle periods are accounted when
/// the request ending them arrives (or at [`DiskSim::finish`]). This is
/// what lets the Oracle policy make its clairvoyant per-gap decision
/// without an explicit look-ahead interface.
///
/// # Examples
///
/// ```
/// use pc_diskmodel::{DiskPowerSpec, PowerModel, ServiceModel, ServiceRequest};
/// use pc_disksim::{DiskSim, DpmPolicy};
/// use pc_units::{BlockNo, DiskId, SimTime};
///
/// let power = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
/// let mut disk = DiskSim::new(DiskId::new(0), power, ServiceModel::default(), DpmPolicy::Oracle);
/// let a = disk.service(SimTime::from_secs(10), ServiceRequest::single(BlockNo::new(1)));
/// let b = disk.service(SimTime::from_secs(500), ServiceRequest::single(BlockNo::new(2)));
/// assert!(b.completion > a.completion);
/// disk.finish(SimTime::from_secs(600));
/// ```
#[derive(Debug, Clone)]
pub struct DiskSim {
    id: DiskId,
    power: PowerModel,
    service_model: ServiceModel,
    policy: DpmPolicy,
    /// Ladder used by `FixedThreshold`; `Practical` uses the model's.
    fixed_ladder: Option<Vec<LadderStep>>,
    busy_until: SimTime,
    idle_since: Option<SimTime>,
    head: Option<BlockNo>,
    last_arrival: Option<SimTime>,
    report: DiskReport,
    finished: bool,
    timeline: Option<Timeline>,
    /// Carrera-style option 1: requests are serviced at the current
    /// rotational speed (slower, but no spin-up wait).
    serve_at_speed: bool,
    /// The mode the disk rests in when its current/next idle period
    /// starts (always full speed unless `serve_at_speed` is on).
    resting_mode: ModeId,
}

impl DiskSim {
    /// Creates a disk in full-speed idle at time zero.
    #[must_use]
    pub fn new(
        id: DiskId,
        power: PowerModel,
        service_model: ServiceModel,
        policy: DpmPolicy,
    ) -> Self {
        let fixed_ladder = match policy {
            DpmPolicy::FixedThreshold(threshold) => Some(vec![
                LadderStep {
                    at_idle: SimDuration::ZERO,
                    mode: ModeId::FULL_SPEED,
                },
                LadderStep {
                    at_idle: threshold,
                    mode: ModeId::new(power.mode_count() - 1),
                },
            ]),
            _ => None,
        };
        let report = DiskReport::new(power.mode_count());
        DiskSim {
            id,
            power,
            service_model,
            policy,
            fixed_ladder,
            busy_until: SimTime::ZERO,
            idle_since: Some(SimTime::ZERO),
            head: None,
            last_arrival: None,
            report,
            finished: false,
            timeline: None,
            serve_at_speed: false,
            resting_mode: ModeId::FULL_SPEED,
        }
    }

    /// Switches the disk to Carrera & Bianchini's multi-speed option:
    /// requests are serviced at the *current* rotational speed —
    /// rotation-bound time stretches by `full_rpm / current_rpm` and no
    /// spin-up is paid — and each serviced request promotes the disk one
    /// rung back toward full speed (a simple load-follows-speed
    /// controller; the one-rung acceleration itself is folded into the
    /// stretched service and not charged separately). Arrivals at standby
    /// still pay a partial spin-up to the slowest spinning mode. The paper chooses the
    /// serve-at-full-speed-only option (the default); this flag exists
    /// for the §2.1 design-alternative ablation.
    ///
    /// # Panics
    ///
    /// Panics when combined with [`DpmPolicy::Oracle`] (clairvoyant mode
    /// choice and speed-dependent service are not causally composable).
    #[must_use]
    pub fn with_serve_at_speed(mut self) -> Self {
        assert!(
            self.policy != DpmPolicy::Oracle,
            "serve-at-speed requires a causal DPM"
        );
        self.serve_at_speed = true;
        self
    }

    /// Enables power-timeline recording (see [`Timeline`]); the disk
    /// starts with a full-speed rest event at time zero.
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        let mut timeline = Timeline::default();
        timeline.push(
            SimTime::ZERO,
            PowerEvent::Rest {
                mode: ModeId::FULL_SPEED,
            },
        );
        self.timeline = Some(timeline);
        self
    }

    /// The recorded power timeline, if recording was enabled.
    #[must_use]
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    fn record(&mut self, at: SimTime, event: PowerEvent) {
        if let Some(t) = self.timeline.as_mut() {
            t.push(at, event);
        }
    }

    /// The disk's identifier.
    #[must_use]
    pub fn id(&self) -> DiskId {
        self.id
    }

    /// The power model in effect.
    #[must_use]
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The power-management policy in effect.
    #[must_use]
    pub fn policy(&self) -> DpmPolicy {
        self.policy
    }

    /// The accounting collected so far.
    #[must_use]
    pub fn report(&self) -> &DiskReport {
        &self.report
    }

    /// When the disk completes its last accepted request (the earliest
    /// valid [`DiskSim::finish`] horizon).
    #[must_use]
    pub fn ready_at(&self) -> SimTime {
        self.busy_until
    }

    /// The power mode the disk rests in at `now`, assuming no request
    /// arrives before then. Used by power-aware write policies (WBEU,
    /// WTDU) to decide whether a write would wake a sleeping disk.
    ///
    /// For [`DpmPolicy::Oracle`] the mode depends on the (unknown) next
    /// arrival; this returns the Practical-ladder estimate, which is why
    /// the integrated write-policy simulator runs Practical DPM only (see
    /// DESIGN.md §2).
    #[must_use]
    pub fn peek_mode(&self, now: SimTime) -> ModeId {
        if now < self.busy_until {
            return ModeId::FULL_SPEED;
        }
        let Some(idle_since) = self.idle_since else {
            return ModeId::FULL_SPEED;
        };
        match self.policy {
            DpmPolicy::AlwaysOn => ModeId::FULL_SPEED,
            DpmPolicy::Practical | DpmPolicy::Oracle => self
                .power
                .practical_mode_at(now.saturating_since(idle_since)),
            DpmPolicy::FixedThreshold(_) => {
                let ladder = self.fixed_ladder.as_deref().expect("fixed ladder exists");
                let elapsed = now.saturating_since(idle_since);
                ladder
                    .iter()
                    .rev()
                    .find(|s| s.at_idle <= elapsed)
                    .map_or(ModeId::FULL_SPEED, |s| s.mode)
            }
        }
    }

    /// Returns `true` if a request arriving at `now` would find the disk
    /// below full speed.
    #[must_use]
    pub fn is_sleeping(&self, now: SimTime) -> bool {
        !self.peek_mode(now).is_full_speed()
    }

    /// Services one request arriving at `arrival`.
    ///
    /// Requests must be offered in non-decreasing arrival order; a request
    /// arriving while the previous one is in service queues FCFS.
    ///
    /// # Panics
    ///
    /// Panics if called after [`DiskSim::finish`] or with an arrival
    /// earlier than the previous one.
    pub fn service(&mut self, arrival: SimTime, request: ServiceRequest) -> Served {
        assert!(!self.finished, "disk already finished");
        if let Some(last) = self.last_arrival {
            assert!(arrival >= last, "arrivals must be in order");
            self.report.interarrival_total += arrival - last;
            self.report.interarrival_count += 1;
        }
        self.last_arrival = Some(arrival);

        let mut service_mode = ModeId::FULL_SPEED;
        let (start, wait) = if arrival >= self.busy_until {
            // The disk has been idle since the previous completion; close
            // the idle period (paying a spin-up, or — under
            // serve-at-speed — continuing at the reached speed).
            let spin_wait = match self.idle_since.take() {
                Some(idle_start) if arrival > idle_start => {
                    if self.serve_at_speed {
                        let (wait, mode) = self.close_idle_at_speed(idle_start, arrival);
                        service_mode = mode;
                        wait
                    } else {
                        self.account_idle(idle_start, arrival, true)
                    }
                }
                _ => {
                    service_mode = self.resting_mode;
                    SimDuration::ZERO
                }
            };
            (arrival + spin_wait, spin_wait)
        } else {
            // Queued behind the in-flight request; the disk stays active,
            // so the pending idle marker (set at the previous completion,
            // which is still in the future) is discarded.
            self.idle_since = None;
            service_mode = self.resting_mode;
            (self.busy_until, self.busy_until - arrival)
        };

        self.record(start, PowerEvent::ServiceStart);
        let full_service = self.service_model.service_time(self.head, request);
        let seek = self.service_model.seek_portion(self.head, request);
        let (service, active_power) = if service_mode.is_full_speed() {
            (full_service, self.power.active_power())
        } else {
            // Rotation-bound time stretches inversely with the speed;
            // active power scales with the mode's spindle power share.
            let spec = self.power.mode(service_mode);
            let full_rpm = self.power.mode(ModeId::FULL_SPEED).rpm.max(1);
            let ratio = f64::from(full_rpm) / f64::from(spec.rpm.max(1));
            let scaled = seek + (full_service - seek).mul_f64(ratio);
            let power_scale =
                spec.power.as_watts() / self.power.mode(ModeId::FULL_SPEED).power.as_watts();
            (
                scaled,
                pc_units::Watts::new(self.power.active_power().as_watts() * power_scale),
            )
        };
        self.report.service_time += service;
        self.report.service_energy +=
            self.power.seek_power() * seek + active_power * (service - seek);
        self.report.requests += 1;

        let completion = start + service;
        self.record(completion, PowerEvent::ServiceEnd);
        self.busy_until = completion;
        self.idle_since = Some(completion);
        self.resting_mode = if self.serve_at_speed {
            // Load promotes the disk one rung back toward full speed.
            ModeId::new(service_mode.index().saturating_sub(1))
        } else {
            ModeId::FULL_SPEED
        };
        self.head = Some(BlockNo::new(
            request.block.number() + request.blocks.saturating_sub(1),
        ));

        let response = wait + service;
        self.report.response_total += response;
        self.report.response_max = self.report.response_max.max(response);
        Served {
            wait,
            service,
            response,
            completion,
        }
    }

    /// Closes the simulation at `end`, accounting any trailing idle time
    /// (without a final spin-up). Must be called exactly once, with `end`
    /// at or after the last completion.
    ///
    /// # Panics
    ///
    /// Panics if called twice or with `end` before the last completion.
    pub fn finish(&mut self, end: SimTime) {
        assert!(!self.finished, "finish called twice");
        assert!(
            end >= self.busy_until,
            "simulation end precedes the last completion"
        );
        if let Some(idle_start) = self.idle_since.take() {
            if end > idle_start {
                if self.serve_at_speed {
                    let offset = self.ladder_offset_of(self.resting_mode);
                    let ladder = match self.policy {
                        DpmPolicy::FixedThreshold(_) => {
                            self.fixed_ladder.clone().expect("fixed ladder exists")
                        }
                        _ => self.power.ladder().to_vec(),
                    };
                    let _ = self.walk_ladder(idle_start, &ladder, offset, end - idle_start, false);
                } else {
                    let _ = self.account_idle(idle_start, end, false);
                }
            }
        }
        self.finished = true;
    }

    /// Accounts an idle period `[start, end)`, returning the wait a
    /// request arriving at `end` suffers (spin-down completion + spin-up).
    fn account_idle(&mut self, start: SimTime, end: SimTime, spin_up: bool) -> SimDuration {
        let gap = end - start;
        match self.policy {
            DpmPolicy::AlwaysOn => {
                self.record(
                    start,
                    PowerEvent::Rest {
                        mode: ModeId::FULL_SPEED,
                    },
                );
                self.rest(ModeId::FULL_SPEED, gap);
                SimDuration::ZERO
            }
            DpmPolicy::Oracle => {
                self.account_oracle(start, gap, spin_up);
                SimDuration::ZERO
            }
            DpmPolicy::Practical => {
                let ladder = self.power.ladder().to_vec();
                self.account_ladder(start, &ladder, gap, spin_up)
            }
            DpmPolicy::FixedThreshold(_) => {
                let ladder = self.fixed_ladder.clone().expect("fixed ladder exists");
                self.account_ladder(start, &ladder, gap, spin_up)
            }
        }
    }

    /// Oracle: one clairvoyant decision for the whole gap. The spin-up is
    /// timed to complete exactly at the gap's end, so the request waits
    /// nothing.
    fn account_oracle(&mut self, start: SimTime, gap: SimDuration, spin_up: bool) {
        let mode = self.power.oracle_mode_for_gap(gap);
        if mode.is_full_speed() {
            self.record(start, PowerEvent::Rest { mode });
            self.rest(mode, gap);
            return;
        }
        let spec = self.power.mode(mode).clone();
        let up = if spin_up {
            spec.spin_up.time
        } else {
            SimDuration::ZERO
        };
        let residency = gap - spec.spin_down.time - up;
        self.record(start, PowerEvent::SpinDown { to: mode });
        self.report.spin_down_time += spec.spin_down.time;
        self.report.spin_down_energy += spec.spin_down.energy;
        self.report.spin_downs += 1;
        self.record(start + spec.spin_down.time, PowerEvent::Rest { mode });
        self.rest(mode, residency);
        if spin_up {
            self.record(start + spec.spin_down.time + residency, PowerEvent::SpinUp);
            self.report.spin_up_time += spec.spin_up.time;
            self.report.spin_up_energy += spec.spin_up.energy;
            self.report.spin_ups += 1;
        }
    }

    /// Threshold-ladder accounting. Spin-downs consume real time inside
    /// the gap; if the gap ends mid-transition the transition completes
    /// past the gap's end and the remainder is added to the returned wait,
    /// together with the final spin-up.
    fn account_ladder(
        &mut self,
        start: SimTime,
        ladder: &[LadderStep],
        gap: SimDuration,
        spin_up: bool,
    ) -> SimDuration {
        self.walk_ladder(start, ladder, SimDuration::ZERO, gap, spin_up)
            .0
    }

    /// Walks the demotion ladder over an idle period that begins with the
    /// disk already `offset` deep into the ladder (0 = full speed, the
    /// serve-at-full-speed case). Accounts residencies and the demotion
    /// transitions falling inside the period, optionally a final spin-up.
    /// Returns (extra wait past the period's end, the mode reached).
    fn walk_ladder(
        &mut self,
        start: SimTime,
        ladder: &[LadderStep],
        offset: SimDuration,
        gap: SimDuration,
        spin_up: bool,
    ) -> (SimDuration, ModeId) {
        let mut wait = SimDuration::ZERO;
        let mut end_mode = ModeId::FULL_SPEED;
        let mut prev_down = Transition::default();
        let ladder_end = offset + gap;
        for (k, step) in ladder.iter().enumerate() {
            let seg_end = ladder
                .get(k + 1)
                .map_or(ladder_end, |n| n.at_idle.min(ladder_end));
            if seg_end <= offset {
                // Entirely before this idle period: the disk already sat
                // in (or below) this rung when the period began.
                end_mode = step.mode;
                prev_down = self.power.mode(step.mode).spin_down;
                continue;
            }
            if step.at_idle >= ladder_end {
                break;
            }
            let spec = self.power.mode(step.mode).clone();
            let mut rest_from = step.at_idle.max(offset);
            // A rung whose threshold coincides with the offset is the one
            // the disk already rests in: no transition to charge.
            if k > 0 && step.at_idle > offset {
                // Demotion into this mode: the incremental transition
                // relative to the previous rung (the linear model makes
                // chained demotions cost exactly the full-depth total).
                let dt = spec.spin_down.time.saturating_sub(prev_down.time);
                let de = spec.spin_down.energy - prev_down.energy;
                self.record(
                    start + (step.at_idle - offset),
                    PowerEvent::SpinDown { to: step.mode },
                );
                self.report.spin_down_time += dt;
                self.report.spin_down_energy += de;
                self.report.spin_downs += 1;
                rest_from = step.at_idle + dt;
                if rest_from > ladder_end {
                    // The request arrived mid-spin-down: finish the
                    // transition past the gap, then spin up.
                    wait += rest_from - ladder_end;
                }
            }
            if seg_end > rest_from {
                self.record(
                    start + (rest_from - offset),
                    PowerEvent::Rest { mode: step.mode },
                );
                self.rest(step.mode, seg_end - rest_from);
            }
            end_mode = step.mode;
            prev_down = spec.spin_down;
        }
        if spin_up && !end_mode.is_full_speed() {
            // The spin-up begins at the gap's end, after any leftover
            // spin-down completes.
            self.record(start + gap + wait, PowerEvent::SpinUp);
            let up = self.power.mode(end_mode).spin_up;
            self.report.spin_up_time += up.time;
            self.report.spin_up_energy += up.energy;
            self.report.spin_ups += 1;
            wait += up.time;
        }
        (wait, end_mode)
    }

    /// The ladder position (cumulative-idle offset) of a resting mode.
    fn ladder_offset_of(&self, mode: ModeId) -> SimDuration {
        let ladder: &[LadderStep] = match self.policy {
            DpmPolicy::FixedThreshold(_) => {
                self.fixed_ladder.as_deref().expect("fixed ladder exists")
            }
            _ => self.power.ladder(),
        };
        ladder
            .iter()
            .find(|s| s.mode == mode)
            .map_or(SimDuration::ZERO, |s| s.at_idle)
    }

    /// Serve-at-speed idle closing: walk the ladder from the resting
    /// mode; no full spin-up is paid. Returns the wait (leftover
    /// spin-down, plus a partial spin-up when the disk reached standby —
    /// a stopped spindle cannot transfer) and the speed the request is
    /// serviced at.
    fn close_idle_at_speed(&mut self, start: SimTime, end: SimTime) -> (SimDuration, ModeId) {
        let offset = self.ladder_offset_of(self.resting_mode);
        let ladder = match self.policy {
            DpmPolicy::FixedThreshold(_) => self.fixed_ladder.clone().expect("fixed ladder exists"),
            DpmPolicy::AlwaysOn => {
                self.rest(ModeId::FULL_SPEED, end - start);
                self.record(
                    start,
                    PowerEvent::Rest {
                        mode: ModeId::FULL_SPEED,
                    },
                );
                return (SimDuration::ZERO, ModeId::FULL_SPEED);
            }
            _ => self.power.ladder().to_vec(),
        };
        let (mut wait, mode) = self.walk_ladder(start, &ladder, offset, end - start, false);
        if mode == self.power.standby() {
            // Spin up just far enough to transfer: to the slowest
            // spinning mode on multi-speed disks, to full speed on
            // 2-mode disks.
            let target = if self.power.mode_count() > 2 {
                ModeId::new(self.power.mode_count() - 2)
            } else {
                ModeId::FULL_SPEED
            };
            let from = self.power.mode(mode).spin_up;
            let to = self.power.mode(target).spin_up;
            let dt = from.time.saturating_sub(to.time);
            let de = from.energy - to.energy;
            self.record(end + wait, PowerEvent::SpinUp);
            self.report.spin_up_time += dt;
            self.report.spin_up_energy += de;
            self.report.spin_ups += 1;
            wait += dt;
            return (wait, target);
        }
        (wait, mode)
    }

    /// Accounts residency in a mode.
    fn rest(&mut self, mode: ModeId, span: SimDuration) {
        self.report.mode_time[mode.index()] += span;
        self.report.mode_energy[mode.index()] += self.power.mode(mode).power * span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_diskmodel::DiskPowerSpec;
    use pc_units::Joules;

    fn disk(policy: DpmPolicy) -> DiskSim {
        DiskSim::new(
            DiskId::new(0),
            PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15()),
            ServiceModel::ultrastar_36z15(),
            policy,
        )
    }

    fn req(block: u64) -> ServiceRequest {
        ServiceRequest::single(BlockNo::new(block))
    }

    #[test]
    fn always_on_accounts_pure_idle_energy() {
        let mut d = disk(DpmPolicy::AlwaysOn);
        d.finish(SimTime::from_secs(100));
        let r = d.report();
        assert!((r.total_energy().as_joules() - 10.2 * 100.0).abs() < 1e-6);
        assert_eq!(r.total_time(), SimDuration::from_secs(100));
        assert_eq!(r.spin_ups, 0);
    }

    #[test]
    fn practical_short_gap_stays_at_full_speed() {
        let mut d = disk(DpmPolicy::Practical);
        let a = d.service(SimTime::from_secs(1), req(1));
        assert_eq!(a.wait, SimDuration::ZERO);
        let b = d.service(a.completion + SimDuration::from_secs(5), req(2));
        // 5 s < 10.68 s first threshold: no spin activity, no wait.
        assert_eq!(b.wait, SimDuration::ZERO);
        assert_eq!(d.report().spin_downs, 0);
    }

    #[test]
    fn practical_long_gap_descends_and_pays_spin_up() {
        let mut d = disk(DpmPolicy::Practical);
        let a = d.service(SimTime::from_secs(1), req(1));
        // 15 s gap: past the 10.68 s threshold, disk sits in NAP1 (and the
        // 13.73 s NAP2 threshold), request pays a spin-up from NAP2.
        let b = d.service(a.completion + SimDuration::from_secs(15), req(2));
        assert!(b.wait > SimDuration::ZERO);
        d.finish(b.completion);
        let r = d.report();
        assert!(r.spin_downs >= 1);
        assert_eq!(r.spin_ups, 1);
        assert!(r.mode_time[1] > SimDuration::ZERO, "rested in NAP1");
        assert_eq!(r.requests, 2);
    }

    #[test]
    fn practical_time_accounting_balances() {
        let mut d = disk(DpmPolicy::Practical);
        let mut t = SimTime::from_secs(1);
        let mut last = None;
        for (i, gap) in [5u64, 20, 40, 120, 3, 11].into_iter().enumerate() {
            let s = d.service(t, req(i as u64));
            last = Some(s);
            t = s.completion + SimDuration::from_secs(gap);
        }
        let end = last.unwrap().completion + SimDuration::from_secs(7);
        d.finish(end);
        let accounted = d.report().total_time();
        // Accounted time = wall clock + waits (transitions extend past
        // arrival instants but are all real elapsed time on the disk).
        let expected = end - SimTime::ZERO;
        let diff = accounted.as_secs_f64() - expected.as_secs_f64();
        assert!(
            diff.abs() < 1e-6,
            "accounted {accounted} expected {expected}"
        );
    }

    #[test]
    fn oracle_never_delays_requests() {
        let mut d = disk(DpmPolicy::Oracle);
        let mut t = SimTime::from_secs(1);
        for (i, gap) in [5u64, 20, 40, 200, 1000].into_iter().enumerate() {
            let s = d.service(t, req(i as u64));
            assert_eq!(s.wait, SimDuration::ZERO);
            t = s.completion + SimDuration::from_secs(gap);
        }
    }

    #[test]
    fn oracle_beats_practical_on_energy() {
        let gaps = [5u64, 20, 40, 200, 13, 75, 8, 500];
        let mut energies = Vec::new();
        for policy in [DpmPolicy::Oracle, DpmPolicy::Practical, DpmPolicy::AlwaysOn] {
            let mut d = disk(policy);
            let mut t = SimTime::from_secs(1);
            let mut last = t;
            for (i, gap) in gaps.into_iter().enumerate() {
                let s = d.service(t, req(i as u64 * 1000));
                last = s.completion + s.wait;
                t = s.completion + SimDuration::from_secs(gap);
            }
            d.finish(t.max(last) + SimDuration::from_secs(20));
            energies.push(d.report().total_energy().as_joules());
        }
        let (oracle, practical, always_on) = (energies[0], energies[1], energies[2]);
        assert!(oracle < practical, "oracle {oracle} practical {practical}");
        assert!(practical < always_on, "practical should beat always-on");
        assert!(
            practical < 2.0 * oracle + 1e-9,
            "practical must stay 2-competitive"
        );
    }

    #[test]
    fn queued_requests_wait_for_the_head_of_line() {
        let mut d = disk(DpmPolicy::Practical);
        let a = d.service(SimTime::from_secs(1), req(1));
        // Arrive immediately after, while the first is still in service.
        let b = d.service(SimTime::from_secs(1) + SimDuration::from_micros(1), req(2));
        assert!(b.wait > SimDuration::ZERO);
        assert_eq!(
            b.wait,
            a.completion - (SimTime::from_secs(1) + SimDuration::from_micros(1))
        );
        assert_eq!(d.report().spin_downs, 0, "no idle period in between");
    }

    #[test]
    fn fixed_threshold_goes_straight_to_standby() {
        let mut d = disk(DpmPolicy::FixedThreshold(SimDuration::from_secs(10)));
        let a = d.service(SimTime::from_secs(1), req(1));
        let b = d.service(a.completion + SimDuration::from_secs(30), req(2));
        let r = d.report();
        assert_eq!(r.spin_downs, 1);
        assert_eq!(r.spin_ups, 1);
        // Waited the full standby spin-up.
        assert!(b.wait >= SimDuration::from_millis(10_900));
        // Standby residency, no NAP residency.
        assert!(r.mode_time[5] > SimDuration::ZERO);
        assert_eq!(r.mode_time[1], SimDuration::ZERO);
    }

    #[test]
    fn arrival_mid_spin_down_waits_for_completion_then_spin_up() {
        // First threshold at ~10.678 s, NAP1 spin-down takes 0.3 s. Arrive
        // 10.8 s into the gap: mid-transition.
        let mut d = disk(DpmPolicy::Practical);
        let a = d.service(SimTime::from_secs(1), req(1));
        let arrival = a.completion + SimDuration::from_millis(10_800);
        let b = d.service(arrival, req(2));
        // Wait = remaining spin-down (~0.178 s) + NAP1 spin-up (2.18 s).
        let w = b.wait.as_secs_f64();
        assert!((w - (0.178 + 2.18)).abs() < 0.01, "wait {w}");
    }

    #[test]
    fn peek_mode_tracks_the_ladder() {
        let mut d = disk(DpmPolicy::Practical);
        let a = d.service(SimTime::from_secs(1), req(1));
        let idle0 = a.completion;
        assert!(d
            .peek_mode(idle0 + SimDuration::from_secs(5))
            .is_full_speed());
        assert_eq!(d.peek_mode(idle0 + SimDuration::from_secs(12)).index(), 1);
        assert_eq!(d.peek_mode(idle0 + SimDuration::from_secs(100)).index(), 5);
        assert!(d.is_sleeping(idle0 + SimDuration::from_secs(100)));
        // During service the disk reads as full speed.
        let mut d2 = disk(DpmPolicy::Practical);
        d2.service(SimTime::from_secs(1), req(1));
        assert!(d2
            .peek_mode(SimTime::from_secs(1) + SimDuration::from_micros(10))
            .is_full_speed());
    }

    #[test]
    fn service_energy_accrues_at_active_power() {
        let mut d = disk(DpmPolicy::AlwaysOn);
        let s = d.service(SimTime::from_secs(1), req(1));
        d.finish(s.completion);
        let r = d.report();
        let expected = 13.5 * s.service.as_secs_f64();
        assert!((r.service_energy.as_joules() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn rejects_out_of_order_arrivals() {
        let mut d = disk(DpmPolicy::Practical);
        d.service(SimTime::from_secs(2), req(1));
        d.service(SimTime::from_secs(1), req(2));
    }

    #[test]
    #[should_panic(expected = "finish called twice")]
    fn rejects_double_finish() {
        let mut d = disk(DpmPolicy::Practical);
        d.finish(SimTime::from_secs(1));
        d.finish(SimTime::from_secs(2));
    }

    #[test]
    fn interarrival_stats_track_arrivals() {
        let mut d = disk(DpmPolicy::AlwaysOn);
        d.service(SimTime::from_secs(1), req(1));
        let s = d.service(SimTime::from_secs(4), req(2));
        d.service(SimTime::from_secs(9).max(s.completion), req(3));
        let r = d.report();
        assert_eq!(r.interarrival_count, 2);
        assert!(r.mean_interarrival() >= SimDuration::from_secs(3));
    }

    #[test]
    fn timeline_pins_down_the_practical_state_sequence() {
        use crate::PowerEvent;
        let mut d = disk(DpmPolicy::Practical).with_timeline();
        let a = d.service(SimTime::from_secs(1), req(1));
        // A 15 s gap: idle → NAP1 (10.678 s) → NAP2 (13.729 s) → spin-up
        // on the next arrival.
        let b = d.service(a.completion + SimDuration::from_secs(15), req(2));
        d.finish(b.completion);
        let events: Vec<PowerEvent> = d
            .timeline()
            .expect("recording on")
            .iter()
            .map(|e| e.event)
            .collect();
        use PowerEvent::{Rest, ServiceEnd, ServiceStart, SpinDown, SpinUp};
        assert_eq!(
            events,
            vec![
                Rest {
                    mode: ModeId::new(0)
                }, // initial
                Rest {
                    mode: ModeId::new(0)
                }, // the 1 s pre-arrival idle
                ServiceStart,
                ServiceEnd,
                Rest {
                    mode: ModeId::new(0)
                }, // idle after service
                SpinDown { to: ModeId::new(1) },
                Rest {
                    mode: ModeId::new(1)
                },
                SpinDown { to: ModeId::new(2) },
                Rest {
                    mode: ModeId::new(2)
                },
                SpinUp,
                ServiceStart,
                ServiceEnd,
            ]
        );
        // Timestamp spot-checks: the first demotion fires 10.678 s into
        // the idle period.
        let entries = d.timeline().unwrap().entries();
        let idle_start = entries[3].at;
        let first_down = entries[5].at;
        assert!(
            ((first_down - idle_start).as_secs_f64() - 10.678).abs() < 0.01,
            "threshold timing"
        );
    }

    #[test]
    fn timeline_oracle_spins_up_just_in_time() {
        use crate::PowerEvent;
        let mut d = disk(DpmPolicy::Oracle).with_timeline();
        let a = d.service(SimTime::from_secs(1), req(1));
        let arrival = a.completion + SimDuration::from_secs(500);
        d.service(arrival, req(2));
        let up = d
            .timeline()
            .unwrap()
            .iter()
            .find(|e| e.event == PowerEvent::SpinUp)
            .expect("oracle spun down for a 500 s gap");
        // Standby spin-up takes 10.9 s and completes exactly at arrival.
        assert_eq!(up.at + SimDuration::from_millis(10_900), arrival);
    }

    #[test]
    fn timeline_is_off_by_default() {
        let mut d = disk(DpmPolicy::Practical);
        d.service(SimTime::from_secs(1), req(1));
        assert!(d.timeline().is_none());
    }

    /// Replays the same arrival/block schedule under option 1
    /// (serve-at-speed) and option 2 (full-speed-only), returning both
    /// outcome lists for like-for-like comparison.
    fn replay_both_options(gaps: &[u64]) -> (Vec<Served>, Vec<Served>) {
        let run = |serve_at_speed: bool| {
            let mut d = disk(DpmPolicy::Practical);
            if serve_at_speed {
                d = d.with_serve_at_speed();
            }
            let mut t = SimTime::from_secs(1);
            let mut served = Vec::new();
            for (i, &g) in gaps.iter().enumerate() {
                let s = d.service(t, req(i as u64));
                t = s.completion + SimDuration::from_secs(g);
                served.push(s);
            }
            served
        };
        (run(true), run(false))
    }

    #[test]
    fn serve_at_speed_skips_the_spin_up_wait_but_stretches_service() {
        // 20 s gaps: the disk reaches NAP3 (6 000 RPM) before each
        // arrival. Option 1 serves right there (no multi-second spin-up,
        // 2.5× rotation-bound service); option 2 waits for the spin-up.
        let (option1, option2) = replay_both_options(&[20, 20, 20]);
        for (o1, o2) in option1.iter().zip(&option2).skip(1) {
            assert!(
                o1.wait < SimDuration::from_millis(400),
                "no spin-up wait, got {}",
                o1.wait
            );
            assert!(o2.wait > SimDuration::from_secs(5), "option 2 waits");
            // Same block, same head position: the stretch is exactly the
            // speed ratio on the rotation-bound portion.
            assert!(
                o1.service > o2.service * 2,
                "service must stretch: {} vs {}",
                o1.service,
                o2.service
            );
        }
    }

    #[test]
    fn serve_at_speed_load_promotes_the_spindle() {
        let mut d = disk(DpmPolicy::Practical).with_serve_at_speed();
        let a = d.service(SimTime::from_secs(1), req(1));
        // Reach NAP3 with a 20 s gap, then re-serve the *same* block
        // back-to-back: each service promotes one rung, so the identical
        // mechanical work shrinks toward full speed.
        let b = d.service(a.completion + SimDuration::from_secs(20), req(42));
        let c = d.service(b.completion + SimDuration::from_millis(1), req(42));
        let e = d.service(c.completion + SimDuration::from_millis(1), req(42));
        assert!(c.service < b.service, "{} then {}", b.service, c.service);
        assert!(e.service < c.service);
    }

    #[test]
    fn serve_at_speed_standby_pays_only_a_partial_spin_up() {
        let mut d = disk(DpmPolicy::Practical).with_serve_at_speed();
        let a = d.service(SimTime::from_secs(1), req(1));
        // 200 s: deep in standby. A stopped spindle cannot transfer, so
        // the disk spins up to the slowest spinning mode (3 000 RPM):
        // 10.9 s − 8.72 s = 2.18 s of wait, not the full 10.9 s.
        let b = d.service(a.completion + SimDuration::from_secs(200), req(2));
        let w = b.wait.as_secs_f64();
        assert!((w - 2.18).abs() < 0.01, "partial spin-up wait, got {w}");
        let r = d.report();
        assert_eq!(r.spin_ups, 1);
        assert!((r.spin_up_energy.as_joules() - 27.0).abs() < 1e-6);
    }

    #[test]
    fn serve_at_speed_beats_option2_on_response_for_sparse_traffic() {
        let gaps = [20u64, 25, 40, 18, 33];
        let run = |serve_at_speed: bool| {
            let mut d = disk(DpmPolicy::Practical);
            if serve_at_speed {
                d = d.with_serve_at_speed();
            }
            let mut t = SimTime::from_secs(1);
            let mut total_wait = SimDuration::ZERO;
            for (i, g) in gaps.into_iter().enumerate() {
                let s = d.service(t, req(i as u64));
                total_wait += s.wait;
                t = s.completion + SimDuration::from_secs(g);
            }
            total_wait
        };
        let option1 = run(true);
        let option2 = run(false);
        assert!(
            option1 < option2 / 4,
            "option1 waits {option1} vs option2 {option2}"
        );
    }

    #[test]
    #[should_panic(expected = "causal DPM")]
    fn serve_at_speed_rejects_oracle() {
        let _ = disk(DpmPolicy::Oracle).with_serve_at_speed();
    }

    #[test]
    fn two_mode_power_model_works_end_to_end() {
        let mut d = DiskSim::new(
            DiskId::new(1),
            PowerModel::two_mode(&DiskPowerSpec::ultrastar_36z15()),
            ServiceModel::ultrastar_36z15(),
            DpmPolicy::Practical,
        );
        let a = d.service(SimTime::from_secs(1), req(1));
        let b = d.service(a.completion + SimDuration::from_secs(60), req(2));
        assert!(b.wait >= SimDuration::from_millis(10_900));
        d.finish(b.completion);
        assert!(d.report().total_energy() > Joules::ZERO);
    }
}
