//! Figure 4 — energy-*savings* lines per mode (over staying at full-speed
//! idle) and their upper envelope.

use pc_diskmodel::{DiskPowerSpec, PowerModel};
use pc_units::SimDuration;

use crate::{sweep, ExperimentOutput, Params, Table};

/// Interval lengths (seconds) at which the series are sampled.
const SAMPLES: [u64; 10] = [0, 5, 10, 15, 20, 30, 50, 75, 100, 150];

/// Prints the savings each mode offers per sampled interval length and the
/// maximum (upper envelope), illustrating the super-linear growth the
/// paper's §4 argument builds on.
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let model = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
    let mut header: Vec<String> = vec!["interval".into()];
    header.extend(model.modes().skip(1).map(|(_, m)| m.name.clone()));
    header.push("max".into());
    let mut t = Table::new(header);
    for row in sweep::over(params, SAMPLES.to_vec(), |&s| {
        let gap = SimDuration::from_secs(s);
        let mut row = vec![format!("{s}s")];
        for (id, _) in model.modes().skip(1) {
            row.push(format!("{:.1}", model.savings_line(id, gap).as_joules()));
        }
        row.push(format!("{:.1}", model.max_savings(gap).as_joules()));
        row
    }) {
        t.row(row);
    }

    let mut out = ExperimentOutput {
        text: format!(
            "Figure 4: Energy savings over full-speed idle per mode, and the upper envelope (J)\n\n{}",
            t.render()
        ),
        ..ExperimentOutput::default()
    };
    // The super-linearity the paper highlights: savings per second grow
    // with the interval length.
    let per_s = |s: u64| model.max_savings(SimDuration::from_secs(s)).as_joules() / s as f64;
    out.record("rate_at_20s", per_s(20));
    out.record("rate_at_150s", per_s(150));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_rate_is_superlinear() {
        let o = run(&Params::quick());
        assert!(o.metric("rate_at_150s") > o.metric("rate_at_20s"));
    }
}
