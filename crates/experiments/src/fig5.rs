//! Figure 5 — the histogram approximation of a disk's interval-length
//! CDF, as PA-LRU's classifier builds it.

use pc_cache::IntervalHistogram;
use pc_trace::OltpConfig;
use pc_units::SimDuration;

use crate::{ExperimentOutput, Params, Table};

/// Builds one epoch's interval histogram for a hot disk and a cacheable
/// disk of the OLTP-like workload and prints both CDFs with their
/// 80th-percentile probe (the classifier's `F⁻¹(p)`).
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let config = OltpConfig::default().with_requests(params.requests(72_000));
    let trace = config.generate(params.seed);
    let hot = 0u32;
    let cacheable = config.hot_disks + 2;

    let mut hists = [IntervalHistogram::standard(), IntervalHistogram::standard()];
    let mut last = [None, None];
    for r in &trace {
        let idx = if r.block.disk().index() == hot {
            0
        } else if r.block.disk().index() == cacheable {
            1
        } else {
            continue;
        };
        if let Some(prev) = last[idx] {
            hists[idx].record(r.time.saturating_since(prev));
        }
        last[idx] = Some(r.time);
    }

    let mut t = Table::new(["interval ≤", "F(x) hot disk", "F(x) cacheable disk"]);
    for ((edge, f_hot), (_, f_cache)) in hists[0].cdf().into_iter().zip(hists[1].cdf()) {
        if f_hot < 0.002 && f_cache < 0.002 {
            continue;
        }
        t.row([
            edge.to_string(),
            format!("{f_hot:.3}"),
            format!("{f_cache:.3}"),
        ]);
        if f_hot >= 0.9999 && f_cache >= 0.9999 {
            break;
        }
    }

    let q_hot = hists[0].quantile(0.8);
    let q_cache = hists[1].quantile(0.8);
    let threshold = SimDuration::from_secs(10);
    let mut out = ExperimentOutput {
        text: format!(
            "Figure 5: Interval-length CDF approximation (disk {hot} = hot, disk {cacheable} = cacheable)\n\n{}\nF^-1(0.8): hot = {q_hot}, cacheable = {q_cache}  (classifier threshold T ≈ {threshold})\n",
            t.render()
        ),
        ..ExperimentOutput::default()
    };
    out.record("q80_hot_s", q_hot.as_secs_f64());
    out.record("q80_cacheable_s", q_cache.as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_separate_the_two_disk_classes() {
        let o = run(&Params::quick());
        assert!(o.metric("q80_hot_s") < 10.0, "hot disks have short gaps");
        assert!(
            o.metric("q80_cacheable_s") > 10.0,
            "cacheable disks exceed the NAP1 break-even"
        );
    }
}
