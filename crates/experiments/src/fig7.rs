//! Figure 7 — why PA-LRU wins: per-mode time breakdown and mean request
//! inter-arrival for two representative disks (one hot like the paper's
//! disk 4, one cacheable like its disk 14), under LRU and PA-LRU.

use pc_sim::{run_replacement, PolicySpec, SimConfig, SimReport};
use pc_trace::OltpConfig;
use pc_units::DiskId;

use crate::{ExperimentOutput, Params, Table};

/// Runs LRU and PA-LRU on the OLTP-like trace and prints, for a hot disk
/// and a cacheable disk: % time active (servicing), per-mode residency,
/// spin transitions, and the mean disk-level request inter-arrival.
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let config = OltpConfig::default().with_requests(params.requests(72_000));
    let trace = config.generate(params.seed);
    let sim = SimConfig::default();
    let lru = run_replacement(&trace, &PolicySpec::Lru, &sim);
    let pa = run_replacement(&trace, &params.pa_policy(&sim.power_model()), &sim);

    let hot = DiskId::new(4);
    let cacheable = DiskId::new(config.hot_disks + 6); // "disk 14"

    let mut t = Table::new([
        "disk", "policy", "active%", "idle%", "nap%", "standby%", "spin%", "spin-ups",
        "mean gap",
    ]);
    let mut out = ExperimentOutput::default();
    for (label, disk) in [("hot(4)", hot), ("cacheable(14)", cacheable)] {
        for (policy, report) in [("lru", &lru), ("pa-lru", &pa)] {
            let d = &report.disks[disk.as_usize()];
            let f = d.time_fractions();
            let nap: f64 = f.per_mode[1..f.per_mode.len() - 1].iter().sum();
            let standby = *f.per_mode.last().expect("modes present");
            t.row([
                label.to_owned(),
                policy.to_owned(),
                format!("{:.1}", f.service * 100.0),
                format!("{:.1}", f.per_mode[0] * 100.0),
                format!("{:.1}", nap * 100.0),
                format!("{:.1}", standby * 100.0),
                format!("{:.1}", (f.spin_down + f.spin_up) * 100.0),
                d.spin_ups.to_string(),
                d.mean_interarrival().to_string(),
            ]);
            out.record(format!("{label}_{policy}_standby"), standby);
            out.record(
                format!("{label}_{policy}_gap_s"),
                d.mean_interarrival().as_secs_f64(),
            );
            out.record(format!("{label}_{policy}_spinups"), d.spin_ups as f64);
        }
    }

    out.text = format!(
        "Figure 7: Time breakdown and mean request inter-arrival, two representative disks (OLTP)\n\n{}",
        t.render()
    );
    out.record(
        "gap_stretch",
        gap_ratio(&pa, &lru, cacheable),
    );
    out
}

fn gap_ratio(pa: &SimReport, lru: &SimReport, disk: DiskId) -> f64 {
    let p = pa.disks[disk.as_usize()].mean_interarrival().as_secs_f64();
    let l = lru.disks[disk.as_usize()].mean_interarrival().as_secs_f64();
    if l == 0.0 {
        0.0
    } else {
        p / l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_lru_stretches_cacheable_disk_gaps_and_increases_standby() {
        let o = run(&Params {
            scale: 0.2,
            ..Params::quick()
        });
        assert!(
            o.metric("gap_stretch") > 1.3,
            "gap stretch {}",
            o.metric("gap_stretch")
        );
        assert!(
            o.metric("cacheable(14)_pa-lru_standby")
                > o.metric("cacheable(14)_lru_standby")
        );
        // Hot disks barely change.
        assert!(o.metric("hot(4)_pa-lru_standby") < 0.05);
    }
}
