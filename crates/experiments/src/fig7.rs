//! Figure 7 — why PA-LRU wins: per-mode time breakdown and mean request
//! inter-arrival for two representative disks (one hot like the paper's
//! disk 4, one cacheable like its disk 14), under LRU and PA-LRU.

use pc_sim::{run_replacement, PolicySpec, SimConfig, SimReport};
use pc_trace::OltpConfig;
use pc_units::DiskId;

use crate::{sweep, ExperimentOutput, Params, Table};

/// Runs LRU and PA-LRU on the OLTP-like trace and prints, for a hot disk
/// and a cacheable disk: % time active (servicing), per-mode residency,
/// spin transitions, and the mean disk-level request inter-arrival.
///
/// The paper's Figure 7 uses its real trace's disk 4 (hot) and disk 14
/// (cacheable). Our synthetic trace fixes which disks are hot, but which
/// of the remaining disks ends up most cacheable varies with the
/// generator stream, so the cacheable representative is chosen as the
/// non-hot disk whose mean inter-arrival PA-LRU stretches the most —
/// the same selection the paper made by hand.
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let config = OltpConfig::default().with_requests(params.requests(72_000));
    let trace = config.generate(params.seed);
    let sim = SimConfig::default();
    let specs = vec![PolicySpec::Lru, params.pa_policy(&sim.power_model())];
    let mut reports = sweep::over(params, specs, |spec| run_replacement(&trace, spec, &sim));
    let pa = reports.pop().expect("pa report");
    let lru = reports.pop().expect("lru report");

    let hot = DiskId::new(4);
    let cacheable = (config.hot_disks..trace.disk_count())
        .map(DiskId::new)
        .max_by(|&a, &b| {
            gap_ratio(&pa, &lru, a)
                .partial_cmp(&gap_ratio(&pa, &lru, b))
                .expect("finite ratios")
        })
        .expect("at least one cold disk");

    let mut t = Table::new([
        "disk", "policy", "active%", "idle%", "nap%", "standby%", "spin%", "spin-ups", "mean gap",
    ]);
    let mut out = ExperimentOutput::default();
    let hot_label = format!("hot({})", hot.as_usize());
    let cacheable_label = format!("cacheable({})", cacheable.as_usize());
    for (key, label, disk) in [
        ("hot", hot_label.as_str(), hot),
        ("cacheable", cacheable_label.as_str(), cacheable),
    ] {
        for (policy, report) in [("lru", &lru), ("pa-lru", &pa)] {
            let d = &report.disks[disk.as_usize()];
            let f = d.time_fractions();
            let nap: f64 = f.per_mode[1..f.per_mode.len() - 1].iter().sum();
            let standby = *f.per_mode.last().expect("modes present");
            t.row([
                label.to_owned(),
                policy.to_owned(),
                format!("{:.1}", f.service * 100.0),
                format!("{:.1}", f.per_mode[0] * 100.0),
                format!("{:.1}", nap * 100.0),
                format!("{:.1}", standby * 100.0),
                format!("{:.1}", (f.spin_down + f.spin_up) * 100.0),
                d.spin_ups.to_string(),
                d.mean_interarrival().to_string(),
            ]);
            out.record(format!("{key}_{policy}_standby"), standby);
            out.record(
                format!("{key}_{policy}_gap_s"),
                d.mean_interarrival().as_secs_f64(),
            );
            out.record(format!("{key}_{policy}_spinups"), d.spin_ups as f64);
        }
    }

    out.text = format!(
        "Figure 7: Time breakdown and mean request inter-arrival, two representative disks (OLTP)\n\n{}",
        t.render()
    );
    out.record("gap_stretch", gap_ratio(&pa, &lru, cacheable));
    out.record("cacheable_disk", cacheable.as_usize() as f64);
    out
}

fn gap_ratio(pa: &SimReport, lru: &SimReport, disk: DiskId) -> f64 {
    let p = pa.disks[disk.as_usize()].mean_interarrival().as_secs_f64();
    let l = lru.disks[disk.as_usize()].mean_interarrival().as_secs_f64();
    if l == 0.0 {
        0.0
    } else {
        p / l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_lru_stretches_cacheable_disk_gaps_and_increases_standby() {
        // Paper §5.2.2 / Figure 7: PA-LRU stretches the cacheable disk's
        // mean request inter-arrival (the paper's disk 14 goes from 5.75 s
        // under LRU to 16.1 s) and grows its standby residency, while hot
        // disks stay essentially always active. Scale 0.35 gives PA-LRU
        // enough epochs for the effect to be unambiguous.
        let o = run(&Params {
            scale: 0.35,
            ..Params::quick()
        });
        assert!(
            o.metric("gap_stretch") > 1.3,
            "gap stretch {}",
            o.metric("gap_stretch")
        );
        assert!(o.metric("cacheable_pa-lru_standby") > o.metric("cacheable_lru_standby"));
        // Hot disks barely change.
        assert!(o.metric("hot_pa-lru_standby") < 0.05);
    }
}
