//! `repro trace` — export the generator workloads to binary `.pct`
//! trace files and inspect existing files.
//!
//! Exporting materializes a [`Workload`] stream — the same streams the
//! load generator and the batch simulator consume — into the
//! [`pc_tracefile`] on-disk format, so a workload can be generated
//! once and replayed everywhere: `pc-loadgen --trace` drives it over
//! the wire, `repro <experiment> --trace` feeds it to the batch
//! harness, and the determinism bridge holds — a trace exported to a
//! file and read back simulates byte-identically to the in-memory
//! stream it came from (see `tests/end_to_end.rs`).

use std::io;
use std::path::Path;

use pc_trace::{Trace, TraceStats, Workload};

/// Exports a workload stream to a binary `.pct` trace file, returning
/// the record count written.
///
/// The stream is written record by record — the eager generators
/// (OLTP/Cello) are already materialized, and the lazy synthetic
/// stream never needs to be.
///
/// # Errors
///
/// Propagates file-system errors from creating and writing the file.
pub fn export(workload: &Workload, seed: u64, path: &Path) -> io::Result<u64> {
    pc_tracefile::write_records(path, workload.disk_count(), workload.stream(seed))
}

/// Reads a `.pct` file and renders a one-paragraph description: header
/// geometry plus the workload-shape statistics the `tracegen stats`
/// command reports for text traces.
///
/// # Errors
///
/// Propagates read failures and format/CRC violations.
pub fn info(path: &Path) -> io::Result<String> {
    let reader = pc_tracefile::open(path)?;
    let header = *reader.header();
    let trace = pc_tracefile::read_trace(path)?;
    Ok(render_info(&header, &trace))
}

fn render_info(header: &pc_tracefile::Header, trace: &Trace) -> String {
    let s = TraceStats::of(trace);
    format!(
        "format=v{} disks={} records={} chunk_records={}\n\
         requests={} writes={:.1}% mean-gap={} cold={:.1}% unique-blocks={}\n",
        header.version,
        header.disk_count,
        trace.len(),
        header.chunk_records,
        s.requests,
        s.write_fraction * 100.0,
        s.mean_interarrival,
        s.cold_fraction * 100.0,
        s.unique_blocks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pc-traceio-{tag}-{}.pct", std::process::id()))
    }

    #[test]
    fn export_then_info_round_trips_every_family() {
        for name in ["synthetic", "oltp", "cello96"] {
            let path = temp(name);
            let workload = Workload::parse(name).unwrap().with_requests(600);
            let written = export(&workload, 9, &path).unwrap();
            assert_eq!(written, 600, "{name}");

            let trace = pc_tracefile::read_trace(&path).unwrap();
            let direct: Vec<_> = workload.stream(9).collect();
            assert_eq!(trace.records(), &direct[..], "{name}: file != stream");

            let text = info(&path).unwrap();
            assert!(text.contains("records=600"), "{name}: {text}");
            assert!(
                text.contains(&format!("disks={}", workload.disk_count())),
                "{name}: {text}"
            );
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn info_refuses_a_damaged_file() {
        let path = temp("damaged");
        let workload = Workload::parse("synthetic").unwrap().with_requests(50);
        export(&workload, 1, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = info(&path).expect_err("bit flip must not pass");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
