//! `repro bench` — wall-clock throughput of the simulation hot path.
//!
//! Runs a fixed matrix of replacement policies over the two standard
//! workloads and reports each run's wall time and request throughput,
//! taken from the simulator's own [`pc_sim::RunTiming`] self-timing.
//! Rows run serially (never through the sweep executor) so the numbers
//! measure the single-threaded hot path, not scheduling luck.

use pc_sim::{run_replacement, PolicySpec, SimConfig};
use pc_units::Joules;

use crate::{Params, Table, TraceKind};

/// One cell of the benchmark matrix.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Replacement policy name, as reported by the simulator.
    pub policy: String,
    /// Workload name (`oltp` / `cello96`).
    pub workload: String,
    /// Requests simulated.
    pub requests: u64,
    /// Wall time of the `run()` call in milliseconds.
    pub wall_ms: f64,
    /// Simulated requests per wall-clock second.
    pub req_per_sec: f64,
}

/// The fixed policy column of the matrix: the cheap baseline, the
/// paper's online policy, and the offline policy (the heaviest per
/// request, exercising the re-pricing path).
fn policies(params: &Params, cfg: &SimConfig) -> Vec<(&'static str, PolicySpec)> {
    vec![
        ("lru", PolicySpec::Lru),
        ("pa-lru", params.pa_policy(&cfg.power_model())),
        (
            "opg",
            PolicySpec::Opg {
                epsilon: Joules::ZERO,
            },
        ),
    ]
}

/// Runs the benchmark matrix and returns its rows.
#[must_use]
pub fn run(params: &Params) -> Vec<BenchRow> {
    let cfg = SimConfig::default();
    let mut rows = Vec::new();
    for kind in [TraceKind::Oltp, TraceKind::Cello] {
        let trace = params.trace(kind);
        for (_, spec) in policies(params, &cfg) {
            let r = run_replacement(&trace, &spec, &cfg);
            rows.push(BenchRow {
                policy: r.policy.clone(),
                workload: kind.name().to_owned(),
                requests: r.requests,
                wall_ms: r.timing.wall_ms(),
                req_per_sec: r.timing.req_per_sec,
            });
        }
    }
    rows
}

/// Aggregate throughput per policy across every workload: total requests
/// over total wall time, in first-appearance order. This is the
/// perf-trajectory number tracked release over release.
#[must_use]
pub fn aggregate(rows: &[BenchRow]) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut requests: Vec<u64> = Vec::new();
    let mut wall_ms: Vec<f64> = Vec::new();
    for row in rows {
        let i = match order.iter().position(|p| *p == row.policy) {
            Some(i) => i,
            None => {
                order.push(row.policy.clone());
                requests.push(0);
                wall_ms.push(0.0);
                order.len() - 1
            }
        };
        requests[i] += row.requests;
        wall_ms[i] += row.wall_ms;
    }
    order
        .into_iter()
        .zip(requests.iter().zip(&wall_ms))
        .map(|(policy, (&req, &ms))| (policy, req as f64 / (ms / 1_000.0)))
        .collect()
}

/// Renders rows as the `BENCH_repro.json` document: a stable-key-order
/// JSON object so diffs between runs line up.
#[must_use]
pub fn to_json(params: &Params, rows: &[BenchRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": {:?},\n", params.scale));
    s.push_str(&format!("  \"seed\": {},\n", params.seed));
    s.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"workload\": \"{}\", \"requests\": {}, \"wall_ms\": {:.3}, \"req_per_sec\": {:.1}}}{}\n",
            row.policy,
            row.workload,
            row.requests,
            row.wall_ms,
            row.req_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"aggregate_req_per_sec\": {\n");
    let agg = aggregate(rows);
    for (i, (policy, rps)) in agg.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {:.1}{}\n",
            policy,
            rps,
            if i + 1 < agg.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Renders rows as a human-readable table for the CLI.
#[must_use]
pub fn render(rows: &[BenchRow]) -> String {
    let mut t = Table::new(["policy", "workload", "requests", "wall (ms)", "req/s"]);
    for row in rows {
        t.row([
            row.policy.clone(),
            row.workload.clone(),
            row.requests.to_string(),
            format!("{:.1}", row.wall_ms),
            format!("{:.0}", row.req_per_sec),
        ]);
    }
    let mut a = Table::new(["policy", "aggregate req/s"]);
    for (policy, rps) in aggregate(rows) {
        a.row([policy, format!("{rps:.0}")]);
    }
    format!(
        "Benchmark: simulation hot-path throughput\n\n{}\n{}",
        t.render(),
        a.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_policies_times_workloads() {
        let params = Params {
            scale: 0.02,
            ..Params::quick()
        };
        let rows = run(&params);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.requests > 0));
        assert!(rows.iter().all(|r| r.req_per_sec > 0.0));
        let json = to_json(&params, &rows);
        assert!(json.contains("\"rows\": ["));
        assert!(json.contains("\"workload\": \"cello96\""));
        assert_eq!(json.matches("\"policy\"").count(), 6);
        assert!(json.contains("\"aggregate_req_per_sec\""));
    }

    #[test]
    fn aggregate_pools_requests_over_wall_time() {
        let row = |policy: &str, requests, wall_ms| BenchRow {
            policy: policy.to_owned(),
            workload: "w".to_owned(),
            requests,
            wall_ms,
            req_per_sec: 0.0,
        };
        let agg = aggregate(&[
            row("lru", 1_000, 100.0),
            row("opg", 500, 1_000.0),
            row("lru", 3_000, 300.0),
        ]);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].0, "lru");
        assert!((agg[0].1 - 10_000.0).abs() < 1e-6, "4000 req / 0.4 s");
        assert!((agg[1].1 - 500.0).abs() < 1e-6);
    }
}
