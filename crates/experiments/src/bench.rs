//! `repro bench` — wall-clock throughput of the simulation hot path.
//!
//! Runs a fixed matrix of replacement policies over the two standard
//! workloads and reports each cell's wall time and request throughput,
//! taken from the simulator's own [`pc_sim::RunTiming`] self-timing.
//! Rows run serially (never through the sweep executor) so the numbers
//! measure the single-threaded hot path, not scheduling luck.
//!
//! Each cell is measured [`DEFAULT_REPS`] times (rounds interleave the
//! whole matrix so a transient load burst cannot land on every repeat of
//! one cell) and reported as the **median** wall time plus the min-to-max
//! spread; `--check` therefore compares medians, not single samples.

use pc_sim::{run_replacement, PolicySpec, SimConfig};
use pc_units::Joules;

use crate::{Params, Table, TraceKind};

/// Default number of measurements per matrix cell.
pub const DEFAULT_REPS: usize = 3;

/// One cell of the benchmark matrix: the median of its repeats.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Replacement policy name, as reported by the simulator.
    pub policy: String,
    /// Workload name (`oltp` / `cello96`).
    pub workload: String,
    /// Requests simulated (per repeat; every repeat runs the same trace).
    pub requests: u64,
    /// Median wall time of the `run()` call in milliseconds.
    pub wall_ms: f64,
    /// Simulated requests per wall-clock second, at the median wall time.
    pub req_per_sec: f64,
    /// Number of repeats the median was taken over.
    pub reps: usize,
    /// Noise band: `(max - min) / median` of the wall times, in percent.
    pub spread_pct: f64,
    /// Advisory rows are informational only: they appear in the report
    /// and the JSON document but are excluded from [`aggregate`], so
    /// `--check` never gates on them (used for the server-path row,
    /// whose throughput depends on socket scheduling, not the
    /// simulation hot path).
    pub advisory: bool,
}

/// Median of a non-empty sample set (mean of the middle two when even).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// `(max - min) / median`, as a percentage; 0 for a single sample.
fn spread_pct(sorted: &[f64], median: f64) -> f64 {
    match (sorted.first(), sorted.last()) {
        (Some(min), Some(max)) if median > 0.0 => (max - min) / median * 100.0,
        _ => 0.0,
    }
}

/// The fixed policy column of the matrix: the cheap baseline, the
/// paper's online policy, and the offline policy (the heaviest per
/// request, exercising the re-pricing path).
fn policies(params: &Params, cfg: &SimConfig) -> Vec<(&'static str, PolicySpec)> {
    vec![
        ("lru", PolicySpec::Lru),
        ("pa-lru", params.pa_policy(&cfg.power_model())),
        (
            "opg",
            PolicySpec::Opg {
                epsilon: Joules::ZERO,
            },
        ),
    ]
}

/// Runs the benchmark matrix `reps` times (`reps.max(1)`) and returns
/// one median row per cell.
///
/// A full warmup pass over the matrix runs first and is discarded:
/// first-touch page faults, cold i-cache and the allocator's initial
/// growth land there instead of inflating round 0 of the measurement
/// (medians resist one hot outlier, but at the default 3 reps a single
/// cold round still skews the spread).
#[must_use]
pub fn run(params: &Params, reps: usize) -> Vec<BenchRow> {
    let reps = reps.max(1);
    let cfg = SimConfig::default();
    for kind in [TraceKind::Oltp, TraceKind::Cello] {
        let trace = params.trace(kind);
        for (_, spec) in policies(params, &cfg) {
            let _ = run_replacement(&trace, &spec, &cfg);
        }
    }
    // Rows in matrix order; per-row wall-time samples across rounds.
    let mut rows: Vec<BenchRow> = Vec::new();
    let mut samples: Vec<Vec<f64>> = Vec::new();
    for round in 0..reps {
        let mut cell = 0;
        for kind in [TraceKind::Oltp, TraceKind::Cello] {
            let trace = params.trace(kind);
            for (_, spec) in policies(params, &cfg) {
                let r = run_replacement(&trace, &spec, &cfg);
                if round == 0 {
                    rows.push(BenchRow {
                        policy: r.policy.clone(),
                        workload: kind.name().to_owned(),
                        requests: r.requests,
                        wall_ms: 0.0,
                        req_per_sec: 0.0,
                        reps,
                        spread_pct: 0.0,
                        advisory: false,
                    });
                    samples.push(Vec::with_capacity(reps));
                }
                samples[cell].push(r.timing.wall_ms());
                cell += 1;
            }
        }
    }
    for (row, walls) in rows.iter_mut().zip(&mut samples) {
        let med = median(walls);
        row.wall_ms = med;
        row.req_per_sec = row.requests as f64 / (med / 1_000.0);
        row.spread_pct = spread_pct(walls, med);
    }
    rows
}

/// Aggregate throughput per policy across every workload: total requests
/// over total (median) wall time, in first-appearance order. This is the
/// perf-trajectory number tracked release over release, and what
/// `--check` compares against the committed baseline.
#[must_use]
pub fn aggregate(rows: &[BenchRow]) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut requests: Vec<u64> = Vec::new();
    let mut wall_ms: Vec<f64> = Vec::new();
    for row in rows.iter().filter(|r| !r.advisory) {
        let i = match order.iter().position(|p| *p == row.policy) {
            Some(i) => i,
            None => {
                order.push(row.policy.clone());
                requests.push(0);
                wall_ms.push(0.0);
                order.len() - 1
            }
        };
        requests[i] += row.requests;
        wall_ms[i] += row.wall_ms;
    }
    order
        .into_iter()
        .zip(requests.iter().zip(&wall_ms))
        .map(|(policy, (&req, &ms))| (policy, req as f64 / (ms / 1_000.0)))
        .collect()
}

/// Renders rows as the `BENCH_repro.json` document: a stable-key-order
/// JSON object so diffs between runs line up.
#[must_use]
pub fn to_json(params: &Params, rows: &[BenchRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": {:?},\n", params.scale));
    s.push_str(&format!("  \"seed\": {},\n", params.seed));
    s.push_str(&format!(
        "  \"reps\": {},\n",
        rows.first().map_or(0, |r| r.reps)
    ));
    // Every measured round ran behind a discarded warmup pass; recorded
    // so baselines taken before warmup existed are not compared as if
    // the methodology were identical.
    s.push_str("  \"warmup\": true,\n");
    s.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"workload\": \"{}\", \"requests\": {}, \"wall_ms\": {:.3}, \"req_per_sec\": {:.1}, \"spread_pct\": {:.1}{}}}{}\n",
            row.policy,
            row.workload,
            row.requests,
            row.wall_ms,
            row.req_per_sec,
            row.spread_pct,
            if row.advisory { ", \"advisory\": true" } else { "" },
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"aggregate_req_per_sec\": {\n");
    let agg = aggregate(rows);
    for (i, (policy, rps)) in agg.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {:.1}{}\n",
            policy,
            rps,
            if i + 1 < agg.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// One advisory matrix row measured on the real serving path: an
/// event-loop `pc-server` on a loopback socket driven by the load
/// generator for `secs` seconds. Advisory (`BenchRow::advisory`), so
/// it rides along in reports and `BENCH_repro.json` without ever
/// gating `--check` — end-to-end socket throughput moves with kernel
/// scheduling in ways the simulation hot path does not.
///
/// # Errors
///
/// Propagates bind/connect/load-generation failures; callers degrade
/// to the simulation-only matrix.
pub fn server_row(secs: f64) -> std::io::Result<BenchRow> {
    use pc_server::{run_tcp, EngineConfig, LoadgenConfig, Server};
    let server = Server::bind("127.0.0.1:0", EngineConfig::new(4, 4))?;
    let addr = server.local_addr()?.to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run());
    let report = run_tcp(&LoadgenConfig {
        conns: 4,
        secs,
        ..LoadgenConfig::new(addr)
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = daemon.join();
    let report = report?;
    Ok(BenchRow {
        policy: "server-event-loop".to_owned(),
        workload: "synthetic".to_owned(),
        requests: report.responses,
        wall_ms: report.elapsed.as_secs_f64() * 1e3,
        req_per_sec: report.req_per_sec(),
        reps: 1,
        spread_pct: 0.0,
        advisory: true,
    })
}

/// The payload companion to [`server_row`]: the same loopback setup
/// driven in `--payload` mode, so the advisory matrix tracks the
/// protocol-v2 data plane (WRITE_DATA ingest, slab + CRC32C serving,
/// client-side verification) alongside the metadata-only row. Also
/// advisory: payload throughput is dominated by per-byte work and
/// kernel scheduling, not the simulation hot path.
///
/// # Errors
///
/// Propagates bind/connect/load-generation failures, plus an
/// `InvalidData` error if any reply failed verification — a bench run
/// must never paper over a data-plane bug.
pub fn payload_server_row(secs: f64) -> std::io::Result<BenchRow> {
    use pc_server::{run_tcp, EngineConfig, LoadgenConfig, Server};
    let server = Server::bind("127.0.0.1:0", EngineConfig::new(4, 4))?;
    let addr = server.local_addr()?.to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run());
    let report = run_tcp(&LoadgenConfig {
        conns: 4,
        secs,
        payload: true,
        ..LoadgenConfig::new(addr)
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = daemon.join();
    let report = report?;
    if report.verify_failures > 0 || report.corrupt > 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "payload bench failed verification: {} mismatches, {} CORRUPT",
                report.verify_failures, report.corrupt
            ),
        ));
    }
    Ok(BenchRow {
        policy: "server-payload".to_owned(),
        workload: "synthetic".to_owned(),
        requests: report.responses,
        wall_ms: report.elapsed.as_secs_f64() * 1e3,
        req_per_sec: report.req_per_sec(),
        reps: 1,
        spread_pct: 0.0,
        advisory: true,
    })
}

/// The file-replay companion to [`server_row`]: a synthetic workload
/// exported to a binary `.pct` trace and replayed over the wire with
/// the loadgen's `--trace` path, so the advisory matrix tracks the
/// full trace pipeline — file decode, CRC verification, round-robin
/// dealing — alongside the generated-stream row. The run is bounded by
/// the trace length, not wall clock. Also advisory: socket throughput
/// moves with kernel scheduling, not the simulation hot path.
///
/// # Errors
///
/// Propagates export/bind/connect/load-generation failures; callers
/// degrade to the simulation-only matrix.
pub fn trace_replay_row(requests: usize) -> std::io::Result<BenchRow> {
    use pc_server::{run_tcp, EngineConfig, LoadgenConfig, Server};
    use pc_trace::Workload;
    let path = std::env::temp_dir().join(format!("pc-bench-replay-{}.pct", std::process::id()));
    let workload = Workload::parse("synthetic")
        .expect("synthetic exists")
        .with_requests(requests);
    crate::traceio::export(&workload, 42, &path)?;

    let server = Server::bind("127.0.0.1:0", EngineConfig::new(4, 4))?;
    let addr = server.local_addr()?.to_string();
    let stop = server.stop_flag();
    let daemon = std::thread::spawn(move || server.run());
    let report = run_tcp(&LoadgenConfig {
        conns: 4,
        // The finite trace ends the run; the deadline is a backstop.
        secs: 60.0,
        trace: Some(path.clone()),
        ..LoadgenConfig::new(addr)
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = daemon.join();
    let _ = std::fs::remove_file(&path);
    let report = report?;
    Ok(BenchRow {
        policy: "server-trace-replay".to_owned(),
        workload: "synthetic.pct".to_owned(),
        requests: report.responses,
        wall_ms: report.elapsed.as_secs_f64() * 1e3,
        req_per_sec: report.req_per_sec(),
        reps: 1,
        spread_pct: 0.0,
        advisory: true,
    })
}

/// The committed-corpus companion to [`trace_replay_row`]: replays the
/// canonical captured fixture (`tests/data/corpus.pct`, recorded from a
/// live `pc-server --capture` run) over the wire, `reps` times, and
/// reports the median with its spread. Unlike the synthetic replay row
/// this one is **not** advisory: the fixture is fixed bytes forever, so
/// the row is comparable run over run and earns a place in the gated
/// aggregate — the spread-aware per-row check gives it the wide band a
/// socket-path row needs.
///
/// # Errors
///
/// Propagates open/bind/connect/load-generation failures — including a
/// missing fixture. Callers must surface the error: a silently absent
/// corpus row would read as a passing gate.
pub fn corpus_replay_row(path: &std::path::Path, reps: usize) -> std::io::Result<BenchRow> {
    use pc_server::{run_tcp, EngineConfig, LoadgenConfig, Server};
    if !path.is_file() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("corpus fixture missing: {}", path.display()),
        ));
    }
    let reps = reps.max(1);
    let mut walls: Vec<f64> = Vec::with_capacity(reps);
    let mut requests = 0u64;
    for _ in 0..reps {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(4, 4))?;
        let addr = server.local_addr()?.to_string();
        let stop = server.stop_flag();
        let daemon = std::thread::spawn(move || server.run());
        let report = run_tcp(&LoadgenConfig {
            conns: 4,
            // The finite corpus ends the run; the deadline is a backstop.
            secs: 60.0,
            trace: Some(path.to_path_buf()),
            ..LoadgenConfig::new(addr)
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = daemon.join();
        let report = report?;
        requests = report.responses;
        walls.push(report.elapsed.as_secs_f64() * 1e3);
    }
    let med = median(&mut walls);
    Ok(BenchRow {
        policy: "server-trace-replay-corpus".to_owned(),
        workload: "corpus.pct".to_owned(),
        requests,
        wall_ms: med,
        req_per_sec: requests as f64 / (med / 1_000.0),
        reps,
        spread_pct: spread_pct(&walls, med),
        advisory: false,
    })
}

/// Two advisory rows pitting the zero-copy ingest path against the
/// materializing one on the same exported `.pct` file: `trace-ingest-mmap`
/// is `MappedTrace::open` plus one full verified stream of the records
/// (what `run_replacement_stream` consumes); `trace-ingest-read` is
/// `read_trace` materializing the whole file into a `Trace`. Both are
/// advisory — ingest throughput tracks page-cache and allocator
/// behaviour, not the simulation hot path — but the pair makes the
/// mmap path's advantage (or any regression of it) visible in every
/// bench report.
///
/// # Errors
///
/// Propagates export/open/decode failures; callers degrade to the
/// simulation-only matrix.
pub fn trace_ingest_rows(requests: usize) -> std::io::Result<Vec<BenchRow>> {
    use pc_trace::Workload;
    use pc_tracefile::MappedTrace;
    let path = std::env::temp_dir().join(format!("pc-bench-ingest-{}.pct", std::process::id()));
    let workload = Workload::parse("cello96")
        .expect("cello96 exists")
        .with_requests(requests);
    crate::traceio::export(&workload, 42, &path)?;

    let row = |policy: &str, requests: u64, wall: std::time::Duration| BenchRow {
        policy: policy.to_owned(),
        workload: "cello96.pct".to_owned(),
        requests,
        wall_ms: wall.as_secs_f64() * 1e3,
        req_per_sec: requests as f64 / wall.as_secs_f64(),
        reps: 1,
        spread_pct: 0.0,
        advisory: true,
    };

    // Zero-copy path: map, then stream every record once (each chunk's
    // CRC verifies on the way through — the full safety story, priced in).
    let start = std::time::Instant::now();
    let map = MappedTrace::open(&path)?;
    let mut streamed: u64 = 0;
    for record in map.records() {
        record?;
        streamed += 1;
    }
    let mmap_row = row("trace-ingest-mmap", streamed, start.elapsed());

    // Materializing path: decode the whole file into an owned `Trace`.
    let start = std::time::Instant::now();
    let trace = pc_tracefile::read_trace(&path)?;
    let read_row = row("trace-ingest-read", trace.len() as u64, start.elapsed());

    let _ = std::fs::remove_file(&path);
    Ok(vec![mmap_row, read_row])
}

/// Relative tolerance for `repro bench --check`: a policy's aggregate
/// throughput may fall at most this far below the committed baseline
/// before the check fails.
pub const CHECK_TOLERANCE: f64 = 0.15;

/// Parses a committed `BENCH_repro.json`: the recorded scale and the
/// `aggregate_req_per_sec` entries in document order. Returns `None`
/// if the document lacks either.
#[must_use]
pub fn parse_committed(json: &str) -> Option<(f64, Vec<(String, f64)>)> {
    let scale_at = json.find("\"scale\":")? + "\"scale\":".len();
    let scale: f64 = json[scale_at..]
        .trim_start()
        .split(|c: char| c == ',' || c.is_whitespace())
        .next()?
        .parse()
        .ok()?;
    let at = json.find("\"aggregate_req_per_sec\"")?;
    let rest = &json[at..];
    let body = &rest[rest.find('{')? + 1..rest.find('}')?];
    let mut entries = Vec::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        // `"policy": 1234.5` — split on the LAST colon: policy names
        // may contain commas (`opg(practical,eps=0)`) but values never
        // contain colons.
        let (key, value) = line.rsplit_once(':')?;
        let policy = key.trim().trim_matches('"').to_owned();
        entries.push((policy, value.trim().parse().ok()?));
    }
    if entries.is_empty() {
        None
    } else {
        Some((scale, entries))
    }
}

/// One row of a committed `BENCH_repro.json`, as much of it as the
/// per-row gate needs: identity, the median throughput, and the noise
/// band recorded with it.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedRow {
    /// Policy name (the row key, together with `workload`).
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Committed median throughput, requests per second.
    pub req_per_sec: f64,
    /// Noise band recorded at commit time: `(max - min) / median`, %.
    pub spread_pct: f64,
    /// Advisory rows are reported but never gate.
    pub advisory: bool,
}

/// Extracts one `"key": value` scalar from a single JSON row line.
fn row_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
    let rest = line[at..].trim_start();
    // Quoted values end at the closing quote (policy names may contain
    // commas); bare scalars end at the next separator.
    if let Some(quoted) = rest.strip_prefix('"') {
        return Some(&quoted[..quoted.find('"')?]);
    }
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses the `rows` array of a committed `BENCH_repro.json`. Returns
/// `None` when the document has no parseable rows — older baselines
/// predate per-row data, and the caller falls back to the aggregate
/// check.
#[must_use]
pub fn parse_committed_rows(json: &str) -> Option<Vec<CommittedRow>> {
    let at = json.find("\"rows\":")?;
    let body = &json[at..json.find("],")? + 1];
    let mut rows = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        rows.push(CommittedRow {
            policy: row_field(line, "policy")?.to_owned(),
            workload: row_field(line, "workload")?.to_owned(),
            req_per_sec: row_field(line, "req_per_sec")?.parse().ok()?,
            spread_pct: row_field(line, "spread_pct")?.parse().ok()?,
            advisory: row_field(line, "advisory") == Some("true"),
        });
    }
    if rows.is_empty() {
        None
    } else {
        Some(rows)
    }
}

/// The per-row regression gate: every non-advisory committed row must
/// be present in the fresh run and within its own noise-derived
/// tolerance — a row fails only when its throughput falls more than
/// `max(CHECK_TOLERANCE, 3 × committed spread)` below the committed
/// median. Rows whose committed spread is wide therefore get the wide
/// band they demonstrably need, while tight rows gate tight; advisory
/// rows are listed for trend-reading but never fail the check.
///
/// # Errors
///
/// Returns `Err(report)` when any gated row regressed past its band or
/// went missing; the report names each offender and its band.
pub fn check_rows(fresh: &[BenchRow], committed: &[CommittedRow]) -> Result<String, String> {
    let mut report = String::from("bench check (per-row req/s, band = max(15%, 3x spread)):\n");
    let mut failures = Vec::new();
    for base in committed {
        let key = format!("{}/{}", base.policy, base.workload);
        let fresh_row = fresh
            .iter()
            .find(|r| r.policy == base.policy && r.workload == base.workload);
        if base.advisory {
            if let Some(now) = fresh_row {
                report.push_str(&format!(
                    "  {key:<40} {:>12.0} -> {:>12.0}  ({:+.1}%) [advisory]\n",
                    base.req_per_sec,
                    now.req_per_sec,
                    (now.req_per_sec / base.req_per_sec - 1.0) * 100.0
                ));
            }
            continue;
        }
        let band = CHECK_TOLERANCE.max(3.0 * base.spread_pct / 100.0);
        let Some(now) = fresh_row else {
            failures.push(format!("{key}: missing from fresh run"));
            continue;
        };
        let ratio = now.req_per_sec / base.req_per_sec;
        report.push_str(&format!(
            "  {key:<40} {:>12.0} -> {:>12.0}  ({:+.1}%, band {:.0}%)\n",
            base.req_per_sec,
            now.req_per_sec,
            (ratio - 1.0) * 100.0,
            band * 100.0
        ));
        if ratio < 1.0 - band {
            failures.push(format!(
                "{key}: {:.0} req/s is {:.1}% below baseline {:.0} (band {:.0}%)",
                now.req_per_sec,
                (1.0 - ratio) * 100.0,
                base.req_per_sec,
                band * 100.0
            ));
        }
    }
    if failures.is_empty() {
        report.push_str("  ok: every gated row held its band\n");
        Ok(report)
    } else {
        for f in &failures {
            report.push_str(&format!("  FAIL {f}\n"));
        }
        Err(report)
    }
}

/// Compares fresh aggregate throughput against the committed baseline.
/// Returns the comparison report; `Err` means at least one baseline
/// policy regressed by more than `tolerance` (or went missing).
///
/// Throughput is per-request wall time, so comparisons stay meaningful
/// across `--scale` values; the report still notes the baseline's scale
/// so runs at other scales are read with appropriate suspicion.
///
/// # Errors
///
/// Returns `Err(report)` when the check fails; the report names every
/// regressed policy.
pub fn check(
    fresh: &[(String, f64)],
    committed: &[(String, f64)],
    tolerance: f64,
) -> Result<String, String> {
    let mut report = String::from("bench check (fresh vs committed aggregate req/s):\n");
    let mut failures = Vec::new();
    for (policy, base) in committed {
        let Some((_, now)) = fresh.iter().find(|(p, _)| p == policy) else {
            failures.push(format!("{policy}: missing from fresh run"));
            continue;
        };
        let ratio = now / base;
        report.push_str(&format!(
            "  {policy:<24} {base:>12.0} -> {now:>12.0}  ({:+.1}%)\n",
            (ratio - 1.0) * 100.0
        ));
        if ratio < 1.0 - tolerance {
            failures.push(format!(
                "{policy}: {now:.0} req/s is {:.1}% below baseline {base:.0}",
                (1.0 - ratio) * 100.0
            ));
        }
    }
    if failures.is_empty() {
        report.push_str(&format!(
            "  ok: no policy regressed more than {:.0}%\n",
            tolerance * 100.0
        ));
        Ok(report)
    } else {
        for f in &failures {
            report.push_str(&format!("  FAIL {f}\n"));
        }
        Err(report)
    }
}

/// Renders rows as a human-readable table for the CLI.
#[must_use]
pub fn render(rows: &[BenchRow]) -> String {
    let mut t = Table::new([
        "policy",
        "workload",
        "requests",
        "wall (ms)",
        "req/s",
        "spread",
    ]);
    for row in rows {
        t.row([
            if row.advisory {
                format!("{} *", row.policy)
            } else {
                row.policy.clone()
            },
            row.workload.clone(),
            row.requests.to_string(),
            format!("{:.1}", row.wall_ms),
            format!("{:.0}", row.req_per_sec),
            format!("{:.1}%", row.spread_pct),
        ]);
    }
    let mut a = Table::new(["policy", "aggregate req/s"]);
    for (policy, rps) in aggregate(rows) {
        a.row([policy, format!("{rps:.0}")]);
    }
    let reps = rows.first().map_or(0, |r| r.reps);
    let advisory_note = if rows.iter().any(|r| r.advisory) {
        "\n* advisory row: reported for trend-watching, excluded from the\n  aggregate and from `--check` gating.\n"
    } else {
        ""
    };
    format!(
        "Benchmark: simulation hot-path throughput (median of {reps} reps)\n\n{}\n{}{advisory_note}",
        t.render(),
        a.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_policies_times_workloads() {
        let params = Params {
            scale: 0.02,
            ..Params::quick()
        };
        let rows = run(&params, 2);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.requests > 0));
        assert!(rows.iter().all(|r| r.req_per_sec > 0.0));
        assert!(rows.iter().all(|r| r.reps == 2));
        assert!(rows.iter().all(|r| r.spread_pct >= 0.0));
        let json = to_json(&params, &rows);
        assert!(json.contains("\"rows\": ["));
        assert!(json.contains("\"reps\": 2"));
        assert!(json.contains("\"warmup\": true"));
        assert!(json.contains("\"workload\": \"cello96\""));
        assert_eq!(json.matches("\"policy\"").count(), 6);
        assert_eq!(json.matches("\"spread_pct\"").count(), 6);
        assert!(json.contains("\"aggregate_req_per_sec\""));
    }

    #[test]
    fn reps_are_clamped_to_at_least_one() {
        let params = Params {
            scale: 0.02,
            ..Params::quick()
        };
        let rows = run(&params, 0);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.reps == 1));
        // A single sample has no spread.
        assert!(rows.iter().all(|r| r.spread_pct == 0.0));
    }

    #[test]
    fn median_and_spread_summarize_samples() {
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [9.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        // Sorted samples 1..9 around median 3: (9 - 1) / 3.
        let mut s = [9.0, 1.0, 3.0];
        let m = median(&mut s);
        let pct = spread_pct(&s, m);
        assert!((pct - 800.0 / 3.0).abs() < 1e-9);
        assert_eq!(spread_pct(&[5.0], 5.0), 0.0);
        assert_eq!(spread_pct(&[], 0.0), 0.0);
    }

    #[test]
    fn committed_json_roundtrips_through_the_parser() {
        let params = Params {
            scale: 0.02,
            ..Params::quick()
        };
        let rows = run(&params, 1);
        let json = to_json(&params, &rows);
        let (scale, committed) = parse_committed(&json).expect("own JSON must parse");
        assert!((scale - 0.02).abs() < 1e-12);
        let agg = aggregate(&rows);
        assert_eq!(committed.len(), agg.len());
        for ((pc, vc), (pa, va)) in committed.iter().zip(&agg) {
            assert_eq!(pc, pa);
            // to_json rounds to one decimal.
            assert!((vc - va).abs() <= 0.05 + 1e-9, "{pc}: {vc} vs {va}");
        }
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_beyond_it() {
        let base = vec![("lru".to_owned(), 1_000.0), ("opg".to_owned(), 100.0)];
        let same = check(&base, &base, CHECK_TOLERANCE).expect("identical must pass");
        assert!(same.contains("ok:"));
        // 10% down: within the 15% band.
        let slower = vec![("lru".to_owned(), 900.0), ("opg".to_owned(), 100.0)];
        assert!(check(&slower, &base, CHECK_TOLERANCE).is_ok());
        // 20% down on one policy: fails and names it.
        let bad = vec![("lru".to_owned(), 800.0), ("opg".to_owned(), 100.0)];
        let report = check(&bad, &base, CHECK_TOLERANCE).expect_err("regression must fail");
        assert!(report.contains("FAIL lru"));
        // A baseline policy missing from the fresh run also fails.
        let missing = vec![("lru".to_owned(), 1_000.0)];
        assert!(check(&missing, &base, CHECK_TOLERANCE).is_err());
        // Faster is always fine.
        let faster = vec![("lru".to_owned(), 2_000.0), ("opg".to_owned(), 200.0)];
        assert!(check(&faster, &base, CHECK_TOLERANCE).is_ok());
    }

    #[test]
    fn committed_rows_roundtrip_and_gate_spread_aware() {
        let params = Params {
            scale: 0.02,
            ..Params::quick()
        };
        let rows = run(&params, 1);
        let json = to_json(&params, &rows);
        let committed = parse_committed_rows(&json).expect("own JSON must parse");
        assert_eq!(committed.len(), rows.len());
        for (c, r) in committed.iter().zip(&rows) {
            assert_eq!(c.policy, r.policy);
            assert_eq!(c.workload, r.workload);
            assert!(!c.advisory);
        }
        // A run compared against itself always passes.
        let report = check_rows(&rows, &committed).expect("identical must pass");
        assert!(report.contains("ok: every gated row held its band"));
    }

    #[test]
    fn per_row_gate_uses_the_wider_of_floor_and_spread() {
        let base = |policy: &str, rps: f64, spread: f64, advisory: bool| CommittedRow {
            policy: policy.to_owned(),
            workload: "w".to_owned(),
            req_per_sec: rps,
            spread_pct: spread,
            advisory,
        };
        let fresh = |policy: &str, rps: f64| BenchRow {
            policy: policy.to_owned(),
            workload: "w".to_owned(),
            requests: 1,
            wall_ms: 1.0,
            req_per_sec: rps,
            reps: 1,
            spread_pct: 0.0,
            advisory: false,
        };
        // Tight row (2% spread): the 15% floor applies. 10% down passes,
        // 20% down fails.
        let tight = vec![base("lru", 1_000.0, 2.0, false)];
        assert!(check_rows(&[fresh("lru", 900.0)], &tight).is_ok());
        assert!(check_rows(&[fresh("lru", 800.0)], &tight).is_err());
        // Noisy row (10% spread): the band widens to 30%. 20% down now
        // passes, 40% down still fails.
        let noisy = vec![base("corpus", 1_000.0, 10.0, false)];
        assert!(check_rows(&[fresh("corpus", 800.0)], &noisy).is_ok());
        let report = check_rows(&[fresh("corpus", 600.0)], &noisy).expect_err("past the band");
        assert!(report.contains("FAIL corpus/w"));
        assert!(report.contains("band 30%"));
        // A gated baseline row missing from the fresh run fails…
        assert!(check_rows(&[], &tight).is_err());
        // …but an advisory row neither gates nor needs to exist.
        let advisory = vec![base("server-event-loop", 1_000.0, 0.0, true)];
        assert!(check_rows(&[fresh("server-event-loop", 1.0)], &advisory).is_ok());
        assert!(check_rows(&[], &advisory).is_ok());
    }

    #[test]
    fn parser_rejects_documents_without_aggregates() {
        assert_eq!(parse_committed("{}"), None);
        assert_eq!(parse_committed("{\"scale\": 1.0}"), None);
        assert_eq!(parse_committed("not json"), None);
    }

    #[test]
    fn aggregate_pools_requests_over_wall_time() {
        let row = |policy: &str, requests, wall_ms| BenchRow {
            policy: policy.to_owned(),
            workload: "w".to_owned(),
            requests,
            wall_ms,
            req_per_sec: 0.0,
            reps: 1,
            spread_pct: 0.0,
            advisory: false,
        };
        let agg = aggregate(&[
            row("lru", 1_000, 100.0),
            row("opg", 500, 1_000.0),
            row("lru", 3_000, 300.0),
        ]);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].0, "lru");
        assert!((agg[0].1 - 10_000.0).abs() < 1e-6, "4000 req / 0.4 s");
        assert!((agg[1].1 - 500.0).abs() < 1e-6);
    }

    #[test]
    fn advisory_rows_ride_along_without_gating_the_aggregate() {
        let mut rows = vec![BenchRow {
            policy: "lru".to_owned(),
            workload: "oltp".to_owned(),
            requests: 1_000,
            wall_ms: 100.0,
            req_per_sec: 10_000.0,
            reps: 1,
            spread_pct: 0.0,
            advisory: false,
        }];
        rows.push(BenchRow {
            policy: "server-event-loop".to_owned(),
            workload: "synthetic".to_owned(),
            requests: 5_000,
            wall_ms: 500.0,
            req_per_sec: 10_000.0,
            reps: 1,
            spread_pct: 0.0,
            advisory: true,
        });
        // The aggregate (what `--check` gates on) must not see it…
        let agg = aggregate(&rows);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].0, "lru");
        // …but the JSON document and the rendered table both must.
        let params = Params {
            scale: 0.02,
            ..Params::quick()
        };
        let json = to_json(&params, &rows);
        assert!(json.contains("\"policy\": \"server-event-loop\""));
        assert!(json.contains("\"advisory\": true"));
        assert_eq!(
            json.matches("\"advisory\"").count(),
            1,
            "only the advisory row is marked"
        );
        let table = render(&rows);
        assert!(table.contains("server-event-loop *"));
        assert!(table.contains("advisory row"));
        // And the committed-baseline parser must still find only the
        // real aggregate entries.
        let (_, committed) = parse_committed(&json).expect("parses");
        assert_eq!(committed.len(), 1);
    }
}
