//! Minimal aligned text-table formatting and experiment output.

use std::collections::HashMap;
use std::fmt::Write as _;

/// One experiment's result: the formatted text the paper-style rows are
/// printed as, plus a key→value map of headline numbers for tests and
/// EXPERIMENTS.md.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOutput {
    /// Human-readable table(s).
    pub text: String,
    /// Machine-checkable headline metrics.
    pub metrics: HashMap<String, f64>,
}

impl ExperimentOutput {
    /// Fetches a metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric was not recorded — experiment code always
    /// records what its tests read.
    #[must_use]
    pub fn metric(&self, key: &str) -> f64 {
        *self
            .metrics
            .get(key)
            .unwrap_or_else(|| panic!("metric {key} missing; have {:?}", self.metrics.keys()))
    }

    /// Records a metric.
    pub fn record(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.insert(key.into(), value);
    }
}

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer-name"));
        // Columns align: "value" header starts at the same offset as "1".
        let off = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][off..off + 1], "1");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn metrics_round_trip() {
        let mut o = ExperimentOutput::default();
        o.record("x", 1.5);
        assert_eq!(o.metric("x"), 1.5);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn missing_metric_panics() {
        let _ = ExperimentOutput::default().metric("nope");
    }
}
