//! Figure 9 — effects of the four write policies on disk energy.
//!
//! All numbers are percentage energy savings relative to write-through,
//! under Practical DPM (the paper's published panels), for exponential
//! and Pareto arrivals.

use pc_cache::WritePolicy;
use pc_sim::{run_write_policy, PolicySpec, SimConfig};
use pc_trace::{GapDistribution, SyntheticConfig};
use pc_units::SimDuration;

use crate::{sweep, ExperimentOutput, Params, Table};

/// Write ratios of panels (a1)/(b1)/(c1).
pub const WRITE_RATIOS: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Mean inter-arrival times (ms) of panels (a2)/(b2)/(c2).
pub const GAPS_MS: [u64; 9] = [10, 20, 50, 100, 200, 500, 1_000, 5_000, 10_000];

/// One sweep row: the swept parameter plus the exponential and Pareto
/// savings series.
type SweepRow<X> = (X, Vec<(&'static str, f64)>, Vec<(&'static str, f64)>);

/// The three compared policies (all measured against write-through).
fn compared() -> [(&'static str, WritePolicy); 3] {
    [
        ("wb", WritePolicy::WriteBack),
        ("wbeu", WritePolicy::Wbeu { dirty_limit: 64 }),
        ("wtdu", WritePolicy::Wtdu),
    ]
}

fn savings_for(
    base: &SyntheticConfig,
    gaps: GapDistribution,
    write_ratio: f64,
    requests: usize,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    let trace = base
        .clone()
        .with_requests(requests)
        .with_gaps(gaps)
        .with_write_ratio(write_ratio)
        .generate(seed);
    let cfg = SimConfig::default();
    let wt = run_write_policy(
        &trace,
        &PolicySpec::Lru,
        &cfg.clone().with_write_policy(WritePolicy::WriteThrough),
    );
    compared()
        .into_iter()
        .map(|(name, wp)| {
            let r = run_write_policy(&trace, &PolicySpec::Lru, &cfg.clone().with_write_policy(wp));
            (name, r.saving_over(&wt))
        })
        .collect()
}

/// Panels (a1)/(b1)/(c1): savings vs write ratio at a 250 ms mean
/// inter-arrival time. The write-ratio points are independent
/// simulations, so they fan out over the shared sweep executor.
#[must_use]
pub fn by_write_ratio(params: &Params) -> ExperimentOutput {
    let base = SyntheticConfig::default();
    let requests = params.requests(1_000_000);
    let mut out = ExperimentOutput::default();
    let mut t = Table::new([
        "write ratio",
        "wb exp",
        "wbeu exp",
        "wtdu exp",
        "wb pareto",
        "wbeu pareto",
        "wtdu pareto",
    ]);
    let rows: Vec<SweepRow<f64>> = sweep::over(params, WRITE_RATIOS.to_vec(), |&ratio| {
        let exp = savings_for(
            &base,
            GapDistribution::exponential(SimDuration::from_millis(250)),
            ratio,
            requests,
            params.seed,
        );
        let pareto = savings_for(
            &base,
            GapDistribution::pareto(SimDuration::from_millis(250)),
            ratio,
            requests,
            params.seed,
        );
        (ratio, exp, pareto)
    });
    for (ratio, exp, pareto) in rows {
        let mut row = vec![format!("{ratio:.1}")];
        for (name, s) in exp.iter().chain(pareto.iter()) {
            row.push(format!("{s:.1}%"));
            let dist = if row.len() <= 4 { "exp" } else { "pareto" };
            out.record(format!("{name}_{dist}_at_{ratio}"), *s);
        }
        t.row(row);
    }
    out.text = format!(
        "Figure 9 (a1/b1/c1): Energy savings over write-through vs write ratio\n(mean inter-arrival 250 ms, Practical DPM)\n\n{}",
        t.render()
    );
    out
}

/// Panels (a2)/(b2)/(c2): savings vs mean inter-arrival time at a 50%
/// write ratio.
#[must_use]
pub fn by_interarrival(params: &Params) -> ExperimentOutput {
    let base = SyntheticConfig::default();
    let mut out = ExperimentOutput::default();
    let mut t = Table::new([
        "mean gap",
        "wb exp",
        "wbeu exp",
        "wtdu exp",
        "wb pareto",
        "wbeu pareto",
        "wtdu pareto",
    ]);
    let rows: Vec<SweepRow<u64>> = sweep::over(params, GAPS_MS.to_vec(), |&gap_ms| {
        // Hold the *duration* of the experiment roughly constant so slow
        // arrival rates still produce long idle dynamics.
        let requests = params
            .requests(1_000_000)
            .min(params.requests((250.0 / gap_ms as f64 * 1_000_000.0) as usize))
            .max(2_000);
        let gap = SimDuration::from_millis(gap_ms);
        let exp = savings_for(
            &base,
            GapDistribution::exponential(gap),
            0.5,
            requests,
            params.seed,
        );
        let pareto = savings_for(
            &base,
            GapDistribution::pareto(gap),
            0.5,
            requests,
            params.seed,
        );
        (gap_ms, exp, pareto)
    });
    for (gap_ms, exp, pareto) in rows {
        let mut row = vec![format!("{gap_ms}ms")];
        for (name, s) in exp.iter().chain(pareto.iter()) {
            row.push(format!("{s:.1}%"));
            let dist = if row.len() <= 4 { "exp" } else { "pareto" };
            out.record(format!("{name}_{dist}_at_{gap_ms}ms"), *s);
        }
        t.row(row);
    }
    out.text = format!(
        "Figure 9 (a2/b2/c2): Energy savings over write-through vs mean inter-arrival\n(write ratio 0.5, Practical DPM)\n\n{}",
        t.render()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_write_ratio() {
        let params = Params {
            scale: 0.02,
            ..Params::quick()
        };
        let o = by_write_ratio(&params);
        // At 100% writes every deferred policy must save clearly; at 0%
        // writes the policies coincide (savings ≈ 0).
        assert!(o.metric("wb_exp_at_1") > o.metric("wb_exp_at_0") - 1.0);
        assert!(o.metric("wbeu_exp_at_1") > 10.0);
        assert!(o.metric("wtdu_exp_at_1") > 10.0);
        assert!(o.metric("wb_exp_at_0").abs() < 5.0);
        // WBEU is at least as good as plain write-back at heavy writes.
        assert!(o.metric("wbeu_exp_at_1") >= o.metric("wb_exp_at_1") - 1.0);
    }
}
