//! Ablations beyond the paper's figures: the design-choice sweeps
//! DESIGN.md §6 calls out.

use pc_cache::policy::PaLruConfig;
use pc_cache::WritePolicy;
use pc_sim::{run_replacement, run_write_policy, PolicySpec, SimConfig};
use pc_units::{Joules, SimDuration};

use crate::{sweep, ExperimentOutput, Params, Table};

/// OPG's ε threshold: the Belady ↔ pure-OPG continuum of §3.2.
/// ε = 0 is pure OPG; a huge ε rounds every penalty equal, recovering
/// Belady's tie-break (furthest next use).
///
/// The sweep runs on an OLTP variant whose hot working sets are small
/// enough that every resident block has a future reference: with dead
/// (never-reused) blocks around, every ε picks the same free victims and
/// the knob is invisible.
#[must_use]
pub fn epsilon_sweep(params: &Params) -> ExperimentOutput {
    let trace = pc_trace::OltpConfig {
        hot_working_set: 1_200,
        ..pc_trace::OltpConfig::default()
    }
    .with_requests(params.requests(72_000))
    .generate(params.seed);
    let cfg = SimConfig::default();
    let lru = run_replacement(&trace, &PolicySpec::Lru, &cfg);
    let mut t = Table::new(["epsilon (J)", "energy vs lru", "misses"]);
    let mut out = ExperimentOutput::default();
    let eps_points = vec![0.0, 10.0, 30.0, 100.0, 300.0, 1e9];
    let reports = sweep::over(params, eps_points.clone(), |&eps| {
        run_replacement(
            &trace,
            &PolicySpec::Opg {
                epsilon: Joules::new(eps),
            },
            &cfg,
        )
    });
    for (eps, r) in eps_points.into_iter().zip(reports) {
        let ratio = r.energy_ratio(&lru);
        t.row([
            if eps >= 1e9 {
                "inf (Belady)".to_owned()
            } else {
                format!("{eps}")
            },
            format!("{ratio:.3}"),
            r.cache.misses().to_string(),
        ]);
        out.record(format!("ratio_at_{eps}"), ratio);
        out.record(format!("misses_at_{eps}"), r.cache.misses() as f64);
    }
    out.text = format!(
        "Ablation: OPG epsilon threshold (OLTP, Practical DPM, energy normalized to LRU)\n\n{}",
        t.render()
    );
    out
}

/// PA-LRU's classifier parameters: epoch length, quantile p, cold
/// threshold α. The paper fixes (15 min, 0.8, 0.5); this sweep shows the
/// sensitivity.
#[must_use]
pub fn pa_sensitivity(params: &Params) -> ExperimentOutput {
    let trace = params.oltp_trace();
    let cfg = SimConfig::default();
    let lru = run_replacement(&trace, &PolicySpec::Lru, &cfg);
    let base = PaLruConfig {
        epoch: params.pa_epoch(),
        ..PaLruConfig::for_power_model(&cfg.power_model())
    };
    let mut t = Table::new(["variant", "saving over lru"]);
    let mut out = ExperimentOutput::default();
    let variants: Vec<(&'static str, PaLruConfig)> = vec![
        ("paper (epoch=E, p=0.8, a=0.5)", base.clone()),
        (
            "epoch=E/4",
            PaLruConfig {
                epoch: base.epoch / 4,
                ..base.clone()
            },
        ),
        (
            "epoch=4E",
            PaLruConfig {
                epoch: base.epoch * 4,
                ..base.clone()
            },
        ),
        (
            "p=0.5",
            PaLruConfig {
                quantile: 0.5,
                ..base.clone()
            },
        ),
        (
            "p=0.95",
            PaLruConfig {
                quantile: 0.95,
                ..base.clone()
            },
        ),
        (
            "a=0.2",
            PaLruConfig {
                cold_threshold: 0.2,
                ..base.clone()
            },
        ),
        (
            "a=0.9",
            PaLruConfig {
                cold_threshold: 0.9,
                ..base.clone()
            },
        ),
        (
            "T=0 (intervals ignored)",
            PaLruConfig {
                interval_threshold: SimDuration::ZERO,
                ..base
            },
        ),
    ];
    let savings = sweep::over(params, variants, |(label, config)| {
        let r = run_replacement(&trace, &PolicySpec::PaLruWith(config.clone()), &cfg);
        (*label, r.saving_over(&lru))
    });
    for (label, saving) in savings {
        t.row([label.to_owned(), format!("{saving:.1}%")]);
        out.record(label.to_owned(), saving);
    }
    out.text = format!(
        "Ablation: PA-LRU classifier sensitivity (OLTP, Practical DPM)\n\n{}",
        t.render()
    );
    out
}

/// Multi-speed (6-mode) versus classic 2-mode disks, under LRU and
/// PA-LRU: how much of the win needs the DRPM-style hardware?
#[must_use]
pub fn mode_count(params: &Params) -> ExperimentOutput {
    let trace = params.oltp_trace();
    let mut t = Table::new(["disks", "policy", "energy (J)", "saving vs lru"]);
    let mut out = ExperimentOutput::default();
    let configs = vec![
        ("6-mode", SimConfig::default()),
        ("2-mode", SimConfig::default().with_two_mode_disks()),
    ];
    let pairs = sweep::over(params, configs, |(label, cfg)| {
        let lru = run_replacement(&trace, &PolicySpec::Lru, cfg);
        let pa = run_replacement(&trace, &params.pa_policy(&cfg.power_model()), cfg);
        (*label, lru, pa)
    });
    for (label, lru, pa) in pairs {
        for (policy, r) in [("lru", &lru), ("pa-lru", &pa)] {
            t.row([
                label.to_owned(),
                policy.to_owned(),
                format!("{:.0}", r.total_energy().as_joules()),
                format!("{:.1}%", r.saving_over(&lru)),
            ]);
            out.record(
                format!("{label}_{policy}_energy"),
                r.total_energy().as_joules(),
            );
        }
        out.record(format!("{label}_pa_saving"), pa.saving_over(&lru));
    }
    out.text = format!(
        "Ablation: multi-speed vs 2-mode disks (OLTP, Practical DPM)\n\n{}",
        t.render()
    );
    out
}

/// The policy zoo: ARC, MQ, LIRS and 2Q with and without the PA wrapper
/// (the paper's §4 composability claim), against LRU and PA-LRU.
#[must_use]
pub fn policy_zoo(params: &Params) -> ExperimentOutput {
    let trace = params.oltp_trace();
    let cfg = SimConfig::default();
    let power = cfg.power_model();
    let pa_config = PaLruConfig {
        epoch: params.pa_epoch(),
        ..PaLruConfig::for_power_model(&power)
    };
    let mut t = Table::new(["policy", "energy vs lru", "hit ratio", "mean response"]);
    let mut out = ExperimentOutput::default();
    let specs = vec![
        PolicySpec::Lru,
        params.pa_policy(&power),
        PolicySpec::Arc,
        PolicySpec::PaArc(pa_config.clone()),
        PolicySpec::Mq,
        PolicySpec::PaMq(pa_config.clone()),
        PolicySpec::Lirs,
        PolicySpec::PaLirs(pa_config.clone()),
        PolicySpec::TwoQ,
        PolicySpec::PaTwoQ(pa_config),
    ];
    let reports = sweep::over(params, specs, |spec| run_replacement(&trace, spec, &cfg));
    // The first spec is plain LRU: it doubles as the normalization baseline.
    let lru = reports[0].clone();
    for r in reports {
        let ratio = r.energy_ratio(&lru);
        t.row([
            r.policy.clone(),
            format!("{ratio:.3}"),
            format!("{:.1}%", r.cache.hit_ratio() * 100.0),
            r.mean_response().to_string(),
        ]);
        out.record(format!("{}_ratio", r.policy), ratio);
        out.record(format!("{}_hit", r.policy), r.cache.hit_ratio());
    }
    out.text = format!(
        "Ablation: the PA wrapper around alternative policies (OLTP, Practical DPM, energy normalized to LRU)\n\n{}",
        t.render()
    );
    out
}

/// The §2.1 design alternative: multi-speed disks that *serve at any
/// rotational speed* (Carrera & Bianchini's option 1) versus the paper's
/// choice of serving only at full speed (option 2). Option 1 never pays
/// a spin-up wait but stretches rotation-bound service.
#[must_use]
pub fn serve_at_speed(params: &Params) -> ExperimentOutput {
    let trace = params.oltp_trace();
    let mut t = Table::new([
        "multi-speed option",
        "policy",
        "energy (J)",
        "mean response",
        "p99",
        "spin-ups",
    ]);
    let mut out = ExperimentOutput::default();
    let mut points = Vec::new();
    for (label, cfg) in [
        ("option2 (full-speed only)", SimConfig::default()),
        (
            "option1 (serve at speed)",
            SimConfig::default().with_serve_at_speed(),
        ),
    ] {
        let power = cfg.power_model();
        for (name, spec) in [
            ("lru", PolicySpec::Lru),
            ("pa-lru", params.pa_policy(&power)),
        ] {
            points.push((label, name, spec, cfg.clone()));
        }
    }
    let reports = sweep::over(params, points, |(label, name, spec, cfg)| {
        (*label, *name, run_replacement(&trace, spec, cfg))
    });
    {
        for (label, name, r) in reports {
            t.row([
                label.to_owned(),
                name.to_owned(),
                format!("{:.0}", r.total_energy().as_joules()),
                r.mean_response().to_string(),
                r.response_quantile(0.99).to_string(),
                r.total_spin_ups().to_string(),
            ]);
            let key = if label.starts_with("option2") {
                "option2"
            } else {
                "option1"
            };
            out.record(format!("{key}_{name}_energy"), r.total_energy().as_joules());
            out.record(
                format!("{key}_{name}_response_s"),
                r.mean_response().as_secs_f64(),
            );
        }
    }
    out.text = format!(
        "Ablation: multi-speed option 1 (serve at speed) vs option 2 (paper) — OLTP, Practical DPM

{}",
        t.render()
    );
    out
}

/// Server-class vs laptop-class disks (the Carrera & Bianchini
/// alternative the paper's §1 discusses): laptop drives draw an order of
/// magnitude less power and spin up in ~2 s instead of ~11 s, trading
/// service speed. This compares the OLTP workload on both disk types —
/// and shows PA-LRU's edge shrinking when spin-ups are nearly free (the
/// cheap end of Figure 8).
#[must_use]
pub fn disk_type(params: &Params) -> ExperimentOutput {
    use pc_diskmodel::{DiskPowerSpec, ServiceModel};
    let trace = params.oltp_trace();
    let mut t = Table::new([
        "disk type",
        "policy",
        "energy (J)",
        "pa saving",
        "mean response",
        "p99",
    ]);
    let mut out = ExperimentOutput::default();
    let configs = vec![
        ("server (Ultrastar)", SimConfig::default()),
        ("laptop (Travelstar)", {
            let mut cfg = SimConfig::default().with_power_spec(DiskPowerSpec::travelstar_laptop());
            cfg.service = ServiceModel::travelstar_laptop();
            cfg
        }),
    ];
    let pairs = sweep::over(params, configs, |(label, cfg)| {
        let lru = run_replacement(&trace, &PolicySpec::Lru, cfg);
        let pa = run_replacement(&trace, &params.pa_policy(&cfg.power_model()), cfg);
        (*label, lru, pa)
    });
    for (label, lru, pa) in pairs {
        for (policy, r) in [("lru", &lru), ("pa-lru", &pa)] {
            t.row([
                label.to_owned(),
                policy.to_owned(),
                format!("{:.0}", r.total_energy().as_joules()),
                format!("{:.1}%", r.saving_over(&lru)),
                r.mean_response().to_string(),
                r.response_quantile(0.99).to_string(),
            ]);
        }
        let key = if label.starts_with("server") {
            "server"
        } else {
            "laptop"
        };
        out.record(format!("{key}_lru_energy"), lru.total_energy().as_joules());
        out.record(format!("{key}_pa_saving"), pa.saving_over(&lru));
        out.record(
            format!("{key}_lru_response_s"),
            lru.mean_response().as_secs_f64(),
        );
    }
    out.text = format!(
        "Ablation: server-class vs laptop-class disks (OLTP, Practical DPM)\n\n{}",
        t.render()
    );
    out
}

/// Data layout: partitioned volumes (the paper's implicit layout) versus
/// RAID-0 striping. Striping interleaves every volume across all
/// spindles, so any activity keeps every disk awake — the idle-period
/// structure both DPM and PA-LRU harvest disappears.
#[must_use]
pub fn layout(params: &Params) -> ExperimentOutput {
    use pc_trace::DataLayout;
    let base = params.oltp_trace();
    let cfg = SimConfig::default();
    let power = cfg.power_model();
    let mut t = Table::new(["layout", "policy", "energy (J)", "pa saving", "spin-ups"]);
    let mut out = ExperimentOutput::default();
    let layouts = vec![
        DataLayout::Partitioned,
        DataLayout::Striped { stripe_blocks: 64 },
    ];
    let pairs = sweep::over(params, layouts, |&lay| {
        let trace = lay.remap(&base, 1 << 22);
        let lru = run_replacement(&trace, &PolicySpec::Lru, &cfg);
        let pa = run_replacement(&trace, &params.pa_policy(&power), &cfg);
        (lay, lru, pa)
    });
    for (lay, lru, pa) in pairs {
        for (name, r) in [("lru", &lru), ("pa-lru", &pa)] {
            t.row([
                lay.name().to_owned(),
                name.to_owned(),
                format!("{:.0}", r.total_energy().as_joules()),
                format!("{:.1}%", r.saving_over(&lru)),
                r.total_spin_ups().to_string(),
            ]);
        }
        out.record(
            format!("{}_lru_energy", lay.name()),
            lru.total_energy().as_joules(),
        );
        out.record(format!("{}_pa_saving", lay.name()), pa.saving_over(&lru));
    }
    out.text = format!(
        "Ablation: data layout — partitioned volumes vs RAID-0 striping (OLTP, Practical DPM)\n\n{}",
        t.render()
    );
    out
}

/// Composing the paper's two contributions: the §5 replacement policies
/// and the §6 write policies are evaluated separately in the paper (all
/// Figure-9 runs use LRU). This sweep crosses them on a write-heavy
/// OLTP-like workload: do PA-LRU's and WBEU's savings stack?
#[must_use]
pub fn combo(params: &Params) -> ExperimentOutput {
    let trace = pc_trace::OltpConfig {
        write_fraction: 0.5,
        ..pc_trace::OltpConfig::default()
    }
    .with_requests(params.requests(72_000))
    .generate(params.seed);
    let cfg = SimConfig::default();
    let power = cfg.power_model();
    let baseline = run_write_policy(
        &trace,
        &PolicySpec::Lru,
        &cfg.clone().with_write_policy(WritePolicy::WriteThrough),
    );
    let mut t = Table::new([
        "replacement",
        "write policy",
        "saving over lru+wt",
        "mean response",
    ]);
    let mut out = ExperimentOutput::default();
    let mut points = Vec::new();
    for (rname, rspec) in [
        ("lru", PolicySpec::Lru),
        ("pa-lru", params.pa_policy(&power)),
    ] {
        for wp in [
            WritePolicy::WriteThrough,
            WritePolicy::WriteBack,
            WritePolicy::Wbeu { dirty_limit: 64 },
            WritePolicy::Wtdu,
        ] {
            points.push((rname, rspec.clone(), wp));
        }
    }
    let reports = sweep::over(params, points, |(rname, rspec, wp)| {
        let r = run_write_policy(&trace, rspec, &cfg.clone().with_write_policy(*wp));
        (*rname, *wp, r)
    });
    for (rname, wp, r) in reports {
        let saving = r.saving_over(&baseline);
        t.row([
            rname.to_owned(),
            wp.name().to_owned(),
            format!("{saving:.1}%"),
            r.mean_response().to_string(),
        ]);
        out.record(format!("{rname}_{}", wp.name()), saving);
    }
    out.text = format!(
        "Ablation: composing replacement and write policies (OLTP-like at 50% writes,\nPractical DPM, savings relative to LRU + write-through)\n\n{}",
        t.render()
    );
    out
}

/// Disk queue disciplines (the DiskSim feature layer): FCFS vs SSTF vs
/// C-SCAN on a bursty raw request stream — seek-time energy and mean/p99
/// response under queueing pressure.
#[must_use]
pub fn scheduler(params: &Params) -> ExperimentOutput {
    use pc_diskmodel::ServiceRequest;
    use pc_disksim::{schedule_disk, DpmPolicy, QueueDiscipline};
    use pc_units::{DiskId, SimTime};

    // A bursty stream over 4 disks: Pareto arrivals at a 5 ms mean build
    // deep queues, which is where disciplines differ.
    let trace = pc_trace::SyntheticConfig {
        reuse_probability: 0.0,
        seq_probability: 0.0,
        local_probability: 0.0,
        ..pc_trace::SyntheticConfig::default()
    }
    .with_disks(4)
    .with_requests(params.requests(100_000))
    .with_gaps(pc_trace::GapDistribution::pareto(SimDuration::from_millis(
        5,
    )))
    .generate(params.seed);

    let cfg = SimConfig::default();
    let power = cfg.power_model();
    let mut per_disk: Vec<Vec<(SimTime, ServiceRequest)>> = vec![Vec::new(); 4];
    let mut horizon = SimTime::ZERO;
    for r in &trace {
        per_disk[r.block.disk().as_usize()].push((r.time, ServiceRequest::single(r.block.block())));
        horizon = horizon.max(r.time);
    }

    let mut t = Table::new([
        "discipline",
        "mean response",
        "p99 response",
        "seek+xfer time",
        "energy (J)",
    ]);
    let mut out = ExperimentOutput::default();
    let disciplines = vec![
        QueueDiscipline::Fcfs,
        QueueDiscipline::Sstf,
        QueueDiscipline::Cscan,
    ];
    let rows = sweep::over(params, disciplines, |&discipline| {
        let mut responses =
            pc_cache::IntervalHistogram::geometric(SimDuration::from_micros(100), 24);
        let mut total_response = 0.0;
        let mut count = 0u64;
        let mut service_time = SimDuration::ZERO;
        let mut energy = 0.0;
        for (d, requests) in per_disk.iter().enumerate() {
            let (outcomes, report) = schedule_disk(
                DiskId::new(d as u32),
                requests,
                power.clone(),
                cfg.service.clone(),
                DpmPolicy::Practical,
                discipline,
                horizon,
            );
            for o in outcomes {
                responses.record(o.response);
                total_response += o.response.as_secs_f64();
                count += 1;
            }
            service_time += report.service_time;
            energy += report.total_energy().as_joules();
        }
        let mean = total_response / count.max(1) as f64;
        (
            discipline,
            mean,
            responses.quantile(0.99),
            service_time,
            energy,
        )
    });
    for (discipline, mean, p99, service_time, energy) in rows {
        t.row([
            discipline.name().to_owned(),
            format!("{:.1}ms", mean * 1_000.0),
            p99.to_string(),
            service_time.to_string(),
            format!("{energy:.0}"),
        ]);
        out.record(format!("{}_mean_s", discipline.name()), mean);
        out.record(
            format!("{}_service_s", discipline.name()),
            service_time.as_secs_f64(),
        );
        out.record(format!("{}_energy", discipline.name()), energy);
    }
    out.text = format!(
        "Ablation: disk queue disciplines on a bursty raw stream (4 disks, Pareto 5 ms)\n\n{}",
        t.render()
    );
    out
}

/// Sequential prefetching (the paper's stated future work): read-ahead
/// depth sweep on a sequential-heavy workload, under LRU + Practical DPM.
/// Prefetches ride an already-active disk, converting future spin-ups
/// into cheap transfers — up to the point where speculation wastes
/// service energy and cache space.
#[must_use]
pub fn prefetch_depth(params: &Params) -> ExperimentOutput {
    let trace = pc_trace::SyntheticConfig {
        seq_probability: 0.6,
        local_probability: 0.2,
        reuse_probability: 0.3,
        ..pc_trace::SyntheticConfig::default()
    }
    .with_requests(params.requests(200_000))
    .with_write_ratio(0.2)
    .generate(params.seed);
    let mut t = Table::new([
        "depth",
        "energy (J)",
        "hit ratio",
        "mean response",
        "prefetches",
    ]);
    let mut out = ExperimentOutput::default();
    let depths = vec![0u64, 1, 2, 4, 8, 16];
    let reports = sweep::over(params, depths.clone(), |&depth| {
        let cfg = SimConfig::default().with_prefetch_depth(depth);
        run_replacement(&trace, &PolicySpec::Lru, &cfg)
    });
    for (depth, r) in depths.into_iter().zip(reports) {
        t.row([
            depth.to_string(),
            format!("{:.0}", r.total_energy().as_joules()),
            format!("{:.1}%", r.cache.hit_ratio() * 100.0),
            r.mean_response().to_string(),
            r.cache.prefetch_reads.to_string(),
        ]);
        out.record(format!("energy_at_{depth}"), r.total_energy().as_joules());
        out.record(format!("hit_at_{depth}"), r.cache.hit_ratio());
        out.record(
            format!("response_at_{depth}"),
            r.mean_response().as_secs_f64(),
        );
    }
    out.text = format!(
        "Ablation: sequential prefetch depth (sequential-heavy synthetic, LRU, Practical DPM)\n\n{}",
        t.render()
    );
    out
}

/// WBEU's forced-flush dirty limit.
#[must_use]
pub fn wbeu_dirty_limit(params: &Params) -> ExperimentOutput {
    let trace = pc_trace::SyntheticConfig::default()
        .with_requests(params.requests(200_000))
        .with_write_ratio(0.8)
        .generate(params.seed);
    let cfg = SimConfig::default();
    let wt = run_write_policy(
        &trace,
        &PolicySpec::Lru,
        &cfg.clone().with_write_policy(WritePolicy::WriteThrough),
    );
    let mut t = Table::new(["dirty limit", "saving over write-through"]);
    let mut out = ExperimentOutput::default();
    let limits = vec![4usize, 16, 64, 256, 1_024, 4_096];
    let reports = sweep::over(params, limits.clone(), |&limit| {
        run_write_policy(
            &trace,
            &PolicySpec::Lru,
            &cfg.clone()
                .with_write_policy(WritePolicy::Wbeu { dirty_limit: limit }),
        )
    });
    for (limit, r) in limits.into_iter().zip(reports) {
        let saving = r.saving_over(&wt);
        t.row([limit.to_string(), format!("{saving:.1}%")]);
        out.record(format!("saving_at_{limit}"), saving);
    }
    out.text = format!(
        "Ablation: WBEU forced-flush dirty limit (synthetic, 80% writes)\n\n{}",
        t.render()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params {
            scale: 0.2,
            ..Params::quick()
        }
    }

    #[test]
    fn epsilon_interpolates_between_opg_and_belady() {
        let o = epsilon_sweep(&params());
        // Misses grow monotonically toward pure OPG as ε shrinks (more
        // energy-motivated deviations from MIN).
        assert!(o.metric("misses_at_0") >= o.metric("misses_at_1000000000"));
        // Energy at pure OPG is no worse than at the Belady end.
        assert!(o.metric("ratio_at_0") <= o.metric("ratio_at_1000000000") + 0.01);
    }

    #[test]
    fn ignoring_intervals_degrades_pa_lru() {
        let o = pa_sensitivity(&params());
        let paper = o.metric("paper (epoch=E, p=0.8, a=0.5)");
        assert!(paper > 0.0, "paper setting must save energy, got {paper}");
        // T=0 classifies every warm disk as priority, polluting LRU1.
        let t0 = o.metric("T=0 (intervals ignored)");
        assert!(
            t0 <= paper + 1.0,
            "T=0 ({t0}) must not beat the paper setting ({paper})"
        );
    }

    #[test]
    fn pa_wrapper_helps_arc_and_mq() {
        let o = policy_zoo(&params());
        assert!(o.metric("pa-arc_ratio") < o.metric("arc_ratio") + 0.005);
        assert!(o.metric("pa-mq_ratio") < o.metric("mq_ratio") + 0.005);
        assert!(o.metric("pa-lru_ratio") < 1.0);
    }

    #[test]
    fn two_mode_disks_still_benefit_from_pa() {
        let o = mode_count(&params());
        assert!(o.metric("2-mode_pa_saving") > 0.0);
        // The multi-speed hardware amplifies the policy's savings.
        assert!(
            o.metric("6-mode_lru_energy") < o.metric("2-mode_lru_energy") * 1.2,
            "sanity: energies comparable"
        );
    }

    #[test]
    fn prefetching_helps_sequential_workloads() {
        let p = Params {
            scale: 0.1,
            ..Params::quick()
        };
        let o = prefetch_depth(&p);
        assert!(o.metric("hit_at_4") > o.metric("hit_at_0") + 0.1);
        assert!(o.metric("response_at_4") < o.metric("response_at_0"));
    }

    #[test]
    fn serve_at_speed_eliminates_spin_up_latency() {
        let p = Params {
            scale: 0.35,
            ..Params::quick()
        };
        let o = serve_at_speed(&p);
        // Option 1's responses drop dramatically (no spin-up waits).
        assert!(
            o.metric("option1_lru_response_s") * 3.0 < o.metric("option2_lru_response_s"),
            "option1 {} vs option2 {}",
            o.metric("option1_lru_response_s"),
            o.metric("option2_lru_response_s")
        );
    }

    #[test]
    fn laptop_disks_trade_latency_for_an_order_of_magnitude_of_energy() {
        let p = Params {
            scale: 0.35,
            ..Params::quick()
        };
        let o = disk_type(&p);
        assert!(
            o.metric("laptop_lru_energy") * 5.0 < o.metric("server_lru_energy"),
            "laptop array must be dramatically cheaper"
        );
        // PA-LRU still helps on laptop disks (their break-even sits at
        // ~15 s, below the cacheable disks' gaps), and the laptop array's
        // short spin-ups make even LRU's responses competitive.
        assert!(o.metric("laptop_pa_saving") > 0.0);
        assert!(o.metric("laptop_lru_response_s") < o.metric("server_lru_response_s"));
    }

    #[test]
    fn striping_destroys_the_energy_headroom() {
        let p = Params {
            scale: 0.35,
            ..Params::quick()
        };
        let o = layout(&p);
        // Striping keeps every spindle busy: more total energy, and
        // PA-LRU loses (almost) all of its edge.
        assert!(o.metric("striped_lru_energy") > o.metric("partitioned_lru_energy"));
        assert!(o.metric("striped_pa_saving") < o.metric("partitioned_pa_saving"));
        assert!(o.metric("striped_pa_saving") < 2.0);
    }

    #[test]
    fn replacement_and_write_savings_compose() {
        let p = Params {
            scale: 0.35,
            ..Params::quick()
        };
        let o = combo(&p);
        // Each contribution saves on its own, and the combination beats
        // either alone.
        let pa_only = o.metric("pa-lru_write-through");
        let wbeu_only = o.metric("lru_wbeu");
        let both = o.metric("pa-lru_wbeu");
        assert!(pa_only > 0.0, "pa alone {pa_only}");
        assert!(wbeu_only > 0.0, "wbeu alone {wbeu_only}");
        assert!(
            both > pa_only.max(wbeu_only),
            "combo {both} vs {pa_only}/{wbeu_only}"
        );
    }

    #[test]
    fn reordering_disciplines_beat_fcfs_under_bursts() {
        let p = Params {
            scale: 0.1,
            ..Params::quick()
        };
        let o = scheduler(&p);
        assert!(o.metric("sstf_service_s") < o.metric("fcfs_service_s"));
        assert!(o.metric("cscan_service_s") < o.metric("fcfs_service_s"));
        assert!(o.metric("sstf_mean_s") <= o.metric("fcfs_mean_s"));
    }

    #[test]
    fn wbeu_limit_sweep_runs() {
        let p = Params {
            scale: 0.05,
            ..Params::quick()
        };
        let o = wbeu_dirty_limit(&p);
        assert!(o.metric("saving_at_64") > 0.0);
    }
}
