//! Streaming trace surgery: filter, slice, merge, and rescale `.pct`
//! files in constant memory.
//!
//! Every operator reads through [`MappedTrace`] (lazy per-chunk CRC
//! verification, no materialized `Vec`) and writes through
//! [`TraceFileWriter`] (chunked, CRC-footed, record count patched into
//! the header on finish), so surgery on a multi-GB corpus holds one
//! chunk's worth of write buffer and nothing else, and every output
//! round-trips through [`pc_tracefile::TraceReader`] validation.
//!
//! The `repro trace filter|slice|merge|rescale` subcommands are thin
//! argument parsers over these functions.

use std::io;
use std::path::Path;

use pc_trace::{IoOp, Record};
use pc_tracefile::{MappedTrace, TraceFileWriter};
use pc_units::SimTime;

/// Counters every operator reports: records examined and records kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurgeryStats {
    /// Records read from the input(s).
    pub read: u64,
    /// Records written to the output.
    pub written: u64,
}

/// Predicates for [`filter`]; unset fields match everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterSpec {
    /// Keep only records addressing this disk.
    pub disk: Option<u32>,
    /// Keep only reads or only writes.
    pub op: Option<IoOp>,
    /// Keep only records at or after this time.
    pub from: Option<SimTime>,
    /// Keep only records strictly before this time.
    pub until: Option<SimTime>,
}

impl FilterSpec {
    fn matches(&self, r: &Record) -> bool {
        self.disk.is_none_or(|d| r.block.disk().index() == d)
            && self.op.is_none_or(|op| r.op == op)
            && self.from.is_none_or(|t| r.time >= t)
            && self.until.is_none_or(|t| r.time < t)
    }
}

/// Bounds for [`slice()`]: a record range, a time range, or both
/// (intersected). Unset fields are unbounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceSpec {
    /// Skip this many records (in file order) before keeping any.
    pub skip: u64,
    /// Keep at most this many records.
    pub take: Option<u64>,
    /// Keep only records at or after this time.
    pub from: Option<SimTime>,
    /// Keep only records strictly before this time.
    pub until: Option<SimTime>,
}

/// Copies the records of `input` matching `spec` to `output`.
///
/// The output keeps the input's disk geometry, so record indices stay
/// valid and a filtered file replays against the same array shape.
///
/// # Errors
///
/// Returns any read-side validation error (CRC, structure, fields) or
/// write-side I/O error.
pub fn filter<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    spec: &FilterSpec,
) -> io::Result<SurgeryStats> {
    let map = MappedTrace::open(input)?;
    let mut w = TraceFileWriter::create(output, map.disk_count())?;
    let mut read = 0u64;
    for record in map.records() {
        let record = record?;
        read += 1;
        if spec.matches(&record) {
            w.push(record)?;
        }
    }
    let written = w.finish()?;
    Ok(SurgeryStats { read, written })
}

/// Copies the record/time range `spec` of `input` to `output`.
///
/// # Errors
///
/// Returns any read-side validation error or write-side I/O error.
pub fn slice<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    spec: &SliceSpec,
) -> io::Result<SurgeryStats> {
    let map = MappedTrace::open(input)?;
    let mut w = TraceFileWriter::create(output, map.disk_count())?;
    let mut read = 0u64;
    let mut kept = 0u64;
    for record in map.records() {
        let record = record?;
        read += 1;
        if read <= spec.skip {
            continue;
        }
        if spec.take.is_some_and(|n| kept >= n) {
            // The record range is exhausted; nothing later can match.
            break;
        }
        if spec.from.is_some_and(|t| record.time < t)
            || spec.until.is_some_and(|t| record.time >= t)
        {
            continue;
        }
        w.push(record)?;
        kept += 1;
    }
    let written = w.finish()?;
    Ok(SurgeryStats { read, written })
}

/// One input's cursor in the [`merge`] heap, ordered by (time, input
/// index, position) so ties break deterministically: earlier inputs
/// first, then file order within an input.
struct MergeHead {
    time: SimTime,
    input: usize,
    pos: u64,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.input, self.pos) == (other.time, other.input, other.pos)
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and the merge wants the
        // minimum (earliest) head on top.
        (other.time, other.input, other.pos).cmp(&(self.time, self.input, self.pos))
    }
}

/// K-way time-ordered merge of `inputs` into `output`.
///
/// Every input must already be time-sorted (exports and surgery outputs
/// are); the output's disk count is the maximum of the inputs', so every
/// record stays in geometry. Ties keep input order, so the merge is
/// deterministic and stable.
///
/// # Errors
///
/// Returns `InvalidInput` for an empty input list, `InvalidData` if an
/// input is not time-sorted, and any read-side validation or write-side
/// I/O error.
pub fn merge<P: AsRef<Path>, Q: AsRef<Path>>(inputs: &[P], output: Q) -> io::Result<SurgeryStats> {
    if inputs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "merge needs at least one input trace",
        ));
    }
    let mut maps = Vec::with_capacity(inputs.len());
    for input in inputs {
        let map = MappedTrace::open(input)?;
        if !map.is_time_sorted() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "merge input {} is not time-sorted",
                    input.as_ref().display()
                ),
            ));
        }
        maps.push(map);
    }
    let disk_count = maps.iter().map(MappedTrace::disk_count).max().unwrap();
    let mut w = TraceFileWriter::create(output, disk_count)?;
    let mut heap = std::collections::BinaryHeap::with_capacity(maps.len());
    for (input, map) in maps.iter().enumerate() {
        if !map.is_empty() {
            heap.push(MergeHead {
                time: map.get(0)?.time,
                input,
                pos: 0,
            });
        }
    }
    let mut written = 0u64;
    while let Some(head) = heap.pop() {
        let map = &maps[head.input];
        w.push(map.get(head.pos)?)?;
        written += 1;
        let next = head.pos + 1;
        if next < map.len() {
            heap.push(MergeHead {
                time: map.get(next)?.time,
                input: head.input,
                pos: next,
            });
        }
    }
    let total = w.finish()?;
    debug_assert_eq!(total, written);
    Ok(SurgeryStats {
        read: written,
        written,
    })
}

/// Copies `input` to `output` with every timestamp multiplied by
/// `factor` (rounded to the microsecond): `factor < 1` compresses the
/// trace in time (denser load), `factor > 1` dilates it. Monotonic
/// scaling preserves time order.
///
/// # Errors
///
/// Returns `InvalidInput` for a non-positive or non-finite factor, and
/// any read-side validation or write-side I/O error.
pub fn rescale<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    factor: f64,
) -> io::Result<SurgeryStats> {
    if !(factor.is_finite() && factor > 0.0) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("rescale factor must be positive and finite, got {factor}"),
        ));
    }
    let map = MappedTrace::open(input)?;
    let mut w = TraceFileWriter::create(output, map.disk_count())?;
    let mut read = 0u64;
    for record in map.records() {
        let mut record = record?;
        read += 1;
        let micros = record.time.as_micros() as f64 * factor;
        record.time = SimTime::from_micros(micros.round() as u64);
        w.push(record)?;
    }
    let written = w.finish()?;
    Ok(SurgeryStats { read, written })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_trace::Workload;
    use pc_tracefile::read_trace;
    use std::path::PathBuf;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pc-surgery-{tag}-{}.pct", std::process::id()))
    }

    fn export(tag: &str, family: &str, requests: usize, seed: u64) -> PathBuf {
        let path = temp(tag);
        let workload = Workload::parse(family).unwrap().with_requests(requests);
        pc_tracefile::write_records(&path, workload.disk_count(), workload.stream(seed)).unwrap();
        path
    }

    #[test]
    fn filter_keeps_exactly_the_matching_records() {
        let input = export("filter-in", "oltp", 2_000, 7);
        let output = temp("filter-out");
        let stats = filter(
            &input,
            &output,
            &FilterSpec {
                disk: Some(3),
                op: Some(IoOp::Read),
                ..FilterSpec::default()
            },
        )
        .unwrap();
        assert_eq!(stats.read, 2_000);
        let back = read_trace(&output).unwrap();
        assert_eq!(back.len() as u64, stats.written);
        assert!(stats.written > 0, "disk 3 must see some reads");
        assert!(back
            .iter()
            .all(|r| r.block.disk().index() == 3 && r.op == IoOp::Read));
        // Geometry is preserved, not shrunk to the surviving disks.
        assert_eq!(back.disk_count(), 21);
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_file(&output).unwrap();
    }

    #[test]
    fn slice_honors_record_and_time_bounds_together() {
        let input = export("slice-in", "synthetic", 1_000, 3);
        let full = read_trace(&input).unwrap();
        let output = temp("slice-out");
        let stats = slice(
            &input,
            &output,
            &SliceSpec {
                skip: 100,
                take: Some(250),
                ..SliceSpec::default()
            },
        )
        .unwrap();
        assert_eq!(stats.written, 250);
        let back = read_trace(&output).unwrap();
        assert_eq!(back.records(), &full.records()[100..350]);

        // A pure time window: bounds are [from, until).
        let mid = full.records()[500].time;
        let stats = slice(
            &input,
            &output,
            &SliceSpec {
                until: Some(mid),
                ..SliceSpec::default()
            },
        )
        .unwrap();
        let back = read_trace(&output).unwrap();
        assert_eq!(back.len() as u64, stats.written);
        assert!(back.iter().all(|r| r.time < mid));
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_file(&output).unwrap();
    }

    #[test]
    fn merge_interleaves_time_ordered_and_stable() {
        let a = export("merge-a", "synthetic", 400, 1);
        let b = export("merge-b", "synthetic", 600, 2);
        let output = temp("merge-out");
        let stats = merge(&[&a, &b], &output).unwrap();
        assert_eq!(stats.written, 1_000);
        let back = read_trace(&output).unwrap();
        assert_eq!(back.len(), 1_000);
        // read_trace re-sorts stably, so equality with the raw stream
        // proves the merge emitted non-decreasing times.
        let raw: Vec<_> = pc_tracefile::open(&output)
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(raw.as_slice(), back.records());
        // Merging a file with an empty one is the identity.
        let empty = temp("merge-empty");
        pc_tracefile::write_records(&empty, 8, std::iter::empty()).unwrap();
        let id_out = temp("merge-id");
        let stats = merge(&[&a, &empty], &id_out).unwrap();
        assert_eq!(stats.written, 400);
        assert_eq!(
            read_trace(&id_out).unwrap().records(),
            read_trace(&a).unwrap().records()
        );
        for p in [a, b, output, empty, id_out] {
            std::fs::remove_file(&p).unwrap();
        }
    }

    #[test]
    fn rescale_dilates_time_and_round_trips() {
        let input = export("rescale-in", "cello96", 800, 5);
        let output = temp("rescale-out");
        let stats = rescale(&input, &output, 2.0).unwrap();
        assert_eq!(stats.read, 800);
        assert_eq!(stats.written, 800);
        let orig = read_trace(&input).unwrap();
        let back = read_trace(&output).unwrap();
        for (o, b) in orig.iter().zip(back.iter()) {
            assert_eq!(b.time.as_micros(), o.time.as_micros() * 2);
            assert_eq!((b.block, b.blocks, b.op), (o.block, o.blocks, o.op));
        }
        assert!(rescale(&input, &output, 0.0).is_err());
        assert!(rescale(&input, &output, f64::NAN).is_err());
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_file(&output).unwrap();
    }
}
