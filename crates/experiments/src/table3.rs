//! Table 3 — default parameters of the synthetic trace generator used in
//! the write-policy study.

use pc_trace::{GapDistribution, SyntheticConfig};

use crate::{ExperimentOutput, Table};

/// Prints the generator defaults (the paper's Table 3).
#[must_use]
pub fn run() -> ExperimentOutput {
    let c = SyntheticConfig::default();
    let mut t = Table::new(["parameter", "value"]);
    t.row(["Request Number", &format!("{}", c.requests)]);
    t.row(["Disk Number", &c.disks.to_string()]);
    t.row([
        "Exponential Distribution",
        &format!("mean inter-arrival {}", c.gaps.mean()),
    ]);
    let pareto = GapDistribution::pareto(c.gaps.mean());
    if let GapDistribution::Pareto { shape, .. } = pareto {
        t.row([
            "Pareto Distribution",
            &format!("shape {shape} (finite mean, infinite variance)"),
        ]);
    }
    t.row([
        "Reuse (temporal locality)",
        &c.reuse_probability.to_string(),
    ]);
    t.row(["Write Ratio", &c.write_ratio.to_string()]);
    t.row(["Disk Size", "18 GB"]);
    t.row([
        "Sequential Access Probability",
        &c.seq_probability.to_string(),
    ]);
    t.row(["Local Access Probability", &c.local_probability.to_string()]);
    t.row([
        "Random Access Probability",
        &format!("{}", 1.0 - c.seq_probability - c.local_probability),
    ]);
    t.row([
        "Maximum Local Distance",
        &format!("{} blocks", c.max_local_distance),
    ]);

    let mut out = ExperimentOutput {
        text: format!(
            "Table 3: Default synthetic trace parameters\n\n{}",
            t.render()
        ),
        ..ExperimentOutput::default()
    };
    out.record("disks", f64::from(c.disks));
    out.record("write_ratio", c.write_ratio);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_the_table3_defaults() {
        let o = run();
        assert_eq!(o.metric("disks"), 20.0);
        assert_eq!(o.metric("write_ratio"), 0.5);
        assert!(o.text.contains("1000000"));
        assert!(o.text.contains("100 blocks"));
    }
}
