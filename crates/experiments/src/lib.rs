//! Reproduction drivers for every table and figure in the paper's
//! evaluation, plus the `repro` command-line tool.
//!
//! Each experiment is a function taking [`Params`] and returning its
//! formatted output (the rows/series the paper reports). The `repro`
//! binary maps sub-commands to these functions; integration tests call
//! them at reduced scale and assert the paper's qualitative shapes.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 (disk parameters)            | [`table1::run`] |
//! | Figure 2 (energy lines + envelope)   | [`fig2::run`] |
//! | Figure 3 (Belady not energy-optimal) | [`fig3::run`] |
//! | Figure 4 (savings envelope)          | [`fig4::run`] |
//! | Figure 5 (interval CDF)              | [`fig5::run`] |
//! | Table 2 (trace characteristics)      | [`table2::run`] |
//! | Figure 6a/6b (energy)                | [`fig6::energy`] |
//! | Figure 6c (response time)            | [`fig6::response`] |
//! | Figure 7 (per-disk breakdown)        | [`fig7::run`] |
//! | Figure 8 (spin-up cost sweep)        | [`fig8::run`] |
//! | Table 3 (synthetic generator)        | [`table3::run`] |
//! | Figure 9 (write policies)            | [`fig9::by_write_ratio`], [`fig9::by_interarrival`] |
//!
//! # Examples
//!
//! ```
//! use pc_experiments::{fig6, Params};
//!
//! // A toy-scale run of the Figure-6a energy comparison.
//! let out = fig6::energy(&Params::quick(), pc_experiments::TraceKind::Oltp);
//! assert!(out.text.contains("pa-lru"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod bench;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod nonstationary;
pub mod surgery;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod traceio;

mod params;
mod table;

pub use params::{Params, TraceKind, TraceSource};
pub use table::{ExperimentOutput, Table};
