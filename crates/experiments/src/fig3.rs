//! Figure 3 — the worked example showing Belady's algorithm is not
//! energy-optimal.

use pc_cache::optimal::{figure3_trace, min_energy, miss_sequence_energy, threshold_energy};
use pc_cache::policy::Belady;
use pc_cache::{BlockCache, WritePolicy};
use pc_units::{Joules, SimDuration, SimTime, Watts};

use crate::{ExperimentOutput, Table};

/// Replays the paper's 4-entry-cache example (2-mode disk, 10-unit
/// spin-down threshold): Belady incurs 6 misses but more energy than the
/// alternative schedule with 8 misses.
#[must_use]
pub fn run() -> ExperimentOutput {
    let trace = figure3_trace();
    let horizon = SimTime::from_secs(30);
    let energy_fn = threshold_energy(Watts::new(1.0), Watts::new(0.0), SimDuration::from_secs(10));

    let mut cache = BlockCache::new(4, Box::new(Belady::new(&trace)), WritePolicy::WriteBack);
    let mut belady_misses = Vec::new();
    let mut effects = Vec::new();
    for r in &trace {
        if !cache.access(r, |_| false, &mut effects).hit {
            belady_misses.push(r.time);
        }
    }
    let belady_energy = miss_sequence_energy(&belady_misses, horizon, Joules::ZERO, &energy_fn);
    let optimal = min_energy(&trace, 4, horizon, Joules::ZERO, &energy_fn);

    let mut t = Table::new(["schedule", "misses", "energy (area units)"]);
    t.row([
        "Belady (MIN)".to_owned(),
        belady_misses.len().to_string(),
        format!("{:.1}", belady_energy.as_joules()),
    ]);
    t.row([
        "energy-optimal".to_owned(),
        optimal.misses.to_string(),
        format!("{:.1}", optimal.energy.as_joules()),
    ]);

    let mut out = ExperimentOutput {
        text: format!(
            "Figure 3: Belady is not energy-optimal (request sequence A B C D E B E C D ... A,\n4-entry cache, 2-mode disk, spin-down after 10 idle units)\n\n{}",
            t.render()
        ),
        ..ExperimentOutput::default()
    };
    out.record("belady_misses", belady_misses.len() as f64);
    out.record("belady_energy", belady_energy.as_joules());
    out.record("optimal_misses", optimal.misses as f64);
    out.record("optimal_energy", optimal.energy.as_joules());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_counterexample() {
        let o = run();
        assert_eq!(o.metric("belady_misses"), 6.0);
        assert!(o.metric("optimal_misses") > 6.0);
        assert!(o.metric("optimal_energy") < o.metric("belady_energy"));
    }
}
