//! Figure 2 — per-mode energy-consumption lines and their lower envelope,
//! with the intersection points that become the Practical-DPM thresholds.

use pc_diskmodel::{DiskPowerSpec, PowerModel};
use pc_units::SimDuration;

use crate::{sweep, ExperimentOutput, Params, Table};

/// Interval lengths (seconds) at which the series are sampled.
const SAMPLES: [u64; 10] = [0, 5, 10, 15, 20, 30, 50, 75, 100, 150];

/// Prints the energy of each mode's line per sampled interval length, the
/// lower envelope, and the envelope's breakpoints (t0…t4).
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let model = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
    let mut header: Vec<String> = vec!["interval".into()];
    header.extend(model.modes().map(|(_, m)| m.name.clone()));
    header.push("envelope".into());
    let mut t = Table::new(header);
    for row in sweep::over(params, SAMPLES.to_vec(), |&s| {
        let gap = SimDuration::from_secs(s);
        let mut row = vec![format!("{s}s")];
        for (id, _) in model.modes() {
            row.push(format!("{:.1}", model.energy_line(id, gap).as_joules()));
        }
        row.push(format!("{:.1}", model.lower_envelope(gap).as_joules()));
        row
    }) {
        t.row(row);
    }

    let mut steps = Table::new(["breakpoint", "at idle", "enters mode"]);
    for (i, step) in model.ladder().iter().enumerate().skip(1) {
        steps.row([
            format!("t{}", i - 1),
            step.at_idle.to_string(),
            model.mode(step.mode).name.clone(),
        ]);
    }

    let mut out = ExperimentOutput {
        text: format!(
            "Figure 2: Energy consumption per mode and lower envelope (J)\n\n{}\nEnvelope breakpoints (the 2-competitive Practical-DPM thresholds):\n\n{}",
            t.render(),
            steps.render()
        ),
        ..ExperimentOutput::default()
    };
    out.record("breakpoints", (model.ladder().len() - 1) as f64);
    out.record("first_threshold_s", model.ladder()[1].at_idle.as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_reach_the_envelope() {
        let o = run(&Params::quick());
        assert_eq!(o.metric("breakpoints"), 5.0);
        let t0 = o.metric("first_threshold_s");
        assert!((t0 - 10.678).abs() < 0.01, "t0 {t0}");
        assert!(o.text.contains("standby"));
    }
}
