//! Non-stationary workload matrix — the adaptive meta-policy against
//! every fixed policy it wraps.
//!
//! This experiment is ours, not the paper's: the paper's traces are
//! statistically stationary, so a fixed policy tuned offline stays
//! tuned. The [`pc_trace::NonStationaryConfig`] scenarios (diurnal
//! cycles, flash crowds, tenant churn, a mid-run phase change) break
//! that assumption, and the matrix here measures what the adaptive
//! `meta` policy buys: for each scenario it runs meta plus all eleven
//! fixed candidates and reports total energy, hit ratio, and — for
//! meta — how many epoch-boundary switches the run made.
//!
//! The headline metrics per scenario: `{scenario}_meta_vs_best` (meta's
//! energy over the best fixed policy's; adaptivity is working when this
//! stays near 1) and `{scenario}_meta_vs_worst` (over the worst fixed
//! policy's; the guard against adapting into a pathology).

use pc_cache::policy::PaLruConfig;
use pc_sim::{OnlineStepper, PolicySpec, SimConfig, SimReport};
use pc_trace::{NonStationaryConfig, Scenario, Trace};

use crate::{sweep, ExperimentOutput, Params, Table};

/// The policy matrix: meta first, then the eleven fixed candidates it
/// wraps, PA epochs scaled like every other experiment.
fn matrix(params: &Params) -> Vec<PolicySpec> {
    let power = SimConfig::default().power_model();
    let pa_config = PaLruConfig {
        epoch: params.pa_epoch(),
        ..PaLruConfig::for_power_model(&power)
    };
    vec![
        PolicySpec::Meta,
        PolicySpec::Lru,
        PolicySpec::Fifo,
        PolicySpec::Arc,
        PolicySpec::Mq,
        PolicySpec::Lirs,
        PolicySpec::TwoQ,
        params.pa_policy(&power),
        PolicySpec::PaArc(pa_config.clone()),
        PolicySpec::PaMq(pa_config.clone()),
        PolicySpec::PaLirs(pa_config.clone()),
        PolicySpec::PaTwoQ(pa_config),
    ]
}

/// The scenario trace at this scale. Phase length scales with the
/// request budget (20 phases at any scale) but never drops below four
/// meta epochs, so a down-scaled run still gives the adaptive policy
/// whole phases to read.
fn scenario_trace(params: &Params, scenario: Scenario) -> Trace {
    let requests = params.requests(200_000);
    let mut cfg = NonStationaryConfig::new(scenario).with_requests(requests);
    cfg = cfg.with_phase_requests((requests / 20).max(4_096));
    cfg.generate(params.seed)
}

/// One cell of the matrix: the batch-identical simulation loop, plus
/// the meta gauges [`pc_sim::run_replacement`] has no channel for.
fn run_cell(trace: &Trace, spec: &PolicySpec, cfg: &SimConfig) -> (SimReport, u64) {
    let power = cfg.power_model();
    let built = spec.build(trace, &power, cfg.dpm, cfg.cache_blocks);
    let mut stepper = OnlineStepper::new(trace.disk_count(), built, cfg);
    for record in trace {
        stepper.step(record);
    }
    let switches = stepper.meta_stats().map_or(0, |m| m.switches);
    (stepper.into_report(), switches)
}

/// Runs the matrix over every scenario (or just `only`, when the caller
/// passed `--workload nonstationary:NAME`).
#[must_use]
pub fn run(params: &Params, only: Option<Scenario>) -> ExperimentOutput {
    let scenarios: Vec<Scenario> = match only {
        Some(s) => vec![s],
        None => Scenario::all().to_vec(),
    };
    let cfg = SimConfig::default();
    let specs = matrix(params);
    let mut out = ExperimentOutput::default();
    let mut text = String::from(
        "Non-stationary matrix: adaptive meta-policy vs fixed policies\n(total energy per scenario; vs-best of 1.000 = matched the best fixed policy)\n",
    );

    for scenario in scenarios {
        let trace = scenario_trace(params, scenario);
        let cells: Vec<(SimReport, u64)> =
            sweep::over(params, specs.clone(), |spec| run_cell(&trace, spec, &cfg));
        // Cell 0 is meta; the rest are the fixed candidates.
        let meta_energy = cells[0].0.total_energy().as_joules();
        let switches = cells[0].1;
        let fixed = &cells[1..];
        let best = fixed
            .iter()
            .map(|(r, _)| r.total_energy().as_joules())
            .fold(f64::INFINITY, f64::min);
        let worst = fixed
            .iter()
            .map(|(r, _)| r.total_energy().as_joules())
            .fold(0.0, f64::max);

        let mut t = Table::new([
            "policy",
            "energy_j",
            "vs best fixed",
            "hit ratio",
            "switches",
        ]);
        for (report, sw) in &cells {
            t.row([
                report.policy.clone(),
                format!("{:.2}", report.total_energy().as_joules()),
                format!("{:.3}", report.total_energy().as_joules() / best),
                format!("{:.4}", report.cache.hit_ratio()),
                if report.policy == "meta" {
                    sw.to_string()
                } else {
                    "-".to_owned()
                },
            ]);
            out.record(
                format!("{}_{}_energy_j", scenario.name(), report.policy),
                report.total_energy().as_joules(),
            );
        }
        out.record(
            format!("{}_meta_switches", scenario.name()),
            switches as f64,
        );
        out.record(
            format!("{}_meta_vs_best", scenario.name()),
            meta_energy / best,
        );
        out.record(
            format!("{}_meta_vs_worst", scenario.name()),
            meta_energy / worst,
        );
        text.push_str(&format!("\nscenario: {}\n{}", scenario.name(), t.render()));
    }
    out.text = text;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Long enough for several phases of several meta epochs each.
    fn params() -> Params {
        Params {
            scale: 0.3,
            ..Params::quick()
        }
    }

    #[test]
    fn meta_adapts_across_every_scenario() {
        for scenario in Scenario::all() {
            let o = run(&params(), Some(scenario));
            let name = scenario.name();
            let vs_best = o.metric(&format!("{name}_meta_vs_best"));
            let vs_worst = o.metric(&format!("{name}_meta_vs_worst"));
            // The acceptance bar: within 10% of the best fixed policy,
            // strictly better than the worst, and actually switching.
            assert!(
                vs_best <= 1.10,
                "{name}: meta at {vs_best:.3}x the best fixed policy"
            );
            assert!(
                vs_worst < 1.0,
                "{name}: meta at {vs_worst:.3}x the worst fixed policy"
            );
            assert!(
                o.metric(&format!("{name}_meta_switches")) > 0.0,
                "{name}: meta never switched"
            );
        }
    }

    #[test]
    fn meta_runs_are_byte_identical() {
        let trace = scenario_trace(&params(), Scenario::PhaseChange);
        let cfg = SimConfig::default();
        let (a, sw_a) = run_cell(&trace, &PolicySpec::Meta, &cfg);
        let (b, sw_b) = run_cell(&trace, &PolicySpec::Meta, &cfg);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(sw_a, sw_b);
        assert!(sw_a > 0, "phase change must trigger at least one switch");
    }

    #[test]
    fn stationary_traces_keep_meta_off_the_floor() {
        // Property over seeds: on a *stationary* workload, meta must
        // never do worse than the worst fixed policy it wraps — the
        // hysteresis margin should keep it parked near one champion.
        let cfg = SimConfig::default();
        for seed in [1u64, 7, 42] {
            let trace = pc_trace::SyntheticConfig::default()
                .with_requests(20_000)
                .generate(seed);
            let specs = matrix(&Params::quick());
            let energies: Vec<f64> = specs
                .iter()
                .map(|s| run_cell(&trace, s, &cfg).0.total_energy().as_joules())
                .collect();
            let meta = energies[0];
            let worst = energies[1..].iter().fold(0.0f64, |a, &b| a.max(b));
            assert!(
                meta <= worst + 1e-9,
                "seed {seed}: meta {meta:.2} J above worst fixed {worst:.2} J"
            );
        }
    }
}
