//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale X] [--seed N] [--jobs N] [--trace FILE.pct]
//! repro all [--scale X] [--seed N] [--jobs N]
//! repro bench [--scale X] [--seed N] [--reps N] [--check]
//! repro trace export --workload NAME --out FILE.pct [--requests N] [--seed N]
//! repro trace info FILE.pct
//! repro trace filter IN.pct --out OUT.pct [--disk N] [--op read|write] [--from-us T] [--until-us T]
//! repro trace slice IN.pct --out OUT.pct [--skip N] [--take N] [--from-us T] [--until-us T]
//! repro trace merge IN.pct [IN2.pct ...] --out OUT.pct
//! repro trace rescale IN.pct --out OUT.pct --factor X
//! ```
//!
//! Experiments: `table1 table2 table3 fig2 fig3 fig4 fig5 fig6a fig6b
//! fig6c fig7 fig8 fig9-ratio fig9-gap`. The default scale of 1.0 runs
//! paper-comparable trace lengths (`fig9-*` take minutes); `--scale 0.05`
//! gives quick smoke runs.
//!
//! Sweeps fan out over worker threads: `--jobs N` (or the `REPRO_JOBS`
//! environment variable when the flag is absent) pins the count, 0 or
//! unset means one per core. Results are identical for any job count.
//!
//! `repro trace export` serializes a workload generator to the binary
//! `.pct` format (see `pc-tracefile`); `repro trace info` validates a
//! file and prints its header plus summary statistics. `--trace FILE`
//! on any experiment replays that file in place of every generated
//! workload — the bridge from `pc-server --capture` back into the
//! batch harness.
//!
//! `repro trace filter|slice|merge|rescale` are streaming surgery
//! operators (see `pc_experiments::surgery`): each reads its inputs
//! through a lazily-verified memory map and writes a fresh `.pct` file
//! in constant memory, so trimming or combining multi-GB corpora never
//! materializes a record vector.
//!
//! `repro bench` times the single-threaded simulation hot path on a
//! fixed policy × workload matrix — each cell measured `--reps N`
//! times (default 3), reported as median + spread — and writes
//! `BENCH_repro.json`. `repro bench --check` instead compares the
//! fresh medians against the committed `BENCH_repro.json` and exits
//! non-zero if any policy's aggregate throughput regressed by more
//! than 15%.

use std::env;
use std::process::ExitCode;

use pc_experiments::{ablations, bench, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
use pc_experiments::{nonstationary, surgery, table1, table2, table3, Params, TraceKind};

const EXPERIMENTS: [&str; 26] = [
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "fig8",
    "fig9-ratio",
    "fig9-gap",
    "ablation-eps",
    "ablation-pa",
    "ablation-modes",
    "ablation-policies",
    "ablation-wbeu",
    "ablation-prefetch",
    "ablation-scheduler",
    "ablation-combo",
    "ablation-layout",
    "ablation-disktype",
    "ablation-serve-at-speed",
    "nonstationary",
];

const BENCH_PATH: &str = "BENCH_repro.json";
/// Where `bench --check` records the fresh (uncommitted) run.
const FRESH_PATH: &str = "BENCH_fresh.json";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return run_trace(&args[1..]);
    }
    let mut which = None;
    let mut params = Params::paper();
    let mut jobs_flag = None;
    let mut check = false;
    let mut reps = bench::DEFAULT_REPS;
    let mut reps_flag = false;
    let mut workload = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--scale" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => params.scale = s,
                _ => return usage("--scale needs a positive number"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => params.seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--jobs" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => jobs_flag = Some(n),
                None => return usage("--jobs needs a worker count (0 = one per core)"),
            },
            "--trace" => match iter.next() {
                Some(path) => params.trace_file = Some(path.into()),
                None => return usage("--trace needs a .pct file path"),
            },
            "--workload" => match iter.next() {
                Some(name) => workload = Some(name.clone()),
                None => return usage("--workload needs a workload name"),
            },
            "--reps" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    reps = n;
                    reps_flag = true;
                }
                _ => return usage("--reps needs a positive repeat count"),
            },
            "--help" | "-h" => return usage(""),
            name if which.is_none() => which = Some(name.to_owned()),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    // The flag wins; REPRO_JOBS covers scripted runs that can't pass one.
    match jobs_flag {
        Some(n) => params.jobs = n,
        None => {
            if let Some(n) = env::var("REPRO_JOBS").ok().and_then(|v| v.parse().ok()) {
                params.jobs = n;
            }
        }
    }
    let Some(which) = which else {
        return usage("missing experiment name");
    };

    if which == "bench" {
        return run_bench(&params, reps, check);
    }
    if check {
        return usage("--check only applies to `repro bench`");
    }
    if reps_flag {
        return usage("--reps only applies to `repro bench`");
    }
    // `--workload nonstationary:NAME` narrows the nonstationary matrix
    // to one scenario; no other experiment takes a workload override.
    let scenario = match workload.as_deref() {
        None => None,
        Some(w) if which == "nonstationary" => {
            let name = w.strip_prefix("nonstationary:").unwrap_or(w);
            match pc_trace::Scenario::parse(name) {
                Some(s) => Some(s),
                None => {
                    return usage(&format!(
                        "unknown non-stationary workload: {w} (diurnal, flash-crowd, churn, phase-change)"
                    ))
                }
            }
        }
        Some(_) => return usage("--workload only applies to the nonstationary experiment"),
    };
    if which == "all" {
        for name in EXPERIMENTS {
            run_one(name, &params, None);
        }
        return ExitCode::SUCCESS;
    }
    if EXPERIMENTS.contains(&which.as_str()) {
        run_one(&which, &params, scenario);
        ExitCode::SUCCESS
    } else {
        usage(&format!("unknown experiment: {which}"))
    }
}

fn run_one(name: &str, params: &Params, scenario: Option<pc_trace::Scenario>) {
    let started = std::time::Instant::now();
    let output = match name {
        "table1" => table1::run(params),
        "table2" => table2::run(params),
        "table3" => table3::run(),
        "fig2" => fig2::run(params),
        "fig3" => fig3::run(),
        "fig4" => fig4::run(params),
        "fig5" => fig5::run(params),
        "fig6a" => fig6::energy(params, TraceKind::Oltp),
        "fig6b" => fig6::energy(params, TraceKind::Cello),
        "fig6c" => fig6::response(params),
        "fig7" => fig7::run(params),
        "fig8" => fig8::run(params),
        "fig9-ratio" => fig9::by_write_ratio(params),
        "fig9-gap" => fig9::by_interarrival(params),
        "ablation-eps" => ablations::epsilon_sweep(params),
        "ablation-pa" => ablations::pa_sensitivity(params),
        "ablation-modes" => ablations::mode_count(params),
        "ablation-policies" => ablations::policy_zoo(params),
        "ablation-wbeu" => ablations::wbeu_dirty_limit(params),
        "ablation-prefetch" => ablations::prefetch_depth(params),
        "ablation-scheduler" => ablations::scheduler(params),
        "ablation-combo" => ablations::combo(params),
        "ablation-layout" => ablations::layout(params),
        "ablation-disktype" => ablations::disk_type(params),
        "ablation-serve-at-speed" => ablations::serve_at_speed(params),
        "nonstationary" => nonstationary::run(params, scenario),
        other => unreachable!("validated experiment name: {other}"),
    };
    println!("{}", output.text);
    println!("[{name} done in {:.1?}]\n", started.elapsed());
}

/// The committed canonical captured fixture replayed by the
/// `server-trace-replay-corpus` bench row.
fn corpus_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/corpus.pct")
}

fn run_bench(params: &Params, reps: usize, check: bool) -> ExitCode {
    let mut rows = bench::run(params, reps);
    // One advisory end-to-end row over the real serving path; it is
    // excluded from the aggregate, so a socket-flaky runner degrades
    // to the simulation-only matrix instead of failing the bench.
    match bench::server_row(0.5) {
        Ok(row) => rows.push(row),
        Err(e) => eprintln!("warning: skipping advisory server bench row: {e}"),
    }
    match bench::payload_server_row(0.5) {
        Ok(row) => rows.push(row),
        Err(e) => eprintln!("warning: skipping advisory payload bench row: {e}"),
    }
    match bench::trace_replay_row(200_000) {
        Ok(row) => rows.push(row),
        Err(e) => eprintln!("warning: skipping advisory trace-replay bench row: {e}"),
    }
    match bench::trace_ingest_rows(500_000) {
        Ok(ingest) => rows.extend(ingest),
        Err(e) => eprintln!("warning: skipping advisory trace-ingest bench rows: {e}"),
    }
    // The committed-corpus replay row is NOT advisory: the fixture is
    // fixed bytes, so the row is comparable across runs and gates like
    // the simulation rows (with the wide band its recorded spread buys
    // it). A missing row therefore fails `--check` rather than being
    // silently skipped.
    match bench::corpus_replay_row(&corpus_path(), reps) {
        Ok(row) => rows.push(row),
        Err(e) => eprintln!("warning: corpus bench row failed (gated in --check): {e}"),
    }
    println!("{}", bench::render(&rows));
    let json = bench::to_json(params, &rows);
    if check {
        // Record the fresh run next to the baseline (never committed;
        // CI uploads it as an artifact) before comparing, so the data
        // survives even when the check fails.
        match std::fs::write(FRESH_PATH, &json) {
            Ok(()) => println!("[wrote {FRESH_PATH}]"),
            Err(e) => eprintln!("warning: writing {FRESH_PATH}: {e}"),
        }
        let committed = match std::fs::read_to_string(BENCH_PATH) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading {BENCH_PATH}: {e}");
                return ExitCode::from(1);
            }
        };
        let Some((scale, baseline)) = bench::parse_committed(&committed) else {
            eprintln!("error: {BENCH_PATH} has no aggregate_req_per_sec section");
            return ExitCode::from(1);
        };
        if (scale - params.scale).abs() > 1e-9 {
            println!(
                "[note: baseline recorded at scale {scale}, this run used {}]",
                params.scale
            );
        }
        // The gate is the per-row spread-aware check: each committed row
        // fails only past max(15%, 3x its recorded spread), so tight
        // simulation rows gate tight while the socket-path corpus row
        // gets the band its noise demonstrably needs. The aggregate
        // comparison stays in the output as the release-over-release
        // trend line. Baselines predating per-row data fall back to
        // gating on the aggregate alone.
        if let Some(base_rows) = bench::parse_committed_rows(&committed) {
            match bench::check(&bench::aggregate(&rows), &baseline, bench::CHECK_TOLERANCE) {
                Ok(report) | Err(report) => println!("{report}"),
            }
            println!("[aggregate trend above is informational; the per-row check gates]");
            return match bench::check_rows(&rows, &base_rows) {
                Ok(report) => {
                    println!("{report}");
                    ExitCode::SUCCESS
                }
                Err(report) => {
                    eprintln!("{report}");
                    ExitCode::from(1)
                }
            };
        }
        return match bench::check(&bench::aggregate(&rows), &baseline, bench::CHECK_TOLERANCE) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprintln!("{report}");
                ExitCode::from(1)
            }
        };
    }
    match std::fs::write(BENCH_PATH, &json) {
        Ok(()) => {
            println!("[wrote {BENCH_PATH}]");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: writing {BENCH_PATH}: {e}");
            ExitCode::from(1)
        }
    }
}

/// `repro trace export|info|filter|slice|merge|rescale`: serialize a
/// workload generator to a binary `.pct` file, validate one and print
/// its summary, or rewrite files with the streaming surgery operators.
fn run_trace(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("export") => {
            let mut workload = None;
            let mut out = None;
            let mut requests = None;
            let mut seed = 42u64;
            let mut iter = args[1..].iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--workload" => match iter.next().map(|v| pc_trace::Workload::parse(v)) {
                        Some(Some(w)) => workload = Some(w),
                        _ => return trace_usage(
                            "--workload needs synthetic, oltp, cello96, or nonstationary:SCENARIO",
                        ),
                    },
                    "--out" => match iter.next() {
                        Some(path) => out = Some(std::path::PathBuf::from(path)),
                        None => return trace_usage("--out needs a file path"),
                    },
                    "--requests" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                        Some(n) if n > 0 => requests = Some(n),
                        _ => return trace_usage("--requests needs a positive count"),
                    },
                    "--seed" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                        Some(s) => seed = s,
                        None => return trace_usage("--seed needs an integer"),
                    },
                    other => return trace_usage(&format!("unexpected argument: {other}")),
                }
            }
            let Some(mut workload) = workload else {
                return trace_usage("export needs --workload");
            };
            let Some(out) = out else {
                return trace_usage("export needs --out");
            };
            if let Some(n) = requests {
                workload = workload.with_requests(n);
            }
            match pc_experiments::traceio::export(&workload, seed, &out) {
                Ok(written) => {
                    println!(
                        "wrote {written} {} records to {}",
                        workload.name(),
                        out.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: exporting to {}: {e}", out.display());
                    ExitCode::from(1)
                }
            }
        }
        Some("info") => {
            let [path] = &args[1..] else {
                return trace_usage("info takes exactly one FILE.pct argument");
            };
            match pc_experiments::traceio::info(std::path::Path::new(path)) {
                Ok(summary) => {
                    print!("{summary}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: reading {path}: {e}");
                    ExitCode::from(1)
                }
            }
        }
        Some("filter") => run_filter(&args[1..]),
        Some("slice") => run_slice(&args[1..]),
        Some("merge") => run_merge(&args[1..]),
        Some("rescale") => run_rescale(&args[1..]),
        Some(other) => trace_usage(&format!("unknown trace sub-command: {other}")),
        None => {
            trace_usage("trace needs a sub-command (export, info, filter, slice, merge, rescale)")
        }
    }
}

/// `repro trace filter IN --out OUT [predicates]`.
fn run_filter(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut out = None;
    let mut spec = surgery::FilterSpec::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out = Some(std::path::PathBuf::from(path)),
                None => return trace_usage("--out needs a file path"),
            },
            "--disk" => match iter.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(d) => spec.disk = Some(d),
                None => return trace_usage("--disk needs a disk index"),
            },
            "--op" => match iter.next().map(String::as_str) {
                Some("read") => spec.op = Some(pc_trace::IoOp::Read),
                Some("write") => spec.op = Some(pc_trace::IoOp::Write),
                _ => return trace_usage("--op needs read or write"),
            },
            "--from-us" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(t) => spec.from = Some(pc_units::SimTime::from_micros(t)),
                None => return trace_usage("--from-us needs a time in microseconds"),
            },
            "--until-us" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(t) => spec.until = Some(pc_units::SimTime::from_micros(t)),
                None => return trace_usage("--until-us needs a time in microseconds"),
            },
            path if input.is_none() && !path.starts_with("--") => {
                input = Some(std::path::PathBuf::from(path));
            }
            other => return trace_usage(&format!("unexpected argument: {other}")),
        }
    }
    let (Some(input), Some(out)) = (input, out) else {
        return trace_usage("filter needs an input file and --out");
    };
    report_surgery("filter", surgery::filter(&input, &out, &spec), &out)
}

/// `repro trace slice IN --out OUT [bounds]`.
fn run_slice(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut out = None;
    let mut spec = surgery::SliceSpec::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out = Some(std::path::PathBuf::from(path)),
                None => return trace_usage("--out needs a file path"),
            },
            "--skip" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => spec.skip = n,
                None => return trace_usage("--skip needs a record count"),
            },
            "--take" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => spec.take = Some(n),
                None => return trace_usage("--take needs a record count"),
            },
            "--from-us" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(t) => spec.from = Some(pc_units::SimTime::from_micros(t)),
                None => return trace_usage("--from-us needs a time in microseconds"),
            },
            "--until-us" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(t) => spec.until = Some(pc_units::SimTime::from_micros(t)),
                None => return trace_usage("--until-us needs a time in microseconds"),
            },
            path if input.is_none() && !path.starts_with("--") => {
                input = Some(std::path::PathBuf::from(path));
            }
            other => return trace_usage(&format!("unexpected argument: {other}")),
        }
    }
    let (Some(input), Some(out)) = (input, out) else {
        return trace_usage("slice needs an input file and --out");
    };
    report_surgery("slice", surgery::slice(&input, &out, &spec), &out)
}

/// `repro trace merge IN [IN2 ...] --out OUT`.
fn run_merge(args: &[String]) -> ExitCode {
    let mut inputs = Vec::new();
    let mut out = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out = Some(std::path::PathBuf::from(path)),
                None => return trace_usage("--out needs a file path"),
            },
            path if !path.starts_with("--") => inputs.push(std::path::PathBuf::from(path)),
            other => return trace_usage(&format!("unexpected argument: {other}")),
        }
    }
    let Some(out) = out else {
        return trace_usage("merge needs --out");
    };
    if inputs.is_empty() {
        return trace_usage("merge needs at least one input file");
    }
    report_surgery("merge", surgery::merge(&inputs, &out), &out)
}

/// `repro trace rescale IN --out OUT --factor X`.
fn run_rescale(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut out = None;
    let mut factor = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out = Some(std::path::PathBuf::from(path)),
                None => return trace_usage("--out needs a file path"),
            },
            "--factor" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f.is_finite() && f > 0.0 => factor = Some(f),
                _ => return trace_usage("--factor needs a positive number"),
            },
            path if input.is_none() && !path.starts_with("--") => {
                input = Some(std::path::PathBuf::from(path));
            }
            other => return trace_usage(&format!("unexpected argument: {other}")),
        }
    }
    let (Some(input), Some(out), Some(factor)) = (input, out, factor) else {
        return trace_usage("rescale needs an input file, --out, and --factor");
    };
    report_surgery("rescale", surgery::rescale(&input, &out, factor), &out)
}

/// Prints a surgery outcome uniformly and maps errors to exit code 1.
fn report_surgery(
    what: &str,
    result: std::io::Result<surgery::SurgeryStats>,
    out: &std::path::Path,
) -> ExitCode {
    match result {
        Ok(stats) => {
            println!(
                "{what}: read {} records, wrote {} to {}",
                stats.read,
                stats.written,
                out.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {what}: {e}");
            ExitCode::from(1)
        }
    }
}

fn trace_usage(error: &str) -> ExitCode {
    eprintln!("error: {error}\n");
    eprintln!(
        "usage: repro trace export --workload <synthetic|oltp|cello96|nonstationary:SCENARIO> --out FILE.pct [--requests N] [--seed N]"
    );
    eprintln!("       repro trace info FILE.pct");
    eprintln!(
        "       repro trace filter IN.pct --out OUT.pct [--disk N] [--op read|write] [--from-us T] [--until-us T]"
    );
    eprintln!(
        "       repro trace slice IN.pct --out OUT.pct [--skip N] [--take N] [--from-us T] [--until-us T]"
    );
    eprintln!("       repro trace merge IN.pct [IN2.pct ...] --out OUT.pct");
    eprintln!("       repro trace rescale IN.pct --out OUT.pct --factor X");
    ExitCode::from(2)
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro <experiment|all|bench> [--scale X] [--seed N] [--jobs N] [--reps N] [--check] [--trace FILE.pct]"
    );
    eprintln!(
        "       repro bench --reps N  measures each cell N times, reporting medians (default 3)"
    );
    eprintln!("       repro bench --check   compares against the committed BENCH_repro.json");
    eprintln!("       repro --trace FILE.pct <experiment>   replays a binary trace file");
    eprintln!(
        "       repro nonstationary [--workload nonstationary:<diurnal|flash-crowd|churn|phase-change>]"
    );
    eprintln!("       repro trace export|info   converts workloads to/inspects .pct files");
    eprintln!("       repro trace filter|slice|merge|rescale   streaming .pct surgery");
    eprintln!("       REPRO_JOBS=N repro ...   (used when --jobs is absent; 0 = one per core)");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
