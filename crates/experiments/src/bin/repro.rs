//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale X] [--seed N]
//! repro all [--scale X] [--seed N]
//! ```
//!
//! Experiments: `table1 table2 table3 fig2 fig3 fig4 fig5 fig6a fig6b
//! fig6c fig7 fig8 fig9-ratio fig9-gap`. The default scale of 1.0 runs
//! paper-comparable trace lengths (`fig9-*` take minutes); `--scale 0.05`
//! gives quick smoke runs.

use std::env;
use std::process::ExitCode;

use pc_experiments::{ablations, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
use pc_experiments::{table1, table2, table3, Params, TraceKind};

const EXPERIMENTS: [&str; 25] = [
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "fig8",
    "fig9-ratio",
    "fig9-gap",
    "ablation-eps",
    "ablation-pa",
    "ablation-modes",
    "ablation-policies",
    "ablation-wbeu",
    "ablation-prefetch",
    "ablation-scheduler",
    "ablation-combo",
    "ablation-layout",
    "ablation-disktype",
    "ablation-serve-at-speed",
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which = None;
    let mut params = Params::paper();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => params.scale = s,
                _ => return usage("--scale needs a positive number"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => params.seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            name if which.is_none() => which = Some(name.to_owned()),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    let Some(which) = which else {
        return usage("missing experiment name");
    };

    if which == "all" {
        for name in EXPERIMENTS {
            run_one(name, &params);
        }
        return ExitCode::SUCCESS;
    }
    if EXPERIMENTS.contains(&which.as_str()) {
        run_one(&which, &params);
        ExitCode::SUCCESS
    } else {
        usage(&format!("unknown experiment: {which}"))
    }
}

fn run_one(name: &str, params: &Params) {
    let started = std::time::Instant::now();
    let output = match name {
        "table1" => table1::run(),
        "table2" => table2::run(params),
        "table3" => table3::run(),
        "fig2" => fig2::run(),
        "fig3" => fig3::run(),
        "fig4" => fig4::run(),
        "fig5" => fig5::run(params),
        "fig6a" => fig6::energy(params, TraceKind::Oltp),
        "fig6b" => fig6::energy(params, TraceKind::Cello),
        "fig6c" => fig6::response(params),
        "fig7" => fig7::run(params),
        "fig8" => fig8::run(params),
        "fig9-ratio" => fig9::by_write_ratio(params),
        "fig9-gap" => fig9::by_interarrival(params),
        "ablation-eps" => ablations::epsilon_sweep(params),
        "ablation-pa" => ablations::pa_sensitivity(params),
        "ablation-modes" => ablations::mode_count(params),
        "ablation-policies" => ablations::policy_zoo(params),
        "ablation-wbeu" => ablations::wbeu_dirty_limit(params),
        "ablation-prefetch" => ablations::prefetch_depth(params),
        "ablation-scheduler" => ablations::scheduler(params),
        "ablation-combo" => ablations::combo(params),
        "ablation-layout" => ablations::layout(params),
        "ablation-disktype" => ablations::disk_type(params),
        "ablation-serve-at-speed" => ablations::serve_at_speed(params),
        other => unreachable!("validated experiment name: {other}"),
    };
    println!("{}", output.text);
    println!("[{name} done in {:.1?}]\n", started.elapsed());
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!("usage: repro <experiment|all> [--scale X] [--seed N]");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
