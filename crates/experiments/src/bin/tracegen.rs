//! `tracegen` — generate, inspect and convert workload traces.
//!
//! ```text
//! tracegen oltp  [--requests N] [--seed S] [--out FILE]
//! tracegen cello [--requests N] [--seed S] [--out FILE]
//! tracegen synthetic [--requests N] [--seed S] [--write-ratio R]
//!          [--gap-ms MS] [--pareto] [--out FILE]
//! tracegen stats FILE
//! ```
//!
//! Traces are written in the line-oriented text format of
//! [`Trace::to_writer`] and can be replayed by any `pc-sim` runner via
//! [`Trace::from_reader`].

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::process::ExitCode;

use pc_trace::{CelloConfig, GapDistribution, OltpConfig, SyntheticConfig, Trace, TraceStats};
use pc_units::SimDuration;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: tracegen <oltp|cello|synthetic> [--requests N] [--seed S] \
                 [--write-ratio R] [--gap-ms MS] [--pareto] [--out FILE]\n\
                 \x20      tracegen stats FILE"
            );
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };

    if command == "stats" {
        let path = args.get(1).ok_or("stats needs a file path")?;
        let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let trace =
            Trace::from_reader(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))?;
        print_stats(&trace);
        return Ok(());
    }

    let mut requests = None;
    let mut seed = 42u64;
    let mut write_ratio = None;
    let mut gap_ms = None;
    let mut pareto = false;
    let mut out: Option<String> = None;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .cloned()
        };
        match arg.as_str() {
            "--requests" => {
                requests = Some(
                    value("--requests")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --requests: {e}"))?,
                );
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--write-ratio" => {
                write_ratio = Some(
                    value("--write-ratio")?
                        .parse::<f64>()
                        .map_err(|e| format!("bad --write-ratio: {e}"))?,
                );
            }
            "--gap-ms" => {
                gap_ms = Some(
                    value("--gap-ms")?
                        .parse::<u64>()
                        .map_err(|e| format!("bad --gap-ms: {e}"))?,
                );
            }
            "--pareto" => pareto = true,
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }

    let trace = match command.as_str() {
        "oltp" => OltpConfig::default()
            .with_requests(requests.unwrap_or(72_000))
            .generate(seed),
        "cello" => CelloConfig::default()
            .with_requests(requests.unwrap_or(400_000))
            .generate(seed),
        "synthetic" => {
            let mut cfg = SyntheticConfig::default().with_requests(requests.unwrap_or(100_000));
            if let Some(r) = write_ratio {
                cfg = cfg.with_write_ratio(r);
            }
            if let Some(ms) = gap_ms {
                let mean = SimDuration::from_millis(ms);
                cfg = cfg.with_gaps(if pareto {
                    GapDistribution::pareto(mean)
                } else {
                    GapDistribution::exponential(mean)
                });
            }
            cfg.generate(seed)
        }
        other => return Err(format!("unknown command: {other}")),
    };

    match out {
        Some(path) => {
            let file = File::create(&path).map_err(|e| format!("create {path}: {e}"))?;
            let mut writer = BufWriter::new(file);
            trace
                .to_writer(&mut writer)
                .and_then(|()| writer.flush())
                .map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {} records to {path}", trace.len());
        }
        None => {
            let stdout = io::stdout();
            trace
                .to_writer(stdout.lock())
                .map_err(|e| format!("write stdout: {e}"))?;
        }
    }
    print_stats(&trace);
    Ok(())
}

fn print_stats(trace: &Trace) {
    let s = TraceStats::of(trace);
    eprintln!(
        "requests={} disks={} writes={:.1}% mean-gap={} cold={:.1}% unique-blocks={}",
        s.requests,
        s.disks,
        s.write_fraction * 100.0,
        s.mean_interarrival,
        s.cold_fraction * 100.0,
        s.unique_blocks
    );
}
