//! Table 1 — disk simulation parameters (IBM Ultrastar 36Z15).

use pc_diskmodel::{DiskPowerSpec, PowerModel};

use crate::{sweep, ExperimentOutput, Params, Table};

/// Prints the Table-1 rows plus the derived multi-speed mode table.
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let spec = DiskPowerSpec::ultrastar_36z15();
    let mut t = Table::new(["parameter", "value"]);
    t.row(["Individual Disk Capacity", "18.4 GB"]);
    t.row([
        "Maximum Disk Rotation Speed",
        &format!("{} RPM", spec.max_rpm),
    ]);
    t.row([
        "Minimum Disk Rotation Speed",
        &format!("{} RPM", spec.min_rpm),
    ]);
    t.row(["RPM Step-Size", &format!("{} RPM", spec.rpm_step)]);
    t.row(["Active Power (Read/Write)", &spec.active_power.to_string()]);
    t.row(["Seek Power", &spec.seek_power.to_string()]);
    t.row(["Idle Power @15000RPM", &spec.idle_power.to_string()]);
    t.row(["Standby Power", &spec.standby_power.to_string()]);
    t.row([
        "Spinup Time (Standby to Active)",
        &spec.spin_up_time.to_string(),
    ]);
    t.row([
        "Spinup Energy (Standby to Active)",
        &spec.spin_up_energy.to_string(),
    ]);
    t.row([
        "Spindown Time (Active to Standby)",
        &spec.spin_down_time.to_string(),
    ]);
    t.row([
        "Spindown Energy (Active to Standby)",
        &spec.spin_down_energy.to_string(),
    ]);

    let model = PowerModel::multi_speed(&spec);
    let mut modes = Table::new(["mode", "rpm", "power", "spin-down", "spin-up", "break-even"]);
    let mode_ids: Vec<_> = model.modes().map(|(id, _)| id).collect();
    for row in sweep::over(params, mode_ids, |&id| {
        let m = model.mode(id);
        [
            m.name.clone(),
            m.rpm.to_string(),
            m.power.to_string(),
            format!("{} / {}", m.spin_down.time, m.spin_down.energy),
            format!("{} / {}", m.spin_up.time, m.spin_up.energy),
            if id.is_full_speed() {
                "-".to_owned()
            } else {
                model.break_even(id).to_string()
            },
        ]
    }) {
        modes.row(row);
    }

    let mut out = ExperimentOutput {
        text: format!(
            "Table 1: Simulation parameters (IBM Ultrastar 36Z15)\n\n{}\nDerived multi-speed modes:\n\n{}",
            t.render(),
            modes.render()
        ),
        ..ExperimentOutput::default()
    };
    out.record("idle_power_w", spec.idle_power.as_watts());
    out.record("modes", model.mode_count() as f64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_the_datasheet_numbers() {
        let o = run(&Params::quick());
        assert!(o.text.contains("15000 RPM"));
        assert!(o.text.contains("10.200W"));
        assert!(o.text.contains("135.000J"));
        assert_eq!(o.metric("modes"), 6.0);
    }
}
