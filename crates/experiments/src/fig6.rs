//! Figure 6 — energy and response time of power-aware replacement.
//!
//! (a)/(b): disk energy of {infinite cache, Belady, OPG, LRU, PA-LRU}
//! under Oracle and Practical DPM, normalized to LRU, on the OLTP-like
//! and Cello-like traces. (c): mean response time under Practical DPM,
//! normalized to LRU.

use pc_disksim::DpmPolicy;
use pc_sim::{PolicySpec, SimConfig, SimReport};
use pc_units::Joules;

use crate::{sweep, ExperimentOutput, Params, Table, TraceKind, TraceSource};

/// The five bars of each Figure-6 group, in paper order. PA-LRU's epoch
/// scales with the trace length (see [`Params::pa_epoch`]).
fn bars(params: &Params) -> Vec<(&'static str, PolicySpec, bool)> {
    let power = SimConfig::default().power_model();
    vec![
        ("infinite-cache", PolicySpec::Lru, true),
        ("belady", PolicySpec::Belady, false),
        (
            "opg",
            PolicySpec::Opg {
                epsilon: Joules::ZERO,
            },
            false,
        ),
        ("lru", PolicySpec::Lru, false),
        ("pa-lru", params.pa_policy(&power), false),
    ]
}

fn config_for(kind: TraceKind, dpm: DpmPolicy, infinite: bool) -> SimConfig {
    // Paper: 128 MB cache for OLTP, 32 MB for Cello96 (scaled 4:1 here,
    // matching the down-scaled working sets; see EXPERIMENTS.md).
    let blocks = match kind {
        TraceKind::Oltp => 4_096,
        TraceKind::Cello => 1_024,
    };
    let cfg = SimConfig::default().with_cache_blocks(blocks).with_dpm(dpm);
    if infinite {
        cfg.with_infinite_cache()
    } else {
        cfg
    }
}

fn run_bar(
    trace: &TraceSource,
    kind: TraceKind,
    dpm: DpmPolicy,
    spec: &PolicySpec,
    infinite: bool,
) -> SimReport {
    trace.run_replacement(spec, &config_for(kind, dpm, infinite))
}

/// Figure 6a (OLTP) or 6b (Cello96): energy normalized to LRU, under both
/// DPM schemes.
#[must_use]
pub fn energy(params: &Params, kind: TraceKind) -> ExperimentOutput {
    // A TraceSource rather than a Trace: a file-backed run streams the
    // on-line bars straight off the map, and the off-line bars share one
    // cached materialization.
    let trace = params.trace_source(kind);
    let mut out = ExperimentOutput::default();
    let mut t = Table::new(["policy", "oracle dpm", "practical dpm"]);

    // All ten (DPM × policy) runs are independent: fan them out flat and
    // regroup into the two table columns afterwards. The bar list (and its
    // power model) is built once and shared by both DPM columns.
    let bar_specs = bars(params);
    let bar_count = bar_specs.len();
    let points: Vec<(DpmPolicy, &'static str, PolicySpec, bool)> =
        [DpmPolicy::Oracle, DpmPolicy::Practical]
            .into_iter()
            .flat_map(|dpm| {
                bar_specs
                    .iter()
                    .map(move |(name, spec, inf)| (dpm, *name, spec.clone(), *inf))
            })
            .collect();
    let reports: Vec<(&'static str, SimReport)> =
        sweep::over(params, points, |(dpm, name, spec, inf)| {
            (*name, run_bar(&trace, kind, *dpm, spec, *inf))
        });

    let mut columns = Vec::new();
    for dpm_reports in reports.chunks(bar_count) {
        let lru_energy = dpm_reports
            .iter()
            .find(|(n, _)| *n == "lru")
            .expect("lru bar present")
            .1
            .total_energy();
        columns.push(
            dpm_reports
                .iter()
                .map(|(name, r)| (*name, r.total_energy().as_joules() / lru_energy.as_joules()))
                .collect::<Vec<_>>(),
        );
    }
    for (i, (name, oracle_ratio)) in columns[0].iter().enumerate() {
        let practical_ratio = columns[1][i].1;
        t.row([
            (*name).to_owned(),
            format!("{oracle_ratio:.3}"),
            format!("{practical_ratio:.3}"),
        ]);
        out.record(format!("{name}_oracle"), *oracle_ratio);
        out.record(format!("{name}_practical"), practical_ratio);
    }

    out.text = format!(
        "Figure 6{}: Disk energy on {} (normalized to LRU)\n\n{}",
        match kind {
            TraceKind::Oltp => "a",
            TraceKind::Cello => "b",
        },
        kind.name(),
        t.render()
    );
    out
}

/// Figure 6c: mean response time under Practical DPM, normalized to LRU,
/// for both traces — plus the p99 tail (beyond the paper, which reports
/// means only; the tail is where spin-up waits actually live).
#[must_use]
pub fn response(params: &Params) -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut t = Table::new(["policy", "oltp", "cello96", "oltp p99", "cello96 p99"]);
    // Both traces are sourced once up front; the eight (trace × policy)
    // runs then fan out flat over the executor.
    let traces: Vec<(TraceKind, TraceSource)> = [TraceKind::Oltp, TraceKind::Cello]
        .into_iter()
        .map(|kind| (kind, params.trace_source(kind)))
        .collect();
    // One bar list serves both traces; the infinite-cache bar is dropped
    // (response time is meaningless without evictions to slow it down).
    let bar_specs: Vec<(&'static str, PolicySpec, bool)> = bars(params)
        .into_iter()
        .filter(|(name, _, _)| *name != "infinite-cache")
        .collect();
    let points: Vec<(usize, &'static str, PolicySpec, bool)> = (0..traces.len())
        .flat_map(|ti| {
            bar_specs
                .iter()
                .map(move |(name, spec, inf)| (ti, *name, spec.clone(), *inf))
        })
        .collect();
    let bar_count = bar_specs.len();
    let reports: Vec<(&'static str, SimReport)> =
        sweep::over(params, points, |(ti, name, spec, inf)| {
            let (kind, trace) = &traces[*ti];
            (
                *name,
                run_bar(trace, *kind, DpmPolicy::Practical, spec, *inf),
            )
        });
    let mut per_kind = Vec::new();
    for kind_reports in reports.chunks(bar_count) {
        let lru = kind_reports
            .iter()
            .find(|(n, _)| *n == "lru")
            .expect("lru bar present")
            .1
            .mean_response()
            .as_secs_f64();
        per_kind.push(
            kind_reports
                .iter()
                .map(|(name, r)| {
                    (
                        *name,
                        r.mean_response().as_secs_f64() / lru,
                        r.response_quantile(0.99),
                    )
                })
                .collect::<Vec<_>>(),
        );
    }
    for (i, (name, oltp_ratio, oltp_p99)) in per_kind[0].iter().enumerate() {
        let (_, cello_ratio, cello_p99) = per_kind[1][i];
        t.row([
            (*name).to_owned(),
            format!("{oltp_ratio:.3}"),
            format!("{cello_ratio:.3}"),
            oltp_p99.to_string(),
            cello_p99.to_string(),
        ]);
        out.record(format!("{name}_oltp"), *oltp_ratio);
        out.record(format!("{name}_cello"), cello_ratio);
        out.record(format!("{name}_oltp_p99_s"), oltp_p99.as_secs_f64());
    }
    out.text = format!(
        "Figure 6c: Mean response time under Practical DPM (normalized to LRU),\nwith p99 tails (absolute; tails are ours, the paper reports means only)\n\n{}",
        t.render()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scale at which the cache actually fills and several PA-LRU epochs
    /// complete; magnitudes stay below full-scale (warm-up dominates) but
    /// the orderings must already hold.
    fn test_params() -> Params {
        Params {
            scale: 0.2,
            ..Params::quick()
        }
    }

    #[test]
    fn oltp_energy_ordering_matches_the_paper() {
        let o = energy(&test_params(), TraceKind::Oltp);
        // PA-LRU beats LRU; the infinite cache is the lower bound under
        // Oracle; OPG is at least as good as Belady on energy.
        assert!(o.metric("pa-lru_practical") < 0.998);
        assert!(o.metric("infinite-cache_oracle") <= o.metric("opg_oracle") + 0.01);
        assert!(o.metric("opg_oracle") <= o.metric("belady_oracle") + 1e-9);
    }

    #[test]
    fn response_improves_for_pa_lru_on_oltp() {
        // Needs a slightly longer run than the energy test: the response
        // win comes from *avoided spin-ups*, which only accumulate once
        // classification has settled.
        let o = response(&Params {
            scale: 0.35,
            ..Params::quick()
        });
        assert!(o.metric("pa-lru_oltp") < 0.97);
        assert!(o.metric("belady_oltp") < 1.0);
    }
}
