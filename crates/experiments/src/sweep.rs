//! Shared parallel executor for experiment sweeps.
//!
//! Every figure/table/ablation driver runs its independent sweep points
//! (cache sizes, epochs, spin-up costs, write ratios, …) through
//! [`over`], which fans the points out over a scoped-thread worker pool
//! and merges results **in input order**. Workers pull indices from a
//! shared atomic counter, so scheduling is dynamic, but because each
//! point's computation is deterministic and results are re-ordered by
//! index before returning, the output is byte-identical for any worker
//! count — `--jobs 1` and `--jobs 8` produce the same reports.
//!
//! Built on [`std::thread::scope`]: no extra dependencies, and the
//! closure may borrow the surrounding trace/config freely.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::Params;

/// Runs `f` over every item with the worker count from `params`
/// (see [`Params::resolved_jobs`]), returning results in item order.
///
/// # Panics
///
/// Propagates a panic from any worker (the whole sweep fails, like the
/// serial loop would).
pub fn over<T, R, F>(params: &Params, items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run(params.resolved_jobs(), items, f)
}

/// Runs `f` over every item on exactly `jobs` worker threads (clamped to
/// the item count; `jobs <= 1` runs inline with no threads), returning
/// results in item order regardless of completion order.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    // Completion order depends on scheduling; the caller's does not.
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(run(jobs, items.clone(), |&x| x * x), expect, "jobs {jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        assert_eq!(run(8, Vec::<u32>::new(), |&x| x), Vec::<u32>::new());
        assert_eq!(run(8, vec![7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn closures_may_borrow_the_environment() {
        let base = [10u64, 20, 30];
        let out = run(2, vec![0usize, 1, 2], |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panics_propagate() {
        let _ = run(2, vec![0u32, 1], |&x| {
            assert!(x != 1, "boom");
            x
        });
    }
}
