//! Shared experiment parameters.

use std::io;
use std::sync::OnceLock;

use pc_cache::policy::PaLruConfig;
use pc_diskmodel::PowerModel;
use pc_sim::{PolicySpec, SimConfig, SimReport};
use pc_trace::{CelloConfig, OltpConfig, Trace};
use pc_tracefile::MappedTrace;
use pc_units::SimDuration;

/// Which of the paper's two real-system workloads to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The TPC-C / Microsoft SQL Server trace (21 disks, 22% writes).
    Oltp,
    /// HP's Cello96 file-server trace (19 disks, 38% writes).
    Cello,
}

impl TraceKind {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Oltp => "oltp",
            TraceKind::Cello => "cello96",
        }
    }
}

/// Global experiment parameters: a scale factor on trace lengths, the
/// RNG seed, and the sweep worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Multiplier on every experiment's default request count. 1.0 =
    /// paper-comparable runs (minutes); small values = smoke tests.
    pub scale: f64,
    /// Seed for all trace generation.
    pub seed: u64,
    /// Worker threads for parameter sweeps (see [`crate::sweep`]);
    /// 0 = one per available core. Results are identical for any value.
    pub jobs: usize,
    /// File-backed workload override: when set, [`trace`](Self::trace)
    /// reads this binary `.pct` file (see [`crate::traceio`] and
    /// `pc-server --capture`) instead of generating the requested
    /// family, so any experiment can replay a captured or exported
    /// stream. `scale` and `seed` do not apply to a file-backed trace.
    pub trace_file: Option<std::path::PathBuf>,
}

impl Params {
    /// Paper-comparable scale.
    #[must_use]
    pub fn paper() -> Self {
        Params {
            scale: 1.0,
            seed: 42,
            jobs: 0,
            trace_file: None,
        }
    }

    /// A fast, CI-friendly scale (a few percent of the paper's lengths;
    /// shapes still hold, bars are noisier).
    #[must_use]
    pub fn quick() -> Self {
        Params {
            scale: 0.05,
            seed: 42,
            jobs: 0,
            trace_file: None,
        }
    }

    /// Sets the sweep worker count (0 = one per available core).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Replays a binary `.pct` trace file in place of every generated
    /// workload (see [`Self::trace_file`]).
    #[must_use]
    pub fn with_trace_file(mut self, path: std::path::PathBuf) -> Self {
        self.trace_file = Some(path);
        self
    }

    /// The effective sweep worker count: `jobs`, or the machine's
    /// available parallelism when `jobs` is 0.
    #[must_use]
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }

    /// Scales a default request count, with a floor to keep toy runs
    /// meaningful.
    #[must_use]
    pub fn requests(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(500)
    }

    /// The OLTP-like trace at this scale.
    #[must_use]
    pub fn oltp_trace(&self) -> Trace {
        OltpConfig::default()
            .with_requests(self.requests(72_000))
            .generate(self.seed)
    }

    /// The Cello-like trace at this scale. The base length (400 000
    /// requests ≈ 37 minutes) spans multiple PA-LRU epochs.
    #[must_use]
    pub fn cello_trace(&self) -> Trace {
        CelloConfig::default()
            .with_requests(self.requests(400_000))
            .generate(self.seed)
    }

    /// The trace for a [`TraceKind`] — or the contents of
    /// [`trace_file`](Self::trace_file) regardless of `kind` when the
    /// file override is set.
    ///
    /// # Panics
    ///
    /// Panics when the override file cannot be read or fails format/CRC
    /// validation: a corrupt input must stop the experiment, not shape
    /// its results.
    #[must_use]
    pub fn trace(&self, kind: TraceKind) -> Trace {
        if let Some(path) = &self.trace_file {
            return pc_tracefile::read_trace(path)
                .unwrap_or_else(|e| panic!("trace file {}: {e}", path.display()));
        }
        match kind {
            TraceKind::Oltp => self.oltp_trace(),
            TraceKind::Cello => self.cello_trace(),
        }
    }

    /// The trace for a [`TraceKind`] as a [`TraceSource`]: generated
    /// workloads materialize as before, but a time-sorted
    /// [`trace_file`](Self::trace_file) override memory-maps instead —
    /// on-line policies then stream straight off the map with O(1)
    /// steady-state memory and no upfront sort. An unsorted override
    /// (e.g. a raw multi-connection capture) falls back to the
    /// materialize-and-sort path of [`trace`](Self::trace).
    ///
    /// # Panics
    ///
    /// Panics when the override file cannot be read or fails structural
    /// validation, like [`trace`](Self::trace).
    #[must_use]
    pub fn trace_source(&self, kind: TraceKind) -> TraceSource {
        if let Some(path) = &self.trace_file {
            let map = MappedTrace::open(path)
                .unwrap_or_else(|e| panic!("trace file {}: {e}", path.display()));
            if map.is_time_sorted() {
                return TraceSource::from_map(map);
            }
            drop(map);
            return TraceSource::from_trace(
                pc_tracefile::read_trace(path)
                    .unwrap_or_else(|e| panic!("trace file {}: {e}", path.display())),
            );
        }
        TraceSource::from_trace(match kind {
            TraceKind::Oltp => self.oltp_trace(),
            TraceKind::Cello => self.cello_trace(),
        })
    }

    /// PA-LRU's epoch, scaled with the trace length so down-scaled runs
    /// keep the paper's ~8-epochs-per-trace proportion (15 minutes at
    /// full scale, never below one minute).
    #[must_use]
    pub fn pa_epoch(&self) -> SimDuration {
        SimDuration::from_secs_f64((900.0 * self.scale).clamp(60.0, 900.0))
    }

    /// The PA-LRU policy spec at this scale: the paper's parameters with
    /// the scaled epoch.
    #[must_use]
    pub fn pa_policy(&self, power: &PowerModel) -> PolicySpec {
        PolicySpec::PaLruWith(PaLruConfig {
            epoch: self.pa_epoch(),
            ..PaLruConfig::for_power_model(power)
        })
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::paper()
    }
}

/// A trace ready to simulate: either a fully materialized [`Trace`] or
/// a lazily-verified memory map of a time-sorted `.pct` file.
///
/// The point of the distinction is
/// [`run_replacement`](TraceSource::run_replacement): a mapped source streams on-line
/// policies straight off the file — no `Vec` of records, no upfront
/// sort, O(1) steady-state memory — and only materializes (once, cached)
/// for the off-line policies (Belady, OPG) that genuinely need the
/// future. The type is `Sync`, so a [`crate::sweep`] can fan one source
/// out across worker threads; the map's verification bitmap is shared,
/// so each chunk is checksummed at most once across the whole sweep.
#[derive(Debug)]
pub struct TraceSource {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    Mem(Trace),
    Mapped {
        map: MappedTrace,
        /// Materialized on first off-line-policy run, then shared.
        mem: OnceLock<Trace>,
    },
}

impl TraceSource {
    /// Wraps an in-memory trace.
    #[must_use]
    pub fn from_trace(trace: Trace) -> TraceSource {
        TraceSource {
            repr: Repr::Mem(trace),
        }
    }

    /// Wraps a memory-mapped file. The map must be time-sorted in file
    /// order — the streaming simulator is a discrete-event timeline.
    ///
    /// # Panics
    ///
    /// Panics if the map is not time-sorted; callers route unsorted
    /// files through [`pc_tracefile::read_trace`] instead.
    #[must_use]
    pub fn from_map(map: MappedTrace) -> TraceSource {
        assert!(
            map.is_time_sorted(),
            "mapped trace sources must be time-sorted; use read_trace for unsorted captures"
        );
        TraceSource {
            repr: Repr::Mapped {
                map,
                mem: OnceLock::new(),
            },
        }
    }

    /// Number of disks the trace addresses.
    #[must_use]
    pub fn disk_count(&self) -> u32 {
        match &self.repr {
            Repr::Mem(t) => t.disk_count(),
            Repr::Mapped { map, .. } => map.disk_count(),
        }
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> u64 {
        match &self.repr {
            Repr::Mem(t) => t.len() as u64,
            Repr::Mapped { map, .. } => map.len(),
        }
    }

    /// Returns `true` for an empty trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`run_replacement`](Self::run_replacement) streams the
    /// given policy off a map instead of materializing.
    #[must_use]
    pub fn streams(&self, spec: &PolicySpec) -> bool {
        matches!(&self.repr, Repr::Mapped { .. }) && !spec.needs_future()
    }

    /// The materialized trace — immediate for an in-memory source,
    /// collected from the map (once, then cached) for a mapped one.
    ///
    /// # Panics
    ///
    /// Panics if the map's lazy CRC verification finds corruption while
    /// collecting: a corrupt input must stop the experiment, not shape
    /// its results.
    #[must_use]
    pub fn as_trace(&self) -> &Trace {
        match &self.repr {
            Repr::Mem(t) => t,
            Repr::Mapped { map, mem } => mem.get_or_init(|| {
                let records = map
                    .records()
                    .collect::<io::Result<Vec<_>>>()
                    .unwrap_or_else(|e| panic!("mapped trace: {e}"));
                // `from_map` guaranteed sortedness, so no sort here.
                Trace::from_records(map.disk_count(), records)
            }),
        }
    }

    /// Runs a replacement-policy experiment against this source: on-line
    /// policies on a mapped source stream straight off the file via
    /// [`pc_sim::run_replacement_stream`]; everything else goes through
    /// [`pc_sim::run_replacement`] on the materialized trace. Both paths
    /// produce byte-identical [`SimReport`]s for the same input.
    ///
    /// # Panics
    ///
    /// Panics if the map's lazy CRC verification finds corruption
    /// mid-stream — same contract as [`Params::trace`].
    #[must_use]
    pub fn run_replacement(&self, spec: &PolicySpec, config: &SimConfig) -> SimReport {
        match &self.repr {
            Repr::Mapped { map, .. } if !spec.needs_future() => pc_sim::run_replacement_stream(
                map.disk_count(),
                map.records()
                    .map(|r| r.unwrap_or_else(|e| panic!("mapped trace: {e}"))),
                spec,
                config,
            ),
            _ => pc_sim::run_replacement(self.as_trace(), spec, config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_applies_with_floor() {
        let p = Params {
            scale: 0.01,
            seed: 1,
            jobs: 0,
            trace_file: None,
        };
        assert_eq!(p.requests(72_000), 720);
        assert_eq!(p.requests(1_000), 500, "floor applies");
        assert_eq!(Params::paper().requests(72_000), 72_000);
    }

    #[test]
    fn traces_match_kinds() {
        let p = Params::quick();
        assert_eq!(p.trace(TraceKind::Oltp).disk_count(), 21);
        assert_eq!(p.trace(TraceKind::Cello).disk_count(), 19);
    }
}
