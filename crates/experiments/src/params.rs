//! Shared experiment parameters.

use pc_cache::policy::PaLruConfig;
use pc_diskmodel::PowerModel;
use pc_sim::PolicySpec;
use pc_trace::{CelloConfig, OltpConfig, Trace};
use pc_units::SimDuration;

/// Which of the paper's two real-system workloads to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The TPC-C / Microsoft SQL Server trace (21 disks, 22% writes).
    Oltp,
    /// HP's Cello96 file-server trace (19 disks, 38% writes).
    Cello,
}

impl TraceKind {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Oltp => "oltp",
            TraceKind::Cello => "cello96",
        }
    }
}

/// Global experiment parameters: a scale factor on trace lengths, the
/// RNG seed, and the sweep worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Multiplier on every experiment's default request count. 1.0 =
    /// paper-comparable runs (minutes); small values = smoke tests.
    pub scale: f64,
    /// Seed for all trace generation.
    pub seed: u64,
    /// Worker threads for parameter sweeps (see [`crate::sweep`]);
    /// 0 = one per available core. Results are identical for any value.
    pub jobs: usize,
    /// File-backed workload override: when set, [`trace`](Self::trace)
    /// reads this binary `.pct` file (see [`crate::traceio`] and
    /// `pc-server --capture`) instead of generating the requested
    /// family, so any experiment can replay a captured or exported
    /// stream. `scale` and `seed` do not apply to a file-backed trace.
    pub trace_file: Option<std::path::PathBuf>,
}

impl Params {
    /// Paper-comparable scale.
    #[must_use]
    pub fn paper() -> Self {
        Params {
            scale: 1.0,
            seed: 42,
            jobs: 0,
            trace_file: None,
        }
    }

    /// A fast, CI-friendly scale (a few percent of the paper's lengths;
    /// shapes still hold, bars are noisier).
    #[must_use]
    pub fn quick() -> Self {
        Params {
            scale: 0.05,
            seed: 42,
            jobs: 0,
            trace_file: None,
        }
    }

    /// Sets the sweep worker count (0 = one per available core).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Replays a binary `.pct` trace file in place of every generated
    /// workload (see [`Self::trace_file`]).
    #[must_use]
    pub fn with_trace_file(mut self, path: std::path::PathBuf) -> Self {
        self.trace_file = Some(path);
        self
    }

    /// The effective sweep worker count: `jobs`, or the machine's
    /// available parallelism when `jobs` is 0.
    #[must_use]
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }

    /// Scales a default request count, with a floor to keep toy runs
    /// meaningful.
    #[must_use]
    pub fn requests(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(500)
    }

    /// The OLTP-like trace at this scale.
    #[must_use]
    pub fn oltp_trace(&self) -> Trace {
        OltpConfig::default()
            .with_requests(self.requests(72_000))
            .generate(self.seed)
    }

    /// The Cello-like trace at this scale. The base length (400 000
    /// requests ≈ 37 minutes) spans multiple PA-LRU epochs.
    #[must_use]
    pub fn cello_trace(&self) -> Trace {
        CelloConfig::default()
            .with_requests(self.requests(400_000))
            .generate(self.seed)
    }

    /// The trace for a [`TraceKind`] — or the contents of
    /// [`trace_file`](Self::trace_file) regardless of `kind` when the
    /// file override is set.
    ///
    /// # Panics
    ///
    /// Panics when the override file cannot be read or fails format/CRC
    /// validation: a corrupt input must stop the experiment, not shape
    /// its results.
    #[must_use]
    pub fn trace(&self, kind: TraceKind) -> Trace {
        if let Some(path) = &self.trace_file {
            return pc_tracefile::read_trace(path)
                .unwrap_or_else(|e| panic!("trace file {}: {e}", path.display()));
        }
        match kind {
            TraceKind::Oltp => self.oltp_trace(),
            TraceKind::Cello => self.cello_trace(),
        }
    }

    /// PA-LRU's epoch, scaled with the trace length so down-scaled runs
    /// keep the paper's ~8-epochs-per-trace proportion (15 minutes at
    /// full scale, never below one minute).
    #[must_use]
    pub fn pa_epoch(&self) -> SimDuration {
        SimDuration::from_secs_f64((900.0 * self.scale).clamp(60.0, 900.0))
    }

    /// The PA-LRU policy spec at this scale: the paper's parameters with
    /// the scaled epoch.
    #[must_use]
    pub fn pa_policy(&self, power: &PowerModel) -> PolicySpec {
        PolicySpec::PaLruWith(PaLruConfig {
            epoch: self.pa_epoch(),
            ..PaLruConfig::for_power_model(power)
        })
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_applies_with_floor() {
        let p = Params {
            scale: 0.01,
            seed: 1,
            jobs: 0,
            trace_file: None,
        };
        assert_eq!(p.requests(72_000), 720);
        assert_eq!(p.requests(1_000), 500, "floor applies");
        assert_eq!(Params::paper().requests(72_000), 72_000);
    }

    #[test]
    fn traces_match_kinds() {
        let p = Params::quick();
        assert_eq!(p.trace(TraceKind::Oltp).disk_count(), 21);
        assert_eq!(p.trace(TraceKind::Cello).disk_count(), 19);
    }
}
