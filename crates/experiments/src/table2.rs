//! Table 2 — characteristics of the (emulated) evaluation traces.

use pc_trace::TraceStats;

use crate::{sweep, ExperimentOutput, Params, Table, TraceKind};

/// Prints the Table-2 columns (disks, write fraction, mean inter-arrival)
/// for the generated OLTP-like and Cello-like traces, plus the cold-miss
/// fraction §5.2 quotes for Cello.
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let mut t = Table::new([
        "trace",
        "requests",
        "disks",
        "writes",
        "mean inter-arrival",
        "cold fraction",
    ]);
    let mut out = ExperimentOutput::default();
    let kinds = vec![TraceKind::Oltp, TraceKind::Cello];
    let stats_per_kind = sweep::over(params, kinds.clone(), |&kind| {
        TraceStats::of(&params.trace(kind))
    });
    for (kind, stats) in kinds.into_iter().zip(stats_per_kind) {
        t.row([
            kind.name().to_owned(),
            stats.requests.to_string(),
            stats.disks.to_string(),
            format!("{:.0}%", stats.write_fraction * 100.0),
            stats.mean_interarrival.to_string(),
            format!("{:.0}%", stats.cold_fraction * 100.0),
        ]);
        out.record(format!("{}_writes", kind.name()), stats.write_fraction);
        out.record(
            format!("{}_gap_ms", kind.name()),
            stats.mean_interarrival.as_millis_f64(),
        );
        out.record(format!("{}_cold", kind.name()), stats.cold_fraction);
    }
    out.text = format!(
        "Table 2: Trace characteristics (generated)\n\n{}",
        t.render()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_characteristics() {
        let o = run(&Params::quick());
        assert!((o.metric("oltp_writes") - 0.22).abs() < 0.04);
        assert!((o.metric("cello96_writes") - 0.38).abs() < 0.04);
        assert!((o.metric("oltp_gap_ms") - 99.0).abs() < 20.0);
        assert!((o.metric("cello96_gap_ms") - 5.61).abs() < 1.2);
        assert!((o.metric("cello96_cold") - 0.64).abs() < 0.08);
    }
}
