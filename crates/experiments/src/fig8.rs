//! Figure 8 — PA-LRU's energy savings over LRU as a function of the
//! standby→active spin-up energy.

use pc_diskmodel::DiskPowerSpec;
use pc_sim::{run_replacement, PolicySpec, SimConfig};
use pc_units::Joules;

use crate::{ExperimentOutput, Params, Table};

/// The paper's sweep points (joules).
pub const SPIN_UP_COSTS: [f64; 7] = [33.75, 67.5, 101.25, 135.0, 202.5, 270.0, 675.0];

/// Sweeps the spin-up energy (intermediate-mode costs re-derive from the
/// linear model, and the Practical-DPM thresholds shift with the
/// break-even times) and reports PA-LRU's percentage energy savings over
/// LRU on the OLTP-like trace.
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let trace = params.oltp_trace();
    let mut t = Table::new(["spin-up cost", "pa-lru saving over lru"]);
    let mut out = ExperimentOutput::default();
    for cost in SPIN_UP_COSTS {
        let spec = DiskPowerSpec::ultrastar_36z15().with_spin_up_energy(Joules::new(cost));
        let cfg = SimConfig::default().with_power_spec(spec);
        let lru = run_replacement(&trace, &PolicySpec::Lru, &cfg);
        let pa = run_replacement(&trace, &params.pa_policy(&cfg.power_model()), &cfg);
        let saving = pa.saving_over(&lru);
        t.row([format!("{cost}J"), format!("{saving:.1}%")]);
        out.record(format!("saving_at_{cost}"), saving);
    }
    out.text = format!(
        "Figure 8: PA-LRU energy savings over LRU vs spin-up cost (OLTP)\n\n{}",
        t.render()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_positive_and_stable_in_the_scsi_band() {
        let o = run(&Params {
            scale: 0.2,
            ..Params::quick()
        });
        // The paper: savings are fairly stable between 67.5 J and 270 J
        // and shrink at cheap spin-ups. At test scale the warm-up phase
        // dominates, so only the weak form of both claims is asserted;
        // full-scale magnitudes are recorded in EXPERIMENTS.md.
        for cost in [67.5, 135.0, 270.0] {
            assert!(
                o.metric(&format!("saving_at_{cost}")) > 0.5,
                "saving at {cost} J too small"
            );
        }
        assert!(o.metric("saving_at_135") >= o.metric("saving_at_33.75"));
    }
}
