//! Figure 8 — PA-LRU's energy savings over LRU as a function of the
//! standby→active spin-up energy.

use pc_diskmodel::DiskPowerSpec;
use pc_sim::{run_replacement, PolicySpec, SimConfig};
use pc_units::Joules;

use crate::{sweep, ExperimentOutput, Params, Table};

/// The paper's sweep points (joules).
pub const SPIN_UP_COSTS: [f64; 7] = [33.75, 67.5, 101.25, 135.0, 202.5, 270.0, 675.0];

/// Sweeps the spin-up energy (intermediate-mode costs re-derive from the
/// linear model, and the Practical-DPM thresholds shift with the
/// break-even times) and reports PA-LRU's percentage energy savings over
/// LRU on the OLTP-like trace.
#[must_use]
pub fn run(params: &Params) -> ExperimentOutput {
    let trace = params.oltp_trace();
    let mut t = Table::new(["spin-up cost", "pa-lru saving over lru"]);
    let mut out = ExperimentOutput::default();
    // Each (cost, policy) pair is an independent simulation: fan out all
    // fourteen and pair LRU/PA-LRU back up per cost.
    let points: Vec<(f64, bool)> = SPIN_UP_COSTS
        .into_iter()
        .flat_map(|cost| [(cost, false), (cost, true)])
        .collect();
    let reports = sweep::over(params, points, |&(cost, pa)| {
        let spec = DiskPowerSpec::ultrastar_36z15().with_spin_up_energy(Joules::new(cost));
        let cfg = SimConfig::default().with_power_spec(spec);
        let policy = if pa {
            params.pa_policy(&cfg.power_model())
        } else {
            PolicySpec::Lru
        };
        run_replacement(&trace, &policy, &cfg)
    });
    for (cost, pair) in SPIN_UP_COSTS.into_iter().zip(reports.chunks(2)) {
        let saving = pair[1].saving_over(&pair[0]);
        t.row([format!("{cost}J"), format!("{saving:.1}%")]);
        out.record(format!("saving_at_{cost}"), saving);
    }
    out.text = format!(
        "Figure 8: PA-LRU energy savings over LRU vs spin-up cost (OLTP)\n\n{}",
        t.render()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_positive_and_stable_in_the_scsi_band() {
        let o = run(&Params {
            scale: 0.2,
            ..Params::quick()
        });
        // The paper: savings are fairly stable between 67.5 J and 270 J
        // and shrink at cheap spin-ups. At test scale the warm-up phase
        // dominates, so only the weak form of both claims is asserted;
        // full-scale magnitudes are recorded in EXPERIMENTS.md.
        for cost in [67.5, 135.0, 270.0] {
            assert!(
                o.metric(&format!("saving_at_{cost}")) > 0.5,
                "saving at {cost} J too small"
            );
        }
        assert!(o.metric("saving_at_135") >= o.metric("saving_at_33.75"));
    }
}
