//! Micro-benchmarks of the payload data-plane kernels: the slice-by-8
//! CRC32C against its bit-at-a-time oracle (the DESIGN.md §8 speedup
//! claim), plus the deterministic disk-image fill the loadgen and the
//! slab store share. Throughput is reported in bytes so the numbers
//! read directly against memory bandwidth.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pc_crc::{crc32c, crc32c_append, crc32c_bitwise};

/// The serving block size (matches `protocol::DEFAULT_BLOCK_BYTES`) and
/// a larger streaming size to show the kernel is not warmup-bound.
const SIZES: [usize; 2] = [4096, 65536];

fn buffer(len: usize) -> Vec<u8> {
    // Arbitrary non-trivial contents; CRC cost is data-independent but
    // an all-zero buffer invites surprising compiler folds.
    (0..len).map(|i| (i.wrapping_mul(31) % 251) as u8).collect()
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc");
    for size in SIZES {
        let buf = buffer(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("slice_by_8/{size}"), |b| {
            b.iter(|| black_box(crc32c(black_box(&buf))))
        });
        g.bench_function(format!("bitwise/{size}"), |b| {
            b.iter(|| black_box(crc32c_bitwise(black_box(&buf))))
        });
    }
    // Streaming: the WRITE ingest path folds per-block digests with
    // `crc32c_append`; pin that it costs no more than one-shot.
    let buf = buffer(4096);
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("append_two_halves/4096", |b| {
        b.iter(|| {
            let head = crc32c(black_box(&buf[..2048]));
            black_box(crc32c_append(head, black_box(&buf[2048..])))
        })
    });
    g.finish();
}

fn bench_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk-image");
    let mut buf = vec![0u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("fill_block/4096", |b| {
        let mut block = 0u64;
        b.iter(|| {
            block = block.wrapping_add(1);
            pc_server::fill_block(7, black_box(block), &mut buf);
            black_box(buf[0])
        })
    });
    g.finish();
}

criterion_group!(crc_benches, bench_crc, bench_fill);
criterion_main!(crc_benches);
