//! Micro-benchmarks of the substrate components: power-model queries,
//! the disk state machine, the Bloom filter, the interval histogram, and
//! trace generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pc_cache::policy::{Opg, OpgDpm};
use pc_cache::{BloomFilter, IntervalHistogram};
use pc_diskmodel::{DiskPowerSpec, PowerModel, ServiceModel, ServiceRequest};
use pc_disksim::{DiskSim, DpmPolicy};
use pc_trace::{CelloConfig, OltpConfig, SyntheticConfig};
use pc_units::{BlockId, BlockNo, DiskId, Joules, SimDuration, SimTime};

fn bench_power_model(c: &mut Criterion) {
    let model = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
    let mut g = c.benchmark_group("power-model");
    g.bench_function("lower_envelope", |b| {
        let mut s = 1u64;
        b.iter(|| {
            s = s % 500 + 1;
            black_box(model.lower_envelope(SimDuration::from_secs(s)))
        })
    });
    g.bench_function("practical_idle_energy", |b| {
        let mut s = 1u64;
        b.iter(|| {
            s = s % 500 + 1;
            black_box(model.practical_idle_energy(SimDuration::from_secs(s)))
        })
    });
    g.bench_function("build_multi_speed", |b| {
        b.iter(|| black_box(PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())))
    });
    g.finish();
}

/// The precomputed [`pc_diskmodel::IdleEnergyTable`] segment lookups
/// against the mode/ladder scans they replaced (the `*_scan` twins are
/// bit-identical by construction — see the pricing equivalence tests —
/// so these pairs isolate the speedup itself). Gaps sweep 0–600 s in
/// pseudo-random microsecond steps, covering every table segment.
fn bench_pricing_table_vs_scan(c: &mut Criterion) {
    let model = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
    let next_gap = |s: &mut u64| {
        *s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        SimDuration::from_micros(*s % 600_000_000)
    };
    let mut g = c.benchmark_group("pricing");
    g.bench_function("lower_envelope/table", |b| {
        let mut s = 1u64;
        b.iter(|| black_box(model.lower_envelope(next_gap(&mut s))))
    });
    g.bench_function("lower_envelope/scan", |b| {
        let mut s = 1u64;
        b.iter(|| black_box(model.lower_envelope_scan(next_gap(&mut s))))
    });
    g.bench_function("practical_idle_energy/table", |b| {
        let mut s = 1u64;
        b.iter(|| black_box(model.practical_idle_energy(next_gap(&mut s))))
    });
    g.bench_function("practical_idle_energy/scan", |b| {
        let mut s = 1u64;
        b.iter(|| black_box(model.practical_idle_energy_scan(next_gap(&mut s))))
    });
    // The full OPG penalty (three idle-energy prices per call) over real
    // deterministic-miss times from a cello-like trace.
    let trace = CelloConfig::default().with_requests(2_000).generate(1);
    let disk = DiskId::new(0);
    for (name, scan) in [("penalty_at/table", false), ("penalty_at/scan", true)] {
        let opg = Opg::new(&trace, model.clone(), OpgDpm::Practical, Joules::ZERO);
        g.bench_function(name, |b| {
            let mut s = 1u64;
            b.iter(|| {
                let x = next_gap(&mut s).as_micros();
                black_box(if scan {
                    opg.penalty_probe_scan(disk, x)
                } else {
                    opg.penalty_probe(disk, x)
                })
            })
        });
    }
    g.finish();
}

fn bench_disk_state_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk-sim");
    g.throughput(Throughput::Elements(1_000));
    for policy in [DpmPolicy::Practical, DpmPolicy::Oracle] {
        g.bench_function(format!("{policy:?}-1000-requests"), |b| {
            b.iter(|| {
                let mut disk = DiskSim::new(
                    DiskId::new(0),
                    PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15()),
                    ServiceModel::ultrastar_36z15(),
                    policy,
                );
                let mut t = SimTime::from_secs(1);
                for i in 0..1_000u64 {
                    let s = disk.service(t, ServiceRequest::single(BlockNo::new(i * 37)));
                    t = s.completion + SimDuration::from_secs((i % 40) + 1);
                }
                black_box(disk.report().total_energy())
            })
        });
    }
    g.finish();
}

fn bench_bloom_and_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier-parts");
    g.throughput(Throughput::Elements(1));
    g.bench_function("bloom_insert_check", |b| {
        let mut bloom = BloomFilter::new(1 << 22, 4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(bloom.insert_check(BlockId::new(DiskId::new(0), BlockNo::new(i % 100_000))))
        })
    });
    g.bench_function("histogram_record_quantile", |b| {
        let mut h = IntervalHistogram::standard();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            h.record(SimDuration::from_millis(i % 60_000 + 1));
            black_box(h.quantile(0.8))
        })
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-generation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("oltp_like", |b| {
        b.iter(|| black_box(OltpConfig::default().with_requests(10_000).generate(1)))
    });
    g.bench_function("cello_like", |b| {
        b.iter(|| black_box(CelloConfig::default().with_requests(10_000).generate(1)))
    });
    g.bench_function("synthetic_table3", |b| {
        b.iter(|| black_box(SyntheticConfig::default().with_requests(10_000).generate(1)))
    });
    g.finish();
}

criterion_group!(
    components,
    bench_power_model,
    bench_pricing_table_vs_scan,
    bench_disk_state_machine,
    bench_bloom_and_histogram,
    bench_trace_generation
);
criterion_main!(components);
