//! Criterion harness over every table/figure reproduction driver.
//!
//! Each benchmark runs the corresponding experiment kernel at a reduced
//! scale (the `repro` binary regenerates the full-scale numbers); the
//! measured times document the cost of each reproduction and guard
//! against performance regressions in the simulation stack.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pc_experiments::{fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
use pc_experiments::{table1, table2, table3, Params, TraceKind};

fn params() -> Params {
    Params {
        scale: 0.05,
        seed: 42,
        jobs: 0,
        trace_file: None,
    }
}

fn bench_static_artifacts(c: &mut Criterion) {
    let p = params();
    let mut g = c.benchmark_group("static");
    g.bench_function("table1", |b| b.iter(|| black_box(table1::run(&p))));
    g.bench_function("table3", |b| b.iter(|| black_box(table3::run())));
    g.bench_function("fig2_envelope", |b| b.iter(|| black_box(fig2::run(&p))));
    g.bench_function("fig4_savings", |b| b.iter(|| black_box(fig4::run(&p))));
    g.finish();
}

fn bench_fig3_optimal_search(c: &mut Criterion) {
    c.bench_function("fig3_belady_vs_optimal", |b| {
        b.iter(|| black_box(fig3::run()))
    });
}

fn bench_trace_characterization(c: &mut Criterion) {
    let p = params();
    let mut g = c.benchmark_group("traces");
    g.sample_size(10);
    g.bench_function("table2_characteristics", |b| {
        b.iter(|| black_box(table2::run(&p)))
    });
    g.bench_function("fig5_interval_cdf", |b| b.iter(|| black_box(fig5::run(&p))));
    g.finish();
}

fn bench_replacement_experiments(c: &mut Criterion) {
    let p = params();
    let mut g = c.benchmark_group("replacement");
    g.sample_size(10);
    g.bench_function("fig6a_energy_oltp", |b| {
        b.iter(|| black_box(fig6::energy(&p, TraceKind::Oltp)))
    });
    g.bench_function("fig6b_energy_cello", |b| {
        b.iter(|| black_box(fig6::energy(&p, TraceKind::Cello)))
    });
    g.bench_function("fig6c_response", |b| {
        b.iter(|| black_box(fig6::response(&p)))
    });
    g.bench_function("fig7_disk_breakdown", |b| {
        b.iter(|| black_box(fig7::run(&p)))
    });
    g.bench_function("fig8_spinup_sweep", |b| b.iter(|| black_box(fig8::run(&p))));
    g.finish();
}

fn bench_write_policy_experiments(c: &mut Criterion) {
    let p = Params {
        scale: 0.01,
        ..params()
    };
    let mut g = c.benchmark_group("write-policies");
    g.sample_size(10);
    g.bench_function("fig9_by_write_ratio", |b| {
        b.iter(|| black_box(fig9::by_write_ratio(&p)))
    });
    g.bench_function("fig9_by_interarrival", |b| {
        b.iter(|| black_box(fig9::by_interarrival(&p)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_static_artifacts,
    bench_fig3_optimal_search,
    bench_trace_characterization,
    bench_replacement_experiments,
    bench_write_policy_experiments
);
criterion_main!(figures);
