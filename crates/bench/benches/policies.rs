//! Replacement-policy throughput: cache accesses per second for each
//! policy on a fixed OLTP-like trace. OPG's indexed eviction engine is
//! benchmarked against its naive reference to document the speedup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pc_cache::policy::{
    ArcPolicy, Belady, Fifo, Lirs, Lru, Mq, Opg, OpgDpm, PaLru, PaLruConfig, TwoQ,
};
use pc_cache::{BlockCache, ReplacementPolicy, WritePolicy};
use pc_diskmodel::{DiskPowerSpec, PowerModel};
use pc_trace::{OltpConfig, Trace};
use pc_units::Joules;

const REQUESTS: usize = 20_000;
const CAPACITY: usize = 1_024;

fn trace() -> Trace {
    OltpConfig::default().with_requests(REQUESTS).generate(1)
}

fn power() -> PowerModel {
    PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())
}

fn drive(trace: &Trace, policy: Box<dyn ReplacementPolicy>) -> u64 {
    let mut cache = BlockCache::new(CAPACITY, policy, WritePolicy::WriteBack);
    let mut effects = Vec::new();
    let mut misses = 0;
    for r in trace {
        if !cache.access(r, |_| false, &mut effects).hit {
            misses += 1;
        }
    }
    misses
}

fn bench_policies(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("policy-throughput");
    g.throughput(Throughput::Elements(REQUESTS as u64));
    g.sample_size(10);
    g.bench_function("lru", |b| {
        b.iter(|| black_box(drive(&t, Box::new(Lru::new()))))
    });
    g.bench_function("fifo", |b| {
        b.iter(|| black_box(drive(&t, Box::new(Fifo::new()))))
    });
    g.bench_function("pa-lru", |b| {
        b.iter(|| black_box(drive(&t, Box::new(PaLru::new(PaLruConfig::default())))))
    });
    g.bench_function("arc", |b| {
        b.iter(|| black_box(drive(&t, Box::new(ArcPolicy::new(CAPACITY)))))
    });
    g.bench_function("mq", |b| {
        b.iter(|| black_box(drive(&t, Box::new(Mq::new(CAPACITY)))))
    });
    g.bench_function("lirs", |b| {
        b.iter(|| black_box(drive(&t, Box::new(Lirs::new(CAPACITY)))))
    });
    g.bench_function("2q", |b| {
        b.iter(|| black_box(drive(&t, Box::new(TwoQ::new(CAPACITY)))))
    });
    g.bench_function("belady", |b| {
        b.iter(|| black_box(drive(&t, Box::new(Belady::new(&t)))))
    });
    g.bench_function("opg-indexed", |b| {
        b.iter(|| {
            black_box(drive(
                &t,
                Box::new(Opg::new(&t, power(), OpgDpm::Oracle, Joules::ZERO)),
            ))
        })
    });
    g.finish();
}

fn bench_opg_engines(c: &mut Criterion) {
    // Smaller trace: the naive engine is O(cache) per eviction.
    let t = OltpConfig::default().with_requests(4_000).generate(1);
    let mut g = c.benchmark_group("opg-engine");
    g.sample_size(10);
    g.bench_function("indexed", |b| {
        b.iter(|| {
            black_box(drive(
                &t,
                Box::new(Opg::new(&t, power(), OpgDpm::Oracle, Joules::ZERO)),
            ))
        })
    });
    g.bench_function("naive-rescan", |b| {
        b.iter(|| {
            black_box(drive(
                &t,
                Box::new(Opg::new(&t, power(), OpgDpm::Oracle, Joules::ZERO).with_naive_eviction()),
            ))
        })
    });
    g.finish();
}

criterion_group!(policies, bench_policies, bench_opg_engines);
criterion_main!(policies);
