//! Criterion harness over the ablation sweeps (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pc_experiments::{ablations, Params};

fn params() -> Params {
    Params {
        scale: 0.05,
        seed: 42,
        jobs: 0,
        trace_file: None,
    }
}

fn bench_ablations(c: &mut Criterion) {
    let p = params();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("opg_epsilon_sweep", |b| {
        b.iter(|| black_box(ablations::epsilon_sweep(&p)))
    });
    g.bench_function("pa_lru_sensitivity", |b| {
        b.iter(|| black_box(ablations::pa_sensitivity(&p)))
    });
    g.bench_function("mode_count", |b| {
        b.iter(|| black_box(ablations::mode_count(&p)))
    });
    g.bench_function("policy_zoo", |b| {
        b.iter(|| black_box(ablations::policy_zoo(&p)))
    });
    g.bench_function("wbeu_dirty_limit", |b| {
        b.iter(|| black_box(ablations::wbeu_dirty_limit(&p)))
    });
    g.finish();
}

criterion_group!(ablation_benches, bench_ablations);
criterion_main!(ablation_benches);
