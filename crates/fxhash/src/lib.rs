//! First-party reimplementation of the `rustc-hash` ("FxHash") API subset
//! the workspace uses: [`FxHasher`], [`FxHashMap`], [`FxHashSet`].
//!
//! FxHash is the non-cryptographic multiply-rotate hash the Rust compiler
//! uses for its internal tables. It is dramatically cheaper than SipHash
//! for the small fixed-width keys this workspace hashes (`BlockId` is 12
//! bytes, disk ids 4) and needs no HashDoS resistance: every key fed to
//! these maps comes from a deterministic trace generator, not from an
//! untrusted network peer.
//!
//! Like `pc-rand`/`pc-criterion`, the package is `pc-fxhash` but the
//! library is named `rustc_hash` so call sites keep idiomatic imports
//! while the build stays fully offline.
//!
//! ```
//! use rustc_hash::FxHashMap;
//!
//! let mut map: FxHashMap<u64, &str> = FxHashMap::default();
//! map.insert(9, "block nine");
//! assert_eq!(map.get(&9), Some(&"block nine"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s; the default state of the maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The multiplier from the original Firefox/rustc implementation: a
/// 64-bit constant with a good spread of set bits, applied after folding
/// each word in so every input bit diffuses across the state.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fowler-style multiply-rotate hasher (the rustc "FxHasher").
///
/// Words are folded in as `state = (state.rotate_left(5) ^ word) * SEED`.
/// Not cryptographic, not DoS-resistant — but roughly an order of
/// magnitude cheaper than SipHash on short fixed-width keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"block"), hash_of(&"block"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential block numbers are the common key pattern; they must
        // not collide wholesale.
        let hashes: HashSet<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut map: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..100u32 {
            map.insert((i, u64::from(i) * 7), i);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&(42, 294)), Some(&42));

        let set: FxHashSet<u64> = (0..50).collect();
        assert!(set.contains(&49));
        assert!(!set.contains(&50));
    }

    #[test]
    fn partial_word_tail_is_hashed() {
        // 9 bytes: one full word plus a 1-byte remainder — the remainder
        // must affect the result.
        let a: [u8; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: [u8; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(hash_of(&a.as_slice()), hash_of(&b.as_slice()));
    }
}
