//! I/O traces and workload generators for the `powercache` simulator.
//!
//! The paper evaluates on two real traces (an OLTP/TPC-C trace and HP's
//! Cello96 file-server trace) plus the Table-3 synthetic traces used for
//! the write-policy study. The real traces are proprietary, so this crate
//! provides statistically-shaped generators matched to every characteristic
//! the paper reports (see DESIGN.md §2 for the substitution argument):
//!
//! * [`SyntheticConfig`] — the paper's Table-3 generator: controlled write
//!   ratio, exponential or Pareto inter-arrival times, sequential / local /
//!   random spatial mix, Zipf temporal locality.
//! * [`OltpConfig`] — OLTP-like: 21 disks, 22% writes, ~99 ms mean gap,
//!   per-disk skew with a cacheable "priority-shaped" disk subset.
//! * [`CelloConfig`] — Cello96-like: 19 disks, 38% writes, ~5.61 ms mean
//!   gap, ~64% cold misses.
//!
//! # Examples
//!
//! ```
//! use pc_trace::{OltpConfig, TraceStats};
//!
//! let trace = OltpConfig::default().with_requests(2_000).generate(42);
//! let stats = TraceStats::of(&trace);
//! assert_eq!(stats.disks, 21);
//! assert!(stats.write_fraction > 0.15 && stats.write_fraction < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cello;
mod layout;
mod nonstationary;
mod oltp;
mod record;
mod samplers;
mod stats;
mod stream;
mod synthetic;

pub use cello::CelloConfig;
pub use layout::DataLayout;
pub use nonstationary::{NonStationaryConfig, NonStationaryStream, Scenario};
pub use oltp::OltpConfig;
pub use record::{IoOp, Record, Trace};
pub use samplers::{GapDistribution, ZipfSampler};
pub use stats::{DiskStats, TraceStats};
pub use stream::{RecordStream, Workload};
pub use synthetic::{SyntheticConfig, SyntheticStream};
