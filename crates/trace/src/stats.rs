//! Trace characterization (the paper's Table 2).

use std::collections::HashSet;

use pc_units::SimDuration;

use crate::{IoOp, Trace};

/// Per-disk request statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiskStats {
    /// Requests addressed to this disk.
    pub requests: usize,
    /// Distinct blocks touched on this disk.
    pub unique_blocks: usize,
    /// Mean gap between consecutive requests to this disk.
    pub mean_interarrival: SimDuration,
}

/// Whole-trace statistics: the columns of the paper's Table 2 plus the
/// cold-miss fraction its §5.2 analysis quotes.
///
/// # Examples
///
/// ```
/// use pc_trace::{CelloConfig, TraceStats};
///
/// let trace = CelloConfig::default().with_requests(5_000).generate(1);
/// let stats = TraceStats::of(&trace);
/// assert_eq!(stats.disks, 19);
/// assert!(stats.cold_fraction > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Number of disks the trace addresses.
    pub disks: u32,
    /// Total request count.
    pub requests: usize,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Mean gap between consecutive requests (whole trace).
    pub mean_interarrival: SimDuration,
    /// Fraction of requests that touch a block for the first time
    /// (the lower bound on any cache's miss ratio).
    pub cold_fraction: f64,
    /// Distinct blocks touched.
    pub unique_blocks: usize,
    /// Per-disk breakdown, indexed by disk.
    pub per_disk: Vec<DiskStats>,
}

impl TraceStats {
    /// Computes statistics for a trace.
    #[must_use]
    pub fn of(trace: &Trace) -> Self {
        let n = trace.len();
        let disks = trace.disk_count();
        let mut writes = 0usize;
        let mut seen = HashSet::with_capacity(n);
        let mut cold = 0usize;
        let mut per_disk = vec![DiskStats::default(); disks as usize];
        let mut last_per_disk = vec![None; disks as usize];
        let mut gap_sums = vec![SimDuration::ZERO; disks as usize];
        let mut gap_counts = vec![0u64; disks as usize];

        for r in trace {
            if r.op == IoOp::Write {
                writes += 1;
            }
            // A multi-block request is cold if *any* of its blocks is new
            // (an infinite cache would still have to touch the disk).
            let mut any_new = false;
            for offset in 0..r.blocks {
                let block = pc_units::BlockId::new(
                    r.block.disk(),
                    pc_units::BlockNo::new(r.block.block().number() + offset),
                );
                any_new |= seen.insert(block);
            }
            if any_new {
                cold += 1;
            }
            let d = r.block.disk().as_usize();
            per_disk[d].requests += 1;
            if let Some(last) = last_per_disk[d] {
                gap_sums[d] += r.time - last;
                gap_counts[d] += 1;
            }
            last_per_disk[d] = Some(r.time);
        }

        let mut disk_unique = vec![HashSet::new(); disks as usize];
        for r in trace {
            for offset in 0..r.blocks {
                disk_unique[r.block.disk().as_usize()].insert(r.block.block().number() + offset);
            }
        }
        for (d, stats) in per_disk.iter_mut().enumerate() {
            stats.unique_blocks = disk_unique[d].len();
            stats.mean_interarrival = if gap_counts[d] > 0 {
                gap_sums[d] / gap_counts[d]
            } else {
                SimDuration::ZERO
            };
        }

        TraceStats {
            disks,
            requests: n,
            write_fraction: if n == 0 {
                0.0
            } else {
                writes as f64 / n as f64
            },
            mean_interarrival: if n > 1 {
                trace.duration() / (n as u64 - 1)
            } else {
                SimDuration::ZERO
            },
            cold_fraction: if n == 0 { 0.0 } else { cold as f64 / n as f64 },
            unique_blocks: seen.len(),
            per_disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Record;
    use pc_units::{BlockId, BlockNo, DiskId, SimTime};

    fn rec(ms: u64, disk: u32, block: u64, op: IoOp) -> Record {
        Record::new(
            SimTime::from_millis(ms),
            BlockId::new(DiskId::new(disk), BlockNo::new(block)),
            op,
        )
    }

    #[test]
    fn counts_and_fractions() {
        let t = Trace::from_records(
            2,
            vec![
                rec(0, 0, 1, IoOp::Read),
                rec(10, 0, 1, IoOp::Write),
                rec(20, 1, 2, IoOp::Read),
                rec(30, 1, 3, IoOp::Read),
            ],
        );
        let s = TraceStats::of(&t);
        assert_eq!(s.requests, 4);
        assert_eq!(s.disks, 2);
        assert!((s.write_fraction - 0.25).abs() < 1e-12);
        assert!((s.cold_fraction - 0.75).abs() < 1e-12);
        assert_eq!(s.unique_blocks, 3);
        assert_eq!(s.mean_interarrival, SimDuration::from_millis(10));
        assert_eq!(s.per_disk[0].requests, 2);
        assert_eq!(s.per_disk[0].unique_blocks, 1);
        assert_eq!(
            s.per_disk[0].mean_interarrival,
            SimDuration::from_millis(10)
        );
        assert_eq!(
            s.per_disk[1].mean_interarrival,
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::of(&Trace::new(3));
        assert_eq!(s.requests, 0);
        assert_eq!(s.write_fraction, 0.0);
        assert_eq!(s.cold_fraction, 0.0);
        assert_eq!(s.per_disk.len(), 3);
    }

    #[test]
    fn same_block_different_disks_counts_twice() {
        let t = Trace::from_records(2, vec![rec(0, 0, 7, IoOp::Read), rec(1, 1, 7, IoOp::Read)]);
        let s = TraceStats::of(&t);
        assert_eq!(s.unique_blocks, 2);
        assert!((s.cold_fraction - 1.0).abs() < 1e-12);
    }
}
