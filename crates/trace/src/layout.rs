//! Data layout transformations: how logical volumes map onto physical
//! disks.
//!
//! The paper's storage system implicitly places each logical volume on
//! its own disk — the layout that *creates* per-disk idle periods for
//! power management to harvest. RAID-style striping is the opposite
//! extreme: every volume's blocks interleave across all spindles, so any
//! activity anywhere keeps every disk awake. [`DataLayout::remap`] lets
//! the same trace be replayed under either layout (the
//! `ablation-layout` experiment quantifies the difference).

use pc_units::{BlockId, BlockNo, DiskId};

use crate::{Record, Trace};

/// A mapping from logical (volume, block) addresses to physical
/// (disk, block) addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLayout {
    /// Volume `v` lives wholly on disk `v` (the paper's layout).
    Partitioned,
    /// All volumes striped across all disks in `stripe_blocks`-sized
    /// chunks (RAID-0 style).
    Striped {
        /// Stripe unit, in blocks.
        stripe_blocks: u64,
    },
}

impl DataLayout {
    /// Short lowercase name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DataLayout::Partitioned => "partitioned",
            DataLayout::Striped { .. } => "striped",
        }
    }

    /// Maps one logical address to its physical address under this
    /// layout, for a system of `disks` disks and logical volumes of
    /// `volume_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if a striped stripe unit is zero or `disks` is zero.
    #[must_use]
    pub fn place(&self, logical: BlockId, disks: u32, volume_blocks: u64) -> BlockId {
        match *self {
            DataLayout::Partitioned => logical,
            DataLayout::Striped { stripe_blocks } => {
                assert!(stripe_blocks > 0, "stripe unit must be positive");
                assert!(disks > 0, "need at least one disk");
                // Linearize (volume, block) and deal stripes round-robin.
                let linear =
                    u64::from(logical.disk().index()) * volume_blocks + logical.block().number();
                let stripe = linear / stripe_blocks;
                let offset = linear % stripe_blocks;
                let disk = (stripe % u64::from(disks)) as u32;
                let row = stripe / u64::from(disks);
                BlockId::new(
                    DiskId::new(disk),
                    BlockNo::new(row * stripe_blocks + offset),
                )
            }
        }
    }

    /// Rewrites a whole trace under this layout. `volume_blocks` bounds
    /// each logical volume (any block number at or above it still maps
    /// deterministically, just into a higher row).
    ///
    /// # Panics
    ///
    /// Propagates [`DataLayout::place`]'s panics.
    #[must_use]
    pub fn remap(&self, trace: &Trace, volume_blocks: u64) -> Trace {
        let disks = trace.disk_count();
        let records = trace
            .iter()
            .map(|r| Record {
                block: self.place(r.block, disks, volume_blocks),
                ..*r
            })
            .collect();
        Trace::from_records(disks, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IoOp, OltpConfig};
    use pc_units::SimTime;
    use std::collections::HashSet;

    fn blk(d: u32, b: u64) -> BlockId {
        BlockId::new(DiskId::new(d), BlockNo::new(b))
    }

    #[test]
    fn partitioned_is_identity() {
        let layout = DataLayout::Partitioned;
        assert_eq!(layout.place(blk(3, 77), 8, 1_000), blk(3, 77));
    }

    #[test]
    fn striping_deals_stripes_round_robin() {
        let layout = DataLayout::Striped { stripe_blocks: 4 };
        // Volume 0, blocks 0..16 over 2 disks: stripes alternate.
        assert_eq!(layout.place(blk(0, 0), 2, 1_000), blk(0, 0));
        assert_eq!(layout.place(blk(0, 3), 2, 1_000), blk(0, 3));
        assert_eq!(layout.place(blk(0, 4), 2, 1_000), blk(1, 0));
        assert_eq!(layout.place(blk(0, 8), 2, 1_000), blk(0, 4));
        assert_eq!(layout.place(blk(0, 12), 2, 1_000), blk(1, 4));
    }

    #[test]
    fn striping_is_injective() {
        let layout = DataLayout::Striped { stripe_blocks: 8 };
        let mut seen = HashSet::new();
        for v in 0..4u32 {
            for b in 0..500u64 {
                assert!(
                    seen.insert(layout.place(blk(v, b), 4, 1_000)),
                    "collision at volume {v} block {b}"
                );
            }
        }
    }

    #[test]
    fn remap_preserves_times_ops_and_lengths() {
        let trace = OltpConfig::default().with_requests(2_000).generate(1);
        let striped = DataLayout::Striped { stripe_blocks: 16 }.remap(&trace, 1 << 20);
        assert_eq!(striped.len(), trace.len());
        for (a, b) in trace.iter().zip(striped.iter()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.op, b.op);
            assert_eq!(a.blocks, b.blocks);
        }
    }

    #[test]
    fn striping_spreads_a_single_volumes_traffic_over_all_disks() {
        let mut t = Trace::new(4);
        for i in 0..64u64 {
            t.push(Record::new(
                SimTime::from_millis(i),
                blk(0, i * 8), // one volume, striding over stripes
                IoOp::Read,
            ));
        }
        let striped = DataLayout::Striped { stripe_blocks: 8 }.remap(&t, 1 << 20);
        let disks: HashSet<u32> = striped.iter().map(|r| r.block.disk().index()).collect();
        assert_eq!(disks.len(), 4, "every disk receives traffic");
        // Partitioned keeps it on one disk.
        let part: HashSet<u32> = DataLayout::Partitioned
            .remap(&t, 1 << 20)
            .iter()
            .map(|r| r.block.disk().index())
            .collect();
        assert_eq!(part.len(), 1);
    }
}
