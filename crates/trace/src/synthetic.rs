//! The paper's Table-3 synthetic trace generator (write-policy study).
//!
//! Spatial locality is controlled by the probabilities of sequential,
//! local and random accesses; temporal locality by a Zipf distribution of
//! stack distances over each disk's recently-used blocks; arrivals by an
//! exponential or Pareto gap distribution; and the write ratio directly.

use pc_units::{BlockId, BlockNo, DiskId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GapDistribution, IoOp, Record, Trace, ZipfSampler};

/// Configuration of the Table-3 synthetic generator.
///
/// Defaults match the paper's Table 3: 1 million requests over 20 disks of
/// 18 GB, exponential arrivals with a 250 ms mean, 50% writes, access mix
/// 10% sequential / 20% local / 70% random with a 100-block maximum local
/// distance, and Zipf temporal locality.
///
/// # Examples
///
/// ```
/// use pc_trace::{GapDistribution, SyntheticConfig, TraceStats};
/// use pc_units::SimDuration;
///
/// let trace = SyntheticConfig::default()
///     .with_requests(5_000)
///     .with_write_ratio(0.8)
///     .with_gaps(GapDistribution::pareto(SimDuration::from_millis(100)))
///     .generate(7);
/// let stats = TraceStats::of(&trace);
/// assert!(stats.write_fraction > 0.75 && stats.write_fraction < 0.85);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of disks.
    pub disks: u32,
    /// Inter-arrival time distribution.
    pub gaps: GapDistribution,
    /// Fraction of requests that are writes.
    pub write_ratio: f64,
    /// Capacity of each disk, in blocks.
    pub disk_blocks: u64,
    /// Probability that a non-reuse access is sequential (previous disk
    /// block + 1).
    pub seq_probability: f64,
    /// Probability that a non-reuse access is local (within
    /// `max_local_distance`).
    pub local_probability: f64,
    /// Maximum distance of a local access, in blocks.
    pub max_local_distance: u64,
    /// Probability that an access re-uses a recently-accessed block
    /// (drawn with Zipf-distributed stack distance over a short recency
    /// stack). This is the paper's Table-3 "hit ratio" knob: reuse
    /// accesses land in any reasonably-sized cache, the rest follow the
    /// sequential/local/random spatial mix over fresh blocks and miss.
    pub reuse_probability: f64,
    /// Zipf exponent for stack distances.
    pub zipf_theta: f64,
    /// Capacity of the per-disk recency stack the Zipf distances index.
    pub stack_depth: usize,
    /// Maximum transfer length of a sequential access, in blocks
    /// (lengths are drawn uniformly from `1..=max`; 1 = single-block
    /// requests only).
    pub max_run_blocks: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            requests: 1_000_000,
            disks: 20,
            gaps: GapDistribution::exponential(SimDuration::from_millis(250)),
            write_ratio: 0.5,
            disk_blocks: 18_000_000_000 / 8_192,
            seq_probability: 0.1,
            local_probability: 0.2,
            max_local_distance: 100,
            reuse_probability: 0.5,
            zipf_theta: 0.99,
            stack_depth: 128,
            max_run_blocks: 8,
        }
    }
}

impl SyntheticConfig {
    /// Sets the request count.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the write ratio (0.0..=1.0).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `[0, 1]`.
    #[must_use]
    pub fn with_write_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "write ratio must be in [0,1]");
        self.write_ratio = ratio;
        self
    }

    /// Sets the inter-arrival distribution.
    #[must_use]
    pub fn with_gaps(mut self, gaps: GapDistribution) -> Self {
        self.gaps = gaps;
        self
    }

    /// Sets the number of disks.
    ///
    /// # Panics
    ///
    /// Panics if `disks` is zero.
    #[must_use]
    pub fn with_disks(mut self, disks: u32) -> Self {
        assert!(disks > 0, "need at least one disk");
        self.disks = disks;
        self
    }

    /// Generates a trace deterministically from a seed.
    ///
    /// Collects [`SyntheticConfig::stream`], so the eager and streaming
    /// paths produce identical records by construction.
    ///
    /// # Panics
    ///
    /// Panics if the spatial probabilities sum to more than 1.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Trace {
        let mut trace = Trace::new(self.disks);
        for record in self.stream(seed) {
            trace.push(record);
        }
        trace
    }

    /// Lazily generates the trace, one record per `next()` call, without
    /// materializing anything.
    ///
    /// This is the load-generator entry point: an online client can draw
    /// requests for hours from a fixed-size iterator (set `requests` to
    /// `usize::MAX` for an effectively unbounded stream). The stream and
    /// [`SyntheticConfig::generate`] perform the identical sequence of RNG
    /// draws, so for the same seed they yield the same records.
    ///
    /// # Panics
    ///
    /// Panics if the spatial probabilities sum to more than 1.
    #[must_use]
    pub fn stream(&self, seed: u64) -> SyntheticStream {
        assert!(
            self.seq_probability + self.local_probability <= 1.0 + 1e-12,
            "sequential + local probabilities must not exceed 1"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = ZipfSampler::new(self.stack_depth.max(1), self.zipf_theta);
        let last_block: Vec<u64> = (0..self.disks)
            .map(|_| rng.gen_range(0..self.disk_blocks))
            .collect();
        let stacks: Vec<Vec<u64>> = vec![Vec::new(); self.disks as usize];
        SyntheticStream {
            cfg: self.clone(),
            rng,
            zipf,
            now: SimTime::ZERO,
            last_block,
            stacks,
            remaining: self.requests,
        }
    }
}

/// Lazy record iterator over a [`SyntheticConfig`] — see
/// [`SyntheticConfig::stream`].
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    cfg: SyntheticConfig,
    rng: StdRng,
    zipf: ZipfSampler,
    now: SimTime,
    last_block: Vec<u64>,
    stacks: Vec<Vec<u64>>,
    remaining: usize,
}

impl Iterator for SyntheticStream {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let cfg = &self.cfg;
        let rng = &mut self.rng;
        self.now += cfg.gaps.sample(rng);
        let disk = rng.gen_range(0..cfg.disks);
        let d = disk as usize;
        let mut run = 1u64;
        let block = if rng.gen::<f64>() < cfg.reuse_probability && !self.stacks[d].is_empty() {
            // Temporal reuse: Zipf stack distance from the top.
            let depth = self.zipf.sample(rng).min(self.stacks[d].len());
            let idx = self.stacks[d].len() - depth;
            self.stacks[d][idx]
        } else {
            let spatial: f64 = rng.gen();
            if spatial < cfg.seq_probability {
                // Sequential accesses stream a multi-block run.
                run = rng.gen_range(1..=cfg.max_run_blocks.max(1));
                ((self.last_block[d] + 1) % cfg.disk_blocks).min(cfg.disk_blocks - run)
            } else if spatial < cfg.seq_probability + cfg.local_probability {
                let dist = rng.gen_range(1..=cfg.max_local_distance);
                (self.last_block[d] + dist) % cfg.disk_blocks
            } else {
                rng.gen_range(0..cfg.disk_blocks)
            }
        };
        self.last_block[d] = block + run - 1;
        touch(&mut self.stacks[d], block, cfg.stack_depth);
        let op = if rng.gen::<f64>() < cfg.write_ratio {
            IoOp::Write
        } else {
            IoOp::Read
        };
        Some(Record {
            time: self.now,
            block: BlockId::new(DiskId::new(disk), BlockNo::new(block)),
            blocks: run,
            op,
        })
    }
}

/// Moves `block` to the top of the recency stack, bounding its depth.
fn touch(stack: &mut Vec<u64>, block: u64, depth: usize) {
    if let Some(pos) = stack.iter().rposition(|&b| b == block) {
        stack.remove(pos);
    } else if stack.len() == depth {
        stack.remove(0);
    }
    stack.push(block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn respects_request_and_disk_counts() {
        let t = SyntheticConfig::default()
            .with_requests(3_000)
            .with_disks(5)
            .generate(1);
        assert_eq!(t.len(), 3_000);
        assert_eq!(t.disk_count(), 5);
    }

    #[test]
    fn write_ratio_is_honoured() {
        for ratio in [0.0, 0.25, 1.0] {
            let t = SyntheticConfig::default()
                .with_requests(8_000)
                .with_write_ratio(ratio)
                .generate(2);
            let s = TraceStats::of(&t);
            assert!(
                (s.write_fraction - ratio).abs() < 0.02,
                "got {} wanted {ratio}",
                s.write_fraction
            );
        }
    }

    #[test]
    fn mean_gap_tracks_configuration() {
        let t = SyntheticConfig::default()
            .with_requests(20_000)
            .with_gaps(GapDistribution::exponential(SimDuration::from_millis(50)))
            .generate(3);
        let s = TraceStats::of(&t);
        let m = s.mean_interarrival.as_millis_f64();
        assert!((m - 50.0).abs() < 3.0, "mean gap {m}ms");
    }

    #[test]
    fn deterministic_for_same_seed_distinct_for_different() {
        let cfg = SyntheticConfig::default().with_requests(1_000);
        assert_eq!(cfg.generate(9), cfg.generate(9));
        assert_ne!(cfg.generate(9), cfg.generate(10));
    }

    #[test]
    fn reuse_creates_temporal_locality() {
        let hot = SyntheticConfig {
            reuse_probability: 0.9,
            seq_probability: 0.0,
            local_probability: 0.0,
            ..SyntheticConfig::default()
        }
        .with_requests(10_000)
        .generate(4);
        let cold = SyntheticConfig {
            reuse_probability: 0.0,
            seq_probability: 0.0,
            local_probability: 0.0,
            ..SyntheticConfig::default()
        }
        .with_requests(10_000)
        .generate(4);
        let hot_cold = TraceStats::of(&hot).cold_fraction;
        let cold_cold = TraceStats::of(&cold).cold_fraction;
        assert!(
            hot_cold + 0.3 < cold_cold,
            "reuse {hot_cold} vs none {cold_cold}"
        );
    }

    #[test]
    fn sequential_probability_produces_adjacent_accesses() {
        let t = SyntheticConfig {
            seq_probability: 1.0,
            local_probability: 0.0,
            reuse_probability: 0.0,
            ..SyntheticConfig::default()
        }
        .with_requests(2_000)
        .with_disks(1)
        .generate(5);
        let mut adjacent = 0usize;
        let recs = t.records();
        for w in recs.windows(2) {
            // Each sequential request continues where the previous run
            // ended.
            if w[1].block.block().number() == w[0].block.block().number() + w[0].blocks {
                adjacent += 1;
            }
        }
        assert!(adjacent as f64 / (recs.len() - 1) as f64 > 0.95);
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn rejects_inconsistent_spatial_mix() {
        let cfg = SyntheticConfig {
            seq_probability: 0.8,
            local_probability: 0.8,
            ..SyntheticConfig::default()
        };
        let _ = cfg.with_requests(10).generate(0);
    }
}
