//! Non-stationary workload scenarios: the same request fabric as the
//! Table-3 synthetic generator, but with the parameter set scheduled over
//! **phases** so workload character shifts mid-run.
//!
//! Four scenarios cover the canonical ways production storage traffic
//! drifts:
//!
//! * `diurnal` — alternating day/night: dense broad traffic, then sparse
//!   narrow traffic with long gaps (the power-aware regime).
//! * `flash-crowd` — calm near-idle background punctuated by bursts
//!   that hammer a tiny hot set on few disks at orders of magnitude the
//!   background arrival rate.
//! * `churn` — a rotating tenant: most traffic focuses on a quarter of
//!   the disks, and the focus window advances every phase, re-faulting
//!   each new tenant's working set.
//! * `phase-change` — one abrupt regime flip: warm dense reads become a
//!   cold, sequential, write-heavy scan and stay that way.
//!
//! Phases are **request-count** scheduled, so a stream is deterministic
//! for a seed regardless of whether it feeds the simulator (virtual
//! time) or a live load generator (wall clock), and phase boundaries are
//! hit even in short smoke runs. Virtual time is continuous across phase
//! boundaries — only the sampling parameters change.

use pc_units::{BlockId, BlockNo, DiskId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GapDistribution, IoOp, Record, Trace, ZipfSampler};

/// Which non-stationary schedule drives the phase parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Alternating dense-broad / sparse-narrow phases.
    Diurnal,
    /// Background traffic with periodic hot-set bursts.
    FlashCrowd,
    /// A focus window rotating across the disk array every phase.
    Churn,
    /// A single abrupt mid-run regime flip.
    PhaseChange,
}

impl Scenario {
    /// The scenario's canonical name (the suffix of
    /// `nonstationary:<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Diurnal => "diurnal",
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::Churn => "churn",
            Scenario::PhaseChange => "phase-change",
        }
    }

    /// All four scenarios, in canonical order.
    #[must_use]
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::Diurnal,
            Scenario::FlashCrowd,
            Scenario::Churn,
            Scenario::PhaseChange,
        ]
    }

    /// Parses a scenario name as accepted by
    /// [`Workload::parse`](crate::Workload::parse).
    #[must_use]
    pub fn parse(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name() == name)
    }
}

/// Configuration of the non-stationary generator.
///
/// # Examples
///
/// ```
/// use pc_trace::{NonStationaryConfig, Scenario, TraceStats};
///
/// let trace = NonStationaryConfig::new(Scenario::Diurnal)
///     .with_requests(5_000)
///     .generate(7);
/// assert_eq!(trace.len(), 5_000);
/// assert_eq!(TraceStats::of(&trace).disks, 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NonStationaryConfig {
    /// The phase schedule.
    pub scenario: Scenario,
    /// Number of requests to generate (`usize::MAX` = unbounded stream).
    pub requests: usize,
    /// Number of disks.
    pub disks: u32,
    /// Requests per phase. Count-based so phase boundaries are reached
    /// deterministically by any driver, simulated or live.
    pub phase_requests: usize,
    /// Capacity of each disk, in blocks.
    pub disk_blocks: u64,
}

impl NonStationaryConfig {
    /// A scenario over 20 disks with 10 000-request phases.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        NonStationaryConfig {
            scenario,
            requests: 200_000,
            disks: 20,
            phase_requests: 10_000,
            disk_blocks: 18_000_000_000 / 8_192,
        }
    }

    /// Sets the request count.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the phase length, in requests.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is zero.
    #[must_use]
    pub fn with_phase_requests(mut self, requests: usize) -> Self {
        assert!(requests > 0, "phases need at least one request");
        self.phase_requests = requests;
        self
    }

    /// Generates a trace deterministically from a seed (collects
    /// [`NonStationaryConfig::stream`], so eager and lazy paths agree by
    /// construction).
    #[must_use]
    pub fn generate(&self, seed: u64) -> Trace {
        let mut trace = Trace::new(self.disks);
        for record in self.stream(seed) {
            trace.push(record);
        }
        trace
    }

    /// Lazily streams the scenario's records — the load-generator entry
    /// point, O(recency stack) memory for any run length.
    #[must_use]
    pub fn stream(&self, seed: u64) -> NonStationaryStream {
        let mut rng = StdRng::seed_from_u64(seed);
        let last_block: Vec<u64> = (0..self.disks)
            .map(|_| rng.gen_range(0..self.disk_blocks))
            .collect();
        NonStationaryStream {
            cfg: self.clone(),
            rng,
            zipf: ZipfSampler::new(128, 0.99),
            now: SimTime::ZERO,
            last_block,
            stacks: vec![Vec::new(); self.disks as usize],
            issued: 0,
        }
    }

    /// The parameter set in force for phase `p`.
    fn phase_params(&self, p: usize) -> PhaseParams {
        let disks = self.disks;
        let quarter = (disks / 4).max(1);
        match self.scenario {
            Scenario::Diurnal => {
                if p.is_multiple_of(2) {
                    // Day: dense arrivals across the whole array.
                    PhaseParams {
                        gaps: GapDistribution::exponential(SimDuration::from_millis(60)),
                        write_ratio: 0.3,
                        reuse_probability: 0.5,
                        seq_probability: 0.1,
                        local_probability: 0.2,
                        focus: None,
                    }
                } else {
                    // Night: sparse warm traffic on a narrow disk subset —
                    // arrival gaps sit past the spin-down break-even
                    // horizon, so the rest of the array can sleep.
                    PhaseParams {
                        gaps: GapDistribution::exponential(SimDuration::from_secs(20)),
                        write_ratio: 0.1,
                        reuse_probability: 0.85,
                        seq_probability: 0.05,
                        local_probability: 0.1,
                        focus: Some(Focus {
                            lo: 0,
                            width: quarter,
                            probability: 0.9,
                        }),
                    }
                }
            }
            Scenario::FlashCrowd => {
                if p % 3 == 1 {
                    // The crowd: a hot set on two disks, dense arrivals.
                    PhaseParams {
                        gaps: GapDistribution::exponential(SimDuration::from_millis(20)),
                        write_ratio: 0.05,
                        reuse_probability: 0.9,
                        seq_probability: 0.0,
                        local_probability: 0.05,
                        focus: Some(Focus {
                            lo: 0,
                            width: 2.min(disks),
                            probability: 0.95,
                        }),
                    }
                } else {
                    // Calm background: sparse broad traffic, idle gaps
                    // long enough that spin-downs pay for themselves.
                    PhaseParams {
                        gaps: GapDistribution::exponential(SimDuration::from_secs(40)),
                        write_ratio: 0.4,
                        reuse_probability: 0.4,
                        seq_probability: 0.1,
                        local_probability: 0.2,
                        focus: None,
                    }
                }
            }
            Scenario::Churn => {
                // The active tenant's window advances each phase;
                // re-faulting the incoming tenant's blocks spikes the
                // cold-miss fraction at every boundary. Tenants arrive at
                // a lazy trickle, so the disks outside the window — and
                // between bursts, inside it — spend real time asleep.
                let lo = (p as u32 * quarter) % disks;
                PhaseParams {
                    gaps: GapDistribution::exponential(SimDuration::from_secs(25)),
                    write_ratio: 0.3,
                    reuse_probability: 0.6,
                    seq_probability: 0.1,
                    local_probability: 0.2,
                    focus: Some(Focus {
                        lo,
                        width: quarter,
                        probability: 0.8,
                    }),
                }
            }
            Scenario::PhaseChange => {
                if p == 0 {
                    // Warm dense reads.
                    PhaseParams {
                        gaps: GapDistribution::exponential(SimDuration::from_millis(50)),
                        write_ratio: 0.1,
                        reuse_probability: 0.8,
                        seq_probability: 0.05,
                        local_probability: 0.15,
                        focus: None,
                    }
                } else {
                    // After the flip: a cold, sequential, write-heavy
                    // scan with sparse arrivals — and it stays that way.
                    PhaseParams {
                        gaps: GapDistribution::exponential(SimDuration::from_millis(800)),
                        write_ratio: 0.7,
                        reuse_probability: 0.05,
                        seq_probability: 0.6,
                        local_probability: 0.2,
                        focus: None,
                    }
                }
            }
        }
    }
}

/// A disk focus window: with `probability`, the access lands on
/// `[lo, lo + width)` (mod the array size) instead of the whole array.
#[derive(Debug, Clone, Copy)]
struct Focus {
    lo: u32,
    width: u32,
    probability: f64,
}

/// One phase's sampling parameters.
#[derive(Debug, Clone)]
struct PhaseParams {
    gaps: GapDistribution,
    write_ratio: f64,
    reuse_probability: f64,
    seq_probability: f64,
    local_probability: f64,
    focus: Option<Focus>,
}

/// Lazy record iterator over a [`NonStationaryConfig`] — see
/// [`NonStationaryConfig::stream`].
#[derive(Debug, Clone)]
pub struct NonStationaryStream {
    cfg: NonStationaryConfig,
    rng: StdRng,
    zipf: ZipfSampler,
    now: SimTime,
    last_block: Vec<u64>,
    stacks: Vec<Vec<u64>>,
    issued: usize,
}

impl Iterator for NonStationaryStream {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.issued >= self.cfg.requests {
            return None;
        }
        let params = self.cfg.phase_params(self.issued / self.cfg.phase_requests);
        self.issued += 1;
        let cfg = &self.cfg;
        let rng = &mut self.rng;
        self.now += params.gaps.sample(rng);
        let disk = match params.focus {
            Some(f) if rng.gen::<f64>() < f.probability => {
                (f.lo + rng.gen_range(0..f.width)) % cfg.disks
            }
            _ => rng.gen_range(0..cfg.disks),
        };
        let d = disk as usize;
        let mut run = 1u64;
        let block = if rng.gen::<f64>() < params.reuse_probability && !self.stacks[d].is_empty() {
            let depth = self.zipf.sample(rng).min(self.stacks[d].len());
            let idx = self.stacks[d].len() - depth;
            self.stacks[d][idx]
        } else {
            let spatial: f64 = rng.gen();
            if spatial < params.seq_probability {
                run = rng.gen_range(1..=8u64);
                ((self.last_block[d] + 1) % cfg.disk_blocks).min(cfg.disk_blocks - run)
            } else if spatial < params.seq_probability + params.local_probability {
                let dist = rng.gen_range(1..=100u64);
                (self.last_block[d] + dist) % cfg.disk_blocks
            } else {
                rng.gen_range(0..cfg.disk_blocks)
            }
        };
        self.last_block[d] = block + run - 1;
        touch(&mut self.stacks[d], block, 128);
        let op = if rng.gen::<f64>() < params.write_ratio {
            IoOp::Write
        } else {
            IoOp::Read
        };
        Some(Record {
            time: self.now,
            block: BlockId::new(DiskId::new(disk), BlockNo::new(block)),
            blocks: run,
            op,
        })
    }
}

/// Moves `block` to the top of the recency stack, bounding its depth.
fn touch(stack: &mut Vec<u64>, block: u64, depth: usize) {
    if let Some(pos) = stack.iter().rposition(|&b| b == block) {
        stack.remove(pos);
    } else if stack.len() == depth {
        stack.remove(0);
    }
    stack.push(block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn deterministic_for_same_seed_distinct_for_different() {
        for s in Scenario::all() {
            let cfg = NonStationaryConfig::new(s).with_requests(2_000);
            assert_eq!(cfg.generate(3), cfg.generate(3), "{}", s.name());
            assert_ne!(cfg.generate(3), cfg.generate(4), "{}", s.name());
        }
    }

    #[test]
    fn time_is_continuous_across_phase_boundaries() {
        for s in Scenario::all() {
            let t = NonStationaryConfig::new(s)
                .with_requests(3_000)
                .with_phase_requests(500)
                .generate(1);
            let recs = t.records();
            assert!(
                recs.windows(2).all(|w| w[0].time <= w[1].time),
                "{} times regressed",
                s.name()
            );
        }
    }

    #[test]
    fn diurnal_alternates_arrival_density() {
        let cfg = NonStationaryConfig::new(Scenario::Diurnal)
            .with_requests(4_000)
            .with_phase_requests(1_000);
        let t = cfg.generate(5);
        let recs = t.records();
        let span = |lo: usize, hi: usize| (recs[hi - 1].time - recs[lo].time).as_secs_f64();
        let day = span(0, 1_000);
        let night = span(1_000, 2_000);
        assert!(
            night > day * 5.0,
            "night span {night}s vs day span {day}s — phases did not alternate"
        );
    }

    #[test]
    fn churn_rotates_the_focused_disks() {
        let cfg = NonStationaryConfig::new(Scenario::Churn)
            .with_requests(2_000)
            .with_phase_requests(1_000);
        let t = cfg.generate(6);
        let recs = t.records();
        let top_disk = |lo: usize, hi: usize| {
            let mut counts = [0u32; 20];
            for r in &recs[lo..hi] {
                counts[r.block.disk().as_usize()] += 1;
            }
            (0..20).max_by_key(|&d| counts[d]).unwrap()
        };
        let first = top_disk(0, 1_000);
        let second = top_disk(1_000, 2_000);
        assert!(first < 5, "phase 0 focus in [0,5), got {first}");
        assert!(
            (5..10).contains(&second),
            "phase 1 focus in [5,10), got {second}"
        );
    }

    #[test]
    fn phase_change_flips_write_ratio_and_cold_fraction() {
        let cfg = NonStationaryConfig::new(Scenario::PhaseChange)
            .with_requests(8_000)
            .with_phase_requests(4_000);
        let t = cfg.generate(2);
        let recs = t.records();
        let writes = |lo: usize, hi: usize| {
            recs[lo..hi].iter().filter(|r| r.op == IoOp::Write).count() as f64 / (hi - lo) as f64
        };
        assert!(writes(0, 4_000) < 0.2, "warm phase is read-heavy");
        assert!(writes(4_000, 8_000) > 0.5, "scan phase is write-heavy");
    }

    #[test]
    fn stats_see_twenty_disks_and_all_requests() {
        let t = NonStationaryConfig::new(Scenario::FlashCrowd)
            .with_requests(3_000)
            .generate(9);
        let s = TraceStats::of(&t);
        assert_eq!(s.disks, 20);
        assert_eq!(t.len(), 3_000);
    }
}
