//! Random samplers used by the workload generators.
//!
//! The paper's synthetic traces (Table 3) use exponential or Pareto
//! inter-arrival times ("Pareto … with a finite mean and infinite
//! variance", i.e. shape between 1 and 2) and Zipf-distributed stack
//! distances for temporal locality.

use pc_units::SimDuration;
use rand::Rng;

/// An inter-arrival time distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GapDistribution {
    /// Exponential gaps (a Poisson arrival process; no burstiness).
    Exponential {
        /// Mean inter-arrival time.
        mean: SimDuration,
    },
    /// Pareto gaps: bursty arrivals with finite mean, infinite variance.
    Pareto {
        /// Mean inter-arrival time.
        mean: SimDuration,
        /// Shape parameter α; must satisfy `1 < α ≤ 2` for a finite mean
        /// and infinite variance as in the paper.
        shape: f64,
    },
}

impl GapDistribution {
    /// Exponential gaps with the given mean.
    #[must_use]
    pub fn exponential(mean: SimDuration) -> Self {
        GapDistribution::Exponential { mean }
    }

    /// Pareto gaps with the given mean and the paper-style shape of 1.3.
    #[must_use]
    pub fn pareto(mean: SimDuration) -> Self {
        GapDistribution::Pareto { mean, shape: 1.3 }
    }

    /// The configured mean gap.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        match *self {
            GapDistribution::Exponential { mean } | GapDistribution::Pareto { mean, .. } => mean,
        }
    }

    /// Draws one inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if a Pareto shape ≤ 1 was configured (infinite mean).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match *self {
            GapDistribution::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
            }
            GapDistribution::Pareto { mean, shape } => {
                assert!(shape > 1.0, "Pareto shape must exceed 1 for a finite mean");
                // mean = scale * shape / (shape - 1)  =>  scale below.
                let scale = mean.as_secs_f64() * (shape - 1.0) / shape;
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                SimDuration::from_secs_f64(scale / u.powf(1.0 / shape))
            }
        }
    }
}

/// A Zipf(θ) sampler over ranks `1..=n`, used for stack-distance temporal
/// locality: small ranks (recently-used blocks) are drawn most often.
///
/// # Examples
///
/// ```
/// use pc_trace::ZipfSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = ZipfSampler::new(100, 0.99);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `1..=n` with exponent `theta`
    /// (`P(rank=k) ∝ k^{-theta}`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or not finite.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-theta);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has a single rank.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(dist: GapDistribution, samples: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(99);
        let total: f64 = (0..samples)
            .map(|_| dist.sample(&mut rng).as_secs_f64())
            .sum();
        total / samples as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let target = SimDuration::from_millis(250);
        let m = mean_of(GapDistribution::exponential(target), 200_000);
        assert!((m - 0.25).abs() < 0.005, "mean {m}");
    }

    #[test]
    fn pareto_mean_converges_roughly() {
        // Infinite variance makes the sample mean noisy; allow a wide band.
        let target = SimDuration::from_millis(250);
        let m = mean_of(GapDistribution::pareto(target), 400_000);
        assert!((m - 0.25).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn pareto_is_burstier_than_exponential() {
        // The median Pareto gap is far below its mean (mass in rare bursts).
        let mut rng = StdRng::seed_from_u64(7);
        let dist = GapDistribution::pareto(SimDuration::from_millis(250));
        let mut gaps: Vec<f64> = (0..20_001)
            .map(|_| dist.sample(&mut rng).as_secs_f64())
            .collect();
        gaps.sort_by(f64::total_cmp);
        let median = gaps[gaps.len() / 2];
        assert!(median < 0.15, "median {median} should sit well below mean");
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn pareto_rejects_infinite_mean_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let dist = GapDistribution::Pareto {
            mean: SimDuration::from_millis(1),
            shape: 0.9,
        };
        let _ = dist.sample(&mut rng);
    }

    #[test]
    fn zipf_favours_small_ranks() {
        let zipf = ZipfSampler::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) <= 10 {
                head += 1;
            }
        }
        // Top-10 of 1000 ranks should take a large share under Zipf(0.99).
        assert!(head as f64 / n as f64 > 0.25);
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let zipf = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) - 1] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "count {c}");
        }
    }

    #[test]
    fn zipf_ranks_stay_in_range() {
        let zipf = ZipfSampler::new(3, 1.2);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!((1..=3).contains(&zipf.sample(&mut rng)));
        }
    }
}
