//! Trace records and containers.

use std::fmt;
use std::io::{self, BufRead, Write};

use pc_units::{BlockId, BlockNo, DiskId, SimDuration, SimTime};

/// The direction of one I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

impl IoOp {
    /// Returns `true` for writes.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, IoOp::Write)
    }
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoOp::Read => "R",
            IoOp::Write => "W",
        })
    }
}

/// One I/O request of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Arrival time of the request.
    pub time: SimTime,
    /// The block addressed.
    pub block: BlockId,
    /// Request length, in blocks.
    pub blocks: u64,
    /// Read or write.
    pub op: IoOp,
}

impl Record {
    /// Creates a single-block request.
    #[must_use]
    pub const fn new(time: SimTime, block: BlockId, op: IoOp) -> Self {
        Record {
            time,
            block,
            blocks: 1,
            op,
        }
    }
}

/// An I/O trace: a time-ordered sequence of [`Record`]s over a fixed-size
/// disk array.
///
/// The container maintains two invariants: records are sorted by arrival
/// time, and every record addresses a disk below [`Trace::disk_count`].
///
/// # Examples
///
/// ```
/// use pc_trace::{IoOp, Record, Trace};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let mut trace = Trace::new(2);
/// trace.push(Record::new(
///     SimTime::from_millis(5),
///     BlockId::new(DiskId::new(1), BlockNo::new(42)),
///     IoOp::Read,
/// ));
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    disk_count: u32,
    records: Vec<Record>,
}

impl Trace {
    /// Creates an empty trace over `disk_count` disks.
    #[must_use]
    pub fn new(disk_count: u32) -> Self {
        Trace {
            disk_count,
            records: Vec::new(),
        }
    }

    /// Creates a trace from pre-built records.
    ///
    /// # Panics
    ///
    /// Panics if the records are not sorted by time or address a disk out
    /// of range.
    #[must_use]
    pub fn from_records(disk_count: u32, records: Vec<Record>) -> Self {
        let mut trace = Trace {
            disk_count,
            records,
        };
        trace.assert_invariants();
        trace
    }

    fn assert_invariants(&mut self) {
        let mut last = SimTime::ZERO;
        for r in &self.records {
            assert!(r.time >= last, "trace records must be sorted by time");
            assert!(
                r.block.disk().index() < self.disk_count,
                "record addresses {} but the trace has {} disks",
                r.block.disk(),
                self.disk_count
            );
            assert!(r.blocks >= 1, "requests must transfer at least one block");
            last = r.time;
        }
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if the record is earlier than the last one or addresses a
    /// disk out of range.
    pub fn push(&mut self, record: Record) {
        if let Some(last) = self.records.last() {
            assert!(record.time >= last.time, "records must arrive in order");
        }
        assert!(record.block.disk().index() < self.disk_count);
        assert!(record.blocks >= 1);
        self.records.push(record);
    }

    /// Number of disks in the array the trace addresses.
    #[must_use]
    pub fn disk_count(&self) -> u32 {
        self.disk_count
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace has no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in arrival order.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the trace, returning its records (for adapters that
    /// stream an eagerly-generated trace, e.g. [`crate::RecordStream`]).
    #[must_use]
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Iterates over the records in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Time span from the first to the last request.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.time - first.time,
            _ => SimDuration::ZERO,
        }
    }

    /// The records with arrival times in `[from, to)`, re-based so the
    /// window starts at time zero.
    #[must_use]
    pub fn window(&self, from: SimTime, to: SimTime) -> Trace {
        let records = self
            .records
            .iter()
            .filter(|r| r.time >= from && r.time < to)
            .map(|r| Record {
                time: SimTime::ZERO + (r.time - from),
                ..*r
            })
            .collect();
        Trace {
            disk_count: self.disk_count,
            records,
        }
    }

    /// The sub-trace addressing a single disk (disk count preserved, so
    /// the records keep their addresses).
    #[must_use]
    pub fn filter_disk(&self, disk: DiskId) -> Trace {
        Trace {
            disk_count: self.disk_count,
            records: self
                .records
                .iter()
                .filter(|r| r.block.disk() == disk)
                .copied()
                .collect(),
        }
    }

    /// Merges two traces by arrival time (stable: ties keep `self`'s
    /// records first). The result spans the larger disk array.
    #[must_use]
    pub fn merge(&self, other: &Trace) -> Trace {
        let mut records = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (
            self.records.iter().peekable(),
            other.records.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.time <= y.time {
                        records.push(**x);
                        a.next();
                    } else {
                        records.push(**y);
                        b.next();
                    }
                }
                (Some(_), None) => {
                    records.extend(a.by_ref().copied());
                }
                (None, Some(_)) => {
                    records.extend(b.by_ref().copied());
                }
                (None, None) => break,
            }
        }
        Trace {
            disk_count: self.disk_count.max(other.disk_count),
            records,
        }
    }

    /// Writes the trace in a line-oriented text format:
    /// `time_us disk block blocks R|W` per record.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn to_writer<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(writer, "# powercache-trace v1 disks={}", self.disk_count)?;
        for r in &self.records {
            writeln!(
                writer,
                "{} {} {} {} {}",
                r.time.as_micros(),
                r.block.disk().index(),
                r.block.block().number(),
                r.blocks,
                r.op
            )?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::to_writer`].
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] with kind `InvalidData` on malformed input,
    /// or any underlying I/O error.
    pub fn from_reader<R: BufRead>(reader: R) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .ok_or_else(|| bad("empty trace file".into()))??;
        let disks: u32 = header
            .strip_prefix("# powercache-trace v1 disks=")
            .ok_or_else(|| bad(format!("bad header: {header}")))?
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad disk count: {e}")))?;
        let mut trace = Trace::new(disks);
        for line in lines {
            let line = line?;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut field = || {
                parts
                    .next()
                    .ok_or_else(|| bad(format!("short record line: {line}")))
            };
            let time: u64 = field()?
                .parse()
                .map_err(|e| bad(format!("bad time: {e}")))?;
            let disk: u32 = field()?
                .parse()
                .map_err(|e| bad(format!("bad disk: {e}")))?;
            let block: u64 = field()?
                .parse()
                .map_err(|e| bad(format!("bad block: {e}")))?;
            let blocks: u64 = field()?
                .parse()
                .map_err(|e| bad(format!("bad length: {e}")))?;
            let op = match field()? {
                "R" => IoOp::Read,
                "W" => IoOp::Write,
                other => return Err(bad(format!("bad op: {other}"))),
            };
            trace.push(Record {
                time: SimTime::from_micros(time),
                block: BlockId::new(DiskId::new(disk), BlockNo::new(block)),
                blocks,
                op,
            });
        }
        Ok(trace)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: u64, disk: u32, block: u64, op: IoOp) -> Record {
        Record::new(
            SimTime::from_millis(ms),
            BlockId::new(DiskId::new(disk), BlockNo::new(block)),
            op,
        )
    }

    #[test]
    fn push_keeps_order() {
        let mut t = Trace::new(2);
        t.push(rec(1, 0, 1, IoOp::Read));
        t.push(rec(2, 1, 2, IoOp::Write));
        assert_eq!(t.len(), 2);
        assert_eq!(t.duration(), SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn push_rejects_out_of_order() {
        let mut t = Trace::new(1);
        t.push(rec(2, 0, 1, IoOp::Read));
        t.push(rec(1, 0, 2, IoOp::Read));
    }

    #[test]
    #[should_panic(expected = "disks")]
    fn from_records_rejects_bad_disk() {
        let _ = Trace::from_records(1, vec![rec(1, 3, 1, IoOp::Read)]);
    }

    #[test]
    fn round_trip_text_format() {
        let mut t = Trace::new(3);
        t.push(rec(1, 0, 10, IoOp::Read));
        t.push(rec(5, 2, 20, IoOp::Write));
        let mut buf = Vec::new();
        t.to_writer(&mut buf).unwrap();
        let back = Trace::from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_reader_rejects_garbage() {
        assert!(Trace::from_reader("nonsense\n".as_bytes()).is_err());
        assert!(Trace::from_reader("# powercache-trace v1 disks=1\n1 0 0\n".as_bytes()).is_err());
        assert!(
            Trace::from_reader("# powercache-trace v1 disks=1\n1 0 0 1 X\n".as_bytes()).is_err()
        );
    }

    #[test]
    fn empty_trace_duration_is_zero() {
        let t = Trace::new(1);
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimDuration::ZERO);
    }

    #[test]
    fn window_rebases_and_filters() {
        let t = Trace::from_records(
            1,
            vec![
                rec(10, 0, 1, IoOp::Read),
                rec(20, 0, 2, IoOp::Read),
                rec(30, 0, 3, IoOp::Read),
            ],
        );
        let w = t.window(SimTime::from_millis(15), SimTime::from_millis(30));
        assert_eq!(w.len(), 1);
        assert_eq!(w.records()[0].time, SimTime::from_millis(5));
        assert_eq!(w.records()[0].block.block().number(), 2);
        assert_eq!(w.disk_count(), 1);
    }

    #[test]
    fn filter_disk_keeps_addressing() {
        let t = Trace::from_records(
            3,
            vec![
                rec(1, 0, 1, IoOp::Read),
                rec(2, 2, 2, IoOp::Write),
                rec(3, 0, 3, IoOp::Read),
            ],
        );
        let only2 = t.filter_disk(DiskId::new(2));
        assert_eq!(only2.len(), 1);
        assert_eq!(only2.disk_count(), 3, "addresses stay valid");
        assert_eq!(only2.records()[0].op, IoOp::Write);
    }

    #[test]
    fn merge_interleaves_by_time() {
        let a = Trace::from_records(1, vec![rec(1, 0, 1, IoOp::Read), rec(5, 0, 2, IoOp::Read)]);
        let b = Trace::from_records(2, vec![rec(3, 1, 9, IoOp::Write), rec(7, 1, 8, IoOp::Read)]);
        let m = a.merge(&b);
        assert_eq!(m.disk_count(), 2);
        let times: Vec<u64> = m.iter().map(|r| r.time.as_micros() / 1_000).collect();
        assert_eq!(times, vec![1, 3, 5, 7]);
        // Merging is symmetric up to tie order.
        assert_eq!(b.merge(&a).len(), 4);
    }

    #[test]
    fn merge_ties_are_stable() {
        let a = Trace::from_records(1, vec![rec(5, 0, 1, IoOp::Read)]);
        let b = Trace::from_records(1, vec![rec(5, 0, 2, IoOp::Read)]);
        let m = a.merge(&b);
        assert_eq!(m.records()[0].block.block().number(), 1);
        assert_eq!(m.records()[1].block.block().number(), 2);
    }

    #[test]
    fn iterates_in_order() {
        let mut t = Trace::new(1);
        t.push(rec(1, 0, 1, IoOp::Read));
        t.push(rec(2, 0, 2, IoOp::Read));
        let blocks: Vec<u64> = (&t).into_iter().map(|r| r.block.block().number()).collect();
        assert_eq!(blocks, vec![1, 2]);
    }
}
