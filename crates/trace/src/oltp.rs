//! OLTP-like trace generator.
//!
//! The paper's OLTP trace was collected below a Microsoft SQL Server
//! running TPC-C for two hours (21 disks, 22% writes, 99 ms mean
//! inter-arrival; writes to log disks excluded). Because a second-level
//! storage cache sits *below* the database buffer pool, the trace has the
//! characteristic two-population structure the paper's §5.3 analysis
//! exposes:
//!
//! * **Hot disks** (the paper's disk 4): high request rate, huge working
//!   set, near-zero re-reference locality — essentially uncacheable. Their
//!   inter-arrival gaps sit far below any spin-down threshold, so they
//!   stay active under every policy.
//! * **Cacheable disks** (the paper's disk 14): moderate request rate
//!   (mean raw gap ≈ 35 s, straddling the deep demotion thresholds) over a
//!   small per-disk working set, plus a stream of freshly-allocated
//!   blocks. A recency cache thrashes on them — their block reuse distance
//!   exceeds LRU's turnover — so under LRU most accesses reach the disk
//!   and the disk oscillates through expensive spin-down/spin-up cycles:
//!   many spin-ups, long waits (the paper's Figure 7a). A policy that pins
//!   their working set (PA-LRU, and to a degree Belady/OPG) absorbs the
//!   re-reads, stretching the disk-level gaps roughly `1/(1-reuse)`-fold
//!   (Figure 7b's several-fold bar) and into the standby region.

use pc_units::{BlockId, BlockNo, DiskId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GapDistribution, IoOp, Record, Trace, ZipfSampler};

/// Configuration of the OLTP-like generator.
///
/// Defaults approximate the paper's Table 2 row for OLTP: 21 disks, 22%
/// writes, ≈ 99 ms mean inter-arrival over the whole trace, two hours of
/// traffic (72 000 requests).
///
/// # Examples
///
/// ```
/// use pc_trace::{OltpConfig, TraceStats};
///
/// let trace = OltpConfig::default().with_requests(3_000).generate(1);
/// assert_eq!(TraceStats::of(&trace).disks, 21);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OltpConfig {
    /// Total number of requests.
    pub requests: usize,
    /// Number of hot (uncacheable, high-rate) disks, placed first.
    pub hot_disks: u32,
    /// Number of cacheable (small-working-set) disks.
    pub cacheable_disks: u32,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Mean inter-arrival time of the merged request stream.
    pub mean_gap: SimDuration,
    /// Share of the request stream addressed to hot disks.
    pub hot_share: f64,
    /// Working-set size of each hot disk, in blocks (uniform access).
    pub hot_working_set: u64,
    /// Working-set size of each cacheable disk, in blocks.
    pub cacheable_working_set: u64,
    /// Probability that a cacheable-disk access re-reads the working set
    /// (the rest touch freshly-allocated blocks and are unavoidable cold
    /// misses).
    pub reuse_probability: f64,
    /// Mean number of requests per arrival event on cacheable disks
    /// (geometric; 1.0 = steady arrivals, the default).
    pub burst_len: f64,
    /// Mean gap between requests inside a burst (only used when
    /// `burst_len > 1`).
    pub intra_burst_gap: SimDuration,
    /// Zipf exponent for working-set block popularity.
    pub zipf_theta: f64,
}

impl Default for OltpConfig {
    fn default() -> Self {
        OltpConfig {
            requests: 72_000,
            hot_disks: 8,
            cacheable_disks: 13,
            write_fraction: 0.22,
            mean_gap: SimDuration::from_millis(99),
            hot_share: 0.963,
            hot_working_set: 40_000,
            cacheable_working_set: 20,
            reuse_probability: 0.9,
            burst_len: 1.0,
            intra_burst_gap: SimDuration::from_millis(250),
            zipf_theta: 0.2,
        }
    }
}

impl OltpConfig {
    /// Sets the total request count (rates keep the configured mean
    /// inter-arrival time and traffic mixture, so the trace just gets
    /// shorter or longer).
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the mean inter-arrival time of the merged stream.
    #[must_use]
    pub fn with_mean_gap(mut self, gap: SimDuration) -> Self {
        self.mean_gap = gap;
        self
    }

    /// Total number of disks.
    #[must_use]
    pub fn disk_count(&self) -> u32 {
        self.hot_disks + self.cacheable_disks
    }

    /// First cacheable disk (cacheable disks occupy the tail of the array).
    #[must_use]
    pub fn first_cacheable(&self) -> DiskId {
        DiskId::new(self.hot_disks)
    }

    /// Generates a trace deterministically from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no disks or no requests.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.disk_count() > 0, "need at least one disk");
        assert!(self.requests > 0, "need at least one request");
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = ZipfSampler::new(self.cacheable_working_set.max(1) as usize, self.zipf_theta);

        // Build the arrival skeleton: (time, disk, kind) events, then
        // materialize blocks in time order. Generate 15% extra wall-clock
        // so truncation to `requests` almost never comes up short; if the
        // draw is unlucky, extend until we have enough.
        let mut events: Vec<(SimTime, u32, Kind)> = Vec::with_capacity(self.requests * 2);
        let mut horizon =
            SimDuration::from_secs_f64(self.mean_gap.as_secs_f64() * self.requests as f64 * 1.15);
        loop {
            events.clear();
            self.push_hot_events(&mut rng, horizon, &mut events);
            self.push_cacheable_events(&mut rng, horizon, &mut events);
            if events.len() >= self.requests {
                break;
            }
            horizon = horizon.mul_f64(1.5);
        }
        events.sort_by_key(|&(t, d, _)| (t, d));
        events.truncate(self.requests);

        // Materialize blocks. Hot disks draw uniformly from a large
        // working set; cacheable disks draw Zipf from a small one; fresh
        // accesses walk a per-disk allocation frontier.
        let mut fresh_frontier: Vec<u64> =
            vec![self.cacheable_working_set + 1; self.disk_count() as usize];
        let mut trace = Trace::new(self.disk_count());
        for (time, disk, kind) in events {
            let block = match kind {
                Kind::Hot => rng.gen_range(0..self.hot_working_set.max(1)),
                Kind::Reuse => zipf.sample(&mut rng) as u64 - 1,
                Kind::Fresh => {
                    let d = disk as usize;
                    fresh_frontier[d] += 1;
                    fresh_frontier[d]
                }
            };
            let op = if rng.gen::<f64>() < self.write_fraction {
                IoOp::Write
            } else {
                IoOp::Read
            };
            trace.push(Record::new(
                time,
                BlockId::new(DiskId::new(disk), BlockNo::new(block)),
                op,
            ));
        }
        trace
    }

    /// Hot stream: Poisson arrivals at rate `hot_share / mean_gap`, disks
    /// drawn uniformly.
    fn push_hot_events(
        &self,
        rng: &mut StdRng,
        horizon: SimDuration,
        events: &mut Vec<(SimTime, u32, Kind)>,
    ) {
        if self.hot_disks == 0 || self.hot_share <= 0.0 {
            return;
        }
        let gap = SimDuration::from_secs_f64(self.mean_gap.as_secs_f64() / self.hot_share);
        let arrivals = GapDistribution::exponential(gap);
        let mut now = SimTime::ZERO;
        loop {
            now += arrivals.sample(rng);
            if now >= SimTime::ZERO + horizon {
                return;
            }
            events.push((now, rng.gen_range(0..self.hot_disks), Kind::Hot));
        }
    }

    /// Cacheable stream: per-disk Poisson arrival events carrying
    /// (geometric) `burst_len` requests each, filling the remaining
    /// `1 - hot_share` of the traffic.
    fn push_cacheable_events(
        &self,
        rng: &mut StdRng,
        horizon: SimDuration,
        events: &mut Vec<(SimTime, u32, Kind)>,
    ) {
        if self.cacheable_disks == 0 || self.hot_share >= 1.0 {
            return;
        }
        let rate = (1.0 - self.hot_share) / self.mean_gap.as_secs_f64();
        let per_disk_event_rate = rate / self.burst_len.max(1.0) / f64::from(self.cacheable_disks);
        let arrivals = GapDistribution::exponential(SimDuration::from_secs_f64(
            1.0 / per_disk_event_rate.max(1e-12),
        ));
        let intra = GapDistribution::exponential(self.intra_burst_gap);
        for disk in 0..self.cacheable_disks {
            let disk_id = self.hot_disks + disk;
            let mut t = SimTime::ZERO;
            loop {
                t += arrivals.sample(rng);
                if t >= SimTime::ZERO + horizon {
                    break;
                }
                let len = geometric_len(rng, self.burst_len);
                let mut bt = t;
                for i in 0..len {
                    if i > 0 {
                        bt += intra.sample(rng);
                    }
                    let kind = if rng.gen::<f64>() < self.reuse_probability {
                        Kind::Reuse
                    } else {
                        Kind::Fresh
                    };
                    events.push((bt, disk_id, kind));
                }
            }
        }
    }
}

/// Which sub-population an arrival-skeleton event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Hot,
    Reuse,
    Fresh,
}

/// Geometric burst length with the given mean, at least 1.
fn geometric_len<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn matches_table2_characteristics() {
        let t = OltpConfig::default().with_requests(30_000).generate(11);
        let s = TraceStats::of(&t);
        assert_eq!(s.disks, 21);
        assert_eq!(s.requests, 30_000);
        assert!(
            (s.write_fraction - 0.22).abs() < 0.02,
            "writes {}",
            s.write_fraction
        );
        let gap = s.mean_interarrival.as_millis_f64();
        assert!((gap - 99.0).abs() < 12.0, "mean gap {gap}ms");
    }

    #[test]
    fn hot_disks_receive_most_traffic() {
        let cfg = OltpConfig::default().with_requests(30_000);
        let s = TraceStats::of(&cfg.generate(3));
        let hot: usize = s.per_disk[..cfg.hot_disks as usize]
            .iter()
            .map(|d| d.requests)
            .sum();
        let share = hot as f64 / s.requests as f64;
        assert!((share - 0.963).abs() < 0.03, "hot share {share}");
    }

    #[test]
    fn cacheable_disks_have_small_working_sets() {
        let cfg = OltpConfig::default().with_requests(40_000);
        let s = TraceStats::of(&cfg.generate(5));
        for d in &s.per_disk[cfg.hot_disks as usize..] {
            assert!(
                d.unique_blocks < 3_000,
                "cacheable disk touched {} blocks",
                d.unique_blocks
            );
        }
        // Hot disks touch far more distinct blocks than cacheable ones.
        let hot_avg: f64 = s.per_disk[..cfg.hot_disks as usize]
            .iter()
            .map(|d| d.unique_blocks as f64)
            .sum::<f64>()
            / f64::from(cfg.hot_disks);
        let cache_avg: f64 = s.per_disk[cfg.hot_disks as usize..]
            .iter()
            .map(|d| d.unique_blocks as f64)
            .sum::<f64>()
            / f64::from(cfg.cacheable_disks);
        assert!(hot_avg > 4.0 * cache_avg);
    }

    #[test]
    fn cacheable_disk_gaps_straddle_the_deep_thresholds() {
        // The cacheable disks' raw gaps must sit near the deep demotion
        // thresholds (NAP3/NAP4/standby start at ~19 s / ~32 s / ~96 s):
        // under LRU they then oscillate through expensive spin-up/down
        // cycles, which is exactly the regime of the paper's disk 14.
        let cfg = OltpConfig::default().with_requests(40_000);
        let s = TraceStats::of(&cfg.generate(7));
        for d in &s.per_disk[cfg.hot_disks as usize..] {
            let gap = d.mean_interarrival.as_secs_f64();
            assert!((22.0..=55.0).contains(&gap), "cacheable gap {gap}s");
        }
        let hot_gap = s.per_disk[0].mean_interarrival.as_secs_f64();
        assert!(hot_gap < 1.5, "hot gap {hot_gap}s");
    }

    #[test]
    fn cacheable_cold_fraction_is_below_classifier_threshold() {
        // PA-LRU classifies a disk as priority only when its cold-access
        // fraction stays below α = 50%. The classifier is epoch-based (the
        // steady state sees ~30% fresh accesses); the whole-trace figure
        // additionally pays the one-time working-set fill, so allow head
        // room above the per-epoch target here.
        let cfg = OltpConfig::default().with_requests(60_000);
        let t = cfg.generate(13);
        let s = TraceStats::of(&t);
        for d in &s.per_disk[cfg.hot_disks as usize..] {
            let cold = d.unique_blocks as f64 / d.requests as f64;
            assert!(cold < 0.6, "cacheable cold fraction {cold}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = OltpConfig::default().with_requests(2_000);
        assert_eq!(cfg.generate(1), cfg.generate(1));
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn bursty_variant_still_generates_requested_count() {
        let cfg = OltpConfig {
            burst_len: 8.0,
            ..OltpConfig::default()
        }
        .with_requests(10_000);
        assert_eq!(cfg.generate(2).len(), 10_000);
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 50_000;
        let total: usize = (0..n).map(|_| geometric_len(&mut rng, 8.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.3, "mean {mean}");
        assert_eq!(geometric_len(&mut rng, 0.5), 1);
    }
}
