//! Streaming record iteration over the named workloads.
//!
//! Batch drivers materialize a whole [`Trace`] up front; an online load
//! generator instead wants to *draw* requests while it runs, without
//! bounding the run length at allocation time. [`Workload`] names the
//! three standard workload families and [`Workload::stream`] yields their
//! records one at a time:
//!
//! * `synthetic` streams truly lazily ([`crate::SyntheticConfig::stream`])
//!   — memory use is O(recency stack), so an unbounded request budget is
//!   fine.
//! * `oltp` / `cello96` are two-phase generators (they sort an arrival
//!   skeleton before materializing blocks), so their streams iterate an
//!   eagerly generated trace; bound `requests` to what you will actually
//!   send.

use crate::nonstationary::NonStationaryStream;
use crate::synthetic::SyntheticStream;
use crate::{CelloConfig, NonStationaryConfig, OltpConfig, Record, Scenario, SyntheticConfig};

/// One of the standard workload families, configured and ready to stream.
///
/// # Examples
///
/// ```
/// use pc_trace::Workload;
///
/// let w = Workload::parse("synthetic").unwrap().with_requests(100);
/// let records: Vec<_> = w.stream(7).collect();
/// assert_eq!(records.len(), 100);
/// // Same seed, same records — streams are deterministic.
/// assert_eq!(records, w.stream(7).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The Table-3 synthetic generator (lazy streaming).
    Synthetic(SyntheticConfig),
    /// The OLTP-like generator (eagerly generated, then streamed).
    Oltp(OltpConfig),
    /// The Cello96-like generator (eagerly generated, then streamed).
    Cello(CelloConfig),
    /// A non-stationary scenario (lazy streaming) — see
    /// [`NonStationaryConfig`].
    NonStationary(NonStationaryConfig),
}

impl Workload {
    /// Parses a workload name: `synthetic`, `oltp`, `cello96` (also
    /// accepts `cello`), or a non-stationary scenario —
    /// `nonstationary:diurnal`, `nonstationary:flash-crowd`,
    /// `nonstationary:churn`, `nonstationary:phase-change` — each with
    /// its default configuration.
    #[must_use]
    pub fn parse(name: &str) -> Option<Workload> {
        if let Some(scenario) = name.strip_prefix("nonstationary:") {
            return Scenario::parse(scenario)
                .map(|s| Workload::NonStationary(NonStationaryConfig::new(s)));
        }
        match name {
            "synthetic" => Some(Workload::Synthetic(SyntheticConfig::default())),
            "oltp" => Some(Workload::Oltp(OltpConfig::default())),
            "cello96" | "cello" => Some(Workload::Cello(CelloConfig::default())),
            _ => None,
        }
    }

    /// The canonical workload name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Synthetic(_) => "synthetic",
            Workload::Oltp(_) => "oltp",
            Workload::Cello(_) => "cello96",
            Workload::NonStationary(c) => match c.scenario {
                Scenario::Diurnal => "nonstationary:diurnal",
                Scenario::FlashCrowd => "nonstationary:flash-crowd",
                Scenario::Churn => "nonstationary:churn",
                Scenario::PhaseChange => "nonstationary:phase-change",
            },
        }
    }

    /// Number of disks the workload addresses.
    #[must_use]
    pub fn disk_count(&self) -> u32 {
        match self {
            Workload::Synthetic(c) => c.disks,
            Workload::Oltp(c) => c.disk_count(),
            Workload::Cello(c) => c.disks,
            Workload::NonStationary(c) => c.disks,
        }
    }

    /// Bounds the stream to `requests` records.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Workload {
        match &mut self {
            Workload::Synthetic(c) => c.requests = requests,
            Workload::Oltp(c) => c.requests = requests,
            Workload::Cello(c) => c.requests = requests,
            Workload::NonStationary(c) => c.requests = requests,
        }
        self
    }

    /// The configured request bound.
    #[must_use]
    pub fn requests(&self) -> usize {
        match self {
            Workload::Synthetic(c) => c.requests,
            Workload::Oltp(c) => c.requests,
            Workload::Cello(c) => c.requests,
            Workload::NonStationary(c) => c.requests,
        }
    }

    /// Streams the workload's records deterministically from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the underlying generator rejects its configuration (see
    /// each config type's `generate`).
    #[must_use]
    pub fn stream(&self, seed: u64) -> RecordStream {
        let inner = match self {
            Workload::Synthetic(c) => StreamInner::Lazy(c.stream(seed)),
            Workload::Oltp(c) => StreamInner::Eager(c.generate(seed).into_records().into_iter()),
            Workload::Cello(c) => StreamInner::Eager(c.generate(seed).into_records().into_iter()),
            Workload::NonStationary(c) => StreamInner::Phased(c.stream(seed)),
        };
        RecordStream { inner }
    }
}

/// A deterministic iterator of workload records — see [`Workload::stream`].
#[derive(Debug, Clone)]
pub struct RecordStream {
    inner: StreamInner,
}

impl RecordStream {
    /// Streams pre-materialized records — the adapter file-backed sources
    /// (e.g. replayed binary trace files) use to feed consumers of the
    /// generator streams.
    #[must_use]
    pub fn from_records(records: Vec<Record>) -> RecordStream {
        RecordStream {
            inner: StreamInner::Eager(records.into_iter()),
        }
    }
}

#[derive(Debug, Clone)]
enum StreamInner {
    Lazy(SyntheticStream),
    Phased(NonStationaryStream),
    Eager(std::vec::IntoIter<Record>),
}

impl Iterator for RecordStream {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        match &mut self.inner {
            StreamInner::Lazy(s) => s.next(),
            StreamInner::Phased(s) => s.next(),
            StreamInner::Eager(s) => s.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    /// Load generators move streams into connection threads.
    fn assert_send<T: Send>() {}

    #[test]
    fn streams_are_send() {
        assert_send::<RecordStream>();
    }

    #[test]
    fn synthetic_stream_matches_eager_generate() {
        let cfg = SyntheticConfig::default().with_requests(2_000);
        let eager = cfg.generate(11);
        let streamed: Vec<Record> = Workload::Synthetic(cfg).stream(11).collect();
        assert_eq!(eager.records(), streamed.as_slice());
    }

    #[test]
    fn eager_workloads_stream_their_generated_trace() {
        for name in ["oltp", "cello96"] {
            let w = Workload::parse(name).unwrap().with_requests(500);
            let streamed: Vec<Record> = w.stream(3).collect();
            assert_eq!(streamed.len(), 500, "{name}");
            // Streamed records form a valid trace over the workload's disks.
            let t = Trace::from_records(w.disk_count(), streamed);
            assert_eq!(t.disk_count(), w.disk_count());
        }
    }

    #[test]
    fn from_records_streams_verbatim() {
        let w = Workload::parse("synthetic").unwrap().with_requests(50);
        let records: Vec<Record> = w.stream(9).collect();
        let replayed: Vec<Record> = RecordStream::from_records(records.clone()).collect();
        assert_eq!(replayed, records);
    }

    #[test]
    fn parse_covers_the_three_families() {
        assert_eq!(Workload::parse("synthetic").unwrap().name(), "synthetic");
        assert_eq!(Workload::parse("oltp").unwrap().name(), "oltp");
        assert_eq!(Workload::parse("cello96").unwrap().name(), "cello96");
        assert_eq!(Workload::parse("cello").unwrap().name(), "cello96");
        assert!(Workload::parse("nope").is_none());
    }

    #[test]
    fn parse_covers_the_nonstationary_scenarios() {
        for name in [
            "nonstationary:diurnal",
            "nonstationary:flash-crowd",
            "nonstationary:churn",
            "nonstationary:phase-change",
        ] {
            let w = Workload::parse(name).unwrap();
            assert_eq!(w.name(), name);
            assert_eq!(w.disk_count(), 20);
        }
        assert!(Workload::parse("nonstationary:nope").is_none());
        assert!(Workload::parse("nonstationary:").is_none());
    }

    #[test]
    fn nonstationary_streams_lazily_and_matches_eager_generate() {
        let w = Workload::parse("nonstationary:churn")
            .unwrap()
            .with_requests(1_500);
        let streamed: Vec<Record> = w.stream(11).collect();
        assert_eq!(streamed.len(), 1_500);
        if let Workload::NonStationary(c) = &w {
            assert_eq!(c.generate(11).records(), streamed.as_slice());
        } else {
            unreachable!();
        }
        // Unbounded streams still yield on demand.
        let unbounded = w.with_requests(usize::MAX);
        assert_eq!(unbounded.stream(1).take(10).count(), 10);
    }

    #[test]
    fn request_bound_is_respected_lazily() {
        let w = Workload::parse("synthetic")
            .unwrap()
            .with_requests(usize::MAX);
        // An effectively unbounded stream still yields on demand.
        let first_10: Vec<Record> = w.stream(1).take(10).collect();
        assert_eq!(first_10.len(), 10);
        assert_eq!(w.requests(), usize::MAX);
    }
}
