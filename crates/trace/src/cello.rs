//! Cello96-like trace generator.
//!
//! HP's Cello96 file-server trace, as characterized by the paper: 19
//! disks, 38% writes, a 5.61 ms mean inter-arrival time, and — crucially
//! for the paper's §5.2 analysis — about 64% *cold* accesses (blocks never
//! seen before), which caps what any replacement policy can do. Request
//! gaps are tiny even for the cold-miss sub-stream, so disks rarely get a
//! chance to descend the power ladder and PA-LRU's edge over LRU is small.

use pc_units::{BlockId, BlockNo, DiskId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GapDistribution, IoOp, Record, Trace, ZipfSampler};

/// Configuration of the Cello96-like generator.
///
/// Defaults match the paper's Table 2 row: 19 disks, 38% writes, 5.61 ms
/// mean inter-arrival, ~64% cold accesses. A file server's load is not
/// stationary, so the generator alternates busy and quiet phases
/// (`busy_secs`/`quiet_secs` at `quiet_factor` of the busy rate) while
/// preserving the overall mean inter-arrival time; the quiet phases are
/// where any energy headroom on Cello lives.
///
/// # Examples
///
/// ```
/// use pc_trace::{CelloConfig, TraceStats};
///
/// let stats = TraceStats::of(&CelloConfig::default().with_requests(4_000).generate(3));
/// assert_eq!(stats.disks, 19);
/// assert!(stats.write_fraction > 0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CelloConfig {
    /// Total number of requests.
    pub requests: usize,
    /// Number of disks.
    pub disks: u32,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Mean inter-arrival time of the merged stream.
    pub mean_gap: SimDuration,
    /// Fraction of accesses that touch a never-before-seen block.
    pub cold_fraction: f64,
    /// Depth of the per-disk recency stack for warm re-accesses.
    pub stack_depth: usize,
    /// Zipf exponent for warm re-access stack distances.
    pub zipf_theta: f64,
    /// Zipf exponent skewing traffic across disks.
    pub disk_theta: f64,
    /// Number of busy/quiet cycles across the trace (phase lengths scale
    /// with the trace duration so any request count sees whole cycles).
    pub cycles: f64,
    /// Fraction of wall-clock spent in the quiet phase of each cycle.
    pub quiet_share: f64,
    /// Arrival-rate multiplier during quiet phases (1.0 = stationary).
    pub quiet_factor: f64,
    /// Maximum transfer length of a cold (scan/append) access, in blocks.
    pub max_run_blocks: u64,
}

impl Default for CelloConfig {
    fn default() -> Self {
        CelloConfig {
            requests: 200_000,
            disks: 19,
            write_fraction: 0.38,
            mean_gap: SimDuration::from_micros(5_610),
            cold_fraction: 0.64,
            stack_depth: 4_096,
            zipf_theta: 0.9,
            disk_theta: 0.5,
            cycles: 2.0,
            quiet_share: 0.4,
            quiet_factor: 0.01,
            max_run_blocks: 8,
        }
    }
}

impl CelloConfig {
    /// Sets the total request count.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the mean inter-arrival time.
    #[must_use]
    pub fn with_mean_gap(mut self, gap: SimDuration) -> Self {
        self.mean_gap = gap;
        self
    }

    /// Generates a trace deterministically from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no disks.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.disks > 0, "need at least one disk");
        assert!(
            (0.0..1.0).contains(&self.quiet_share) && self.quiet_factor > 0.0,
            "quiet share must be in [0,1) and the quiet factor positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Phase lengths scale with the expected trace duration; the
        // busy-phase rate is boosted so the configured overall mean gap
        // holds despite the quiet phases.
        let duration = self.mean_gap.as_secs_f64() * self.requests as f64;
        let cycle = duration / self.cycles.max(1e-9);
        // Quiet phase in the middle of each cycle: traces then start and
        // end inside busy phases, keeping the realized duration (and
        // hence the mean gap) unbiased.
        let quiet_len = cycle * self.quiet_share;
        let quiet_start = cycle * (1.0 - self.quiet_share) / 2.0;
        let duty = (1.0 - self.quiet_share) + self.quiet_share * self.quiet_factor;
        let busy_gap = SimDuration::from_secs_f64(self.mean_gap.as_secs_f64() * duty);
        let arrivals = GapDistribution::exponential(busy_gap);
        let disk_pick = ZipfSampler::new(self.disks as usize, self.disk_theta);
        let stack_pick = ZipfSampler::new(self.stack_depth.max(1), self.zipf_theta);

        let mut trace = Trace::new(self.disks);
        let mut now = SimTime::ZERO;
        // Fresh blocks walk an allocation frontier per disk (scans, log
        // appends, new files); warm accesses revisit the recency stack.
        let mut frontier = vec![0u64; self.disks as usize];
        let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); self.disks as usize];

        for _ in 0..self.requests {
            // Busy/quiet modulation: inside a quiet phase the arrival rate
            // drops to `quiet_factor` (Poisson thinning).
            loop {
                now += arrivals.sample(&mut rng);
                let cycle_pos = now.as_secs_f64() % cycle;
                let in_quiet = (quiet_start..quiet_start + quiet_len).contains(&cycle_pos);
                if !in_quiet || self.quiet_factor >= 1.0 || rng.gen::<f64>() < self.quiet_factor {
                    break;
                }
            }
            let disk = (disk_pick.sample(&mut rng) - 1) as u32;
            let d = disk as usize;
            let cold = rng.gen::<f64>() < self.cold_fraction || stacks[d].is_empty();
            let mut run = 1u64;
            let block = if cold {
                // Scans and appends stream fresh blocks in short runs.
                run = rng.gen_range(1..=self.max_run_blocks.max(1));
                let first = frontier[d] + 1;
                frontier[d] += run;
                first
            } else {
                let depth = stack_pick.sample(&mut rng).min(stacks[d].len());
                stacks[d][stacks[d].len() - depth]
            };
            if let Some(pos) = stacks[d].iter().rposition(|&b| b == block) {
                stacks[d].remove(pos);
            } else if stacks[d].len() == self.stack_depth {
                stacks[d].remove(0);
            }
            stacks[d].push(block);
            let op = if rng.gen::<f64>() < self.write_fraction {
                IoOp::Write
            } else {
                IoOp::Read
            };
            trace.push(Record {
                time: now,
                block: BlockId::new(DiskId::new(disk), BlockNo::new(block)),
                blocks: run,
                op,
            });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn matches_table2_characteristics() {
        let t = CelloConfig::default().with_requests(40_000).generate(17);
        let s = TraceStats::of(&t);
        assert_eq!(s.disks, 19);
        assert!(
            (s.write_fraction - 0.38).abs() < 0.02,
            "writes {}",
            s.write_fraction
        );
        let gap = s.mean_interarrival.as_millis_f64();
        assert!((gap - 5.61).abs() < 0.6, "mean gap {gap}ms");
    }

    #[test]
    fn cold_fraction_is_dominant() {
        let s = TraceStats::of(&CelloConfig::default().with_requests(40_000).generate(5));
        assert!(
            (s.cold_fraction - 0.64).abs() < 0.05,
            "cold {}",
            s.cold_fraction
        );
    }

    #[test]
    fn traffic_is_skewed_across_disks() {
        let s = TraceStats::of(&CelloConfig::default().with_requests(40_000).generate(5));
        let busiest = s.per_disk.iter().map(|d| d.requests).max().unwrap();
        let quietest = s.per_disk.iter().map(|d| d.requests).min().unwrap();
        assert!(busiest > 2 * quietest, "{busiest} vs {quietest}");
    }

    #[test]
    fn per_disk_gaps_stay_below_spin_down_scale() {
        // Even the quietest disk sees requests every few hundred ms — far
        // below the ~10 s first spin-down threshold, the very property that
        // limits energy savings on Cello (paper §5.2).
        let s = TraceStats::of(&CelloConfig::default().with_requests(60_000).generate(5));
        for d in &s.per_disk {
            assert!(d.mean_interarrival < SimDuration::from_secs(2));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CelloConfig::default().with_requests(2_000);
        assert_eq!(cfg.generate(4), cfg.generate(4));
        assert_ne!(cfg.generate(4), cfg.generate(5));
    }
}
