//! Data-sheet parameters of a disk drive.

use pc_units::{Joules, SimDuration, Watts};

/// The power-relevant data-sheet parameters of one disk drive, plus the
/// multi-speed extension parameters used by the paper.
///
/// The values reported in the paper's Table 1 (IBM Ultrastar 36Z15) are
/// available from [`DiskPowerSpec::ultrastar_36z15`]. All derived
/// quantities — per-mode powers, transition costs, envelopes — live in
/// [`PowerModel`](crate::PowerModel).
///
/// # Examples
///
/// ```
/// use pc_diskmodel::DiskPowerSpec;
/// use pc_units::Joules;
///
/// // Figure 8 varies the standby→active spin-up energy.
/// let spec = DiskPowerSpec::ultrastar_36z15().with_spin_up_energy(Joules::new(67.5));
/// assert_eq!(spec.spin_up_energy, Joules::new(67.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskPowerSpec {
    /// Power while actively reading or writing.
    pub active_power: Watts,
    /// Power while seeking.
    pub seek_power: Watts,
    /// Power while spinning at full speed with no activity.
    pub idle_power: Watts,
    /// Power in standby (spindle stopped).
    pub standby_power: Watts,
    /// Time to spin up from standby to active.
    pub spin_up_time: SimDuration,
    /// Energy to spin up from standby to active.
    pub spin_up_energy: Joules,
    /// Time to spin down from active to standby.
    pub spin_down_time: SimDuration,
    /// Energy to spin down from active to standby.
    pub spin_down_energy: Joules,
    /// Full rotational speed, in RPM.
    pub max_rpm: u32,
    /// Lowest intermediate rotational speed, in RPM.
    pub min_rpm: u32,
    /// Spacing between intermediate rotational speeds, in RPM.
    pub rpm_step: u32,
    /// Usable capacity, in blocks (see [`ServiceModel`](crate::ServiceModel)
    /// for the block size).
    pub capacity_blocks: u64,
}

impl DiskPowerSpec {
    /// The IBM Ultrastar 36Z15 parameters from the paper's Table 1.
    ///
    /// 18.4 GB, 15 000 RPM, 13.5 W active/seek, 10.2 W idle, 2.5 W standby,
    /// 10.9 s / 135 J spin-up, 1.5 s / 13 J spin-down, with the paper's
    /// multi-speed extension (intermediate speeds every 3 000 RPM down to
    /// 3 000 RPM).
    #[must_use]
    pub fn ultrastar_36z15() -> Self {
        DiskPowerSpec {
            active_power: Watts::new(13.5),
            seek_power: Watts::new(13.5),
            idle_power: Watts::new(10.2),
            standby_power: Watts::new(2.5),
            spin_up_time: SimDuration::from_millis(10_900),
            spin_up_energy: Joules::new(135.0),
            spin_down_time: SimDuration::from_millis(1_500),
            spin_down_energy: Joules::new(13.0),
            max_rpm: 15_000,
            min_rpm: 3_000,
            rpm_step: 3_000,
            // 18.4 GB at 8 KiB blocks.
            capacity_blocks: 18_400_000_000 / 8_192,
        }
    }

    /// A laptop-class disk in the spirit of the IBM Travelstar family,
    /// as used by Carrera & Bianchini's laptop/server combinations (the
    /// alternative the paper's §1 discusses): 4 200 RPM and single-speed
    /// (no intermediate modes), an order of magnitude less power than the
    /// Ultrastar, and a spin-up measured in a second rather than eleven.
    #[must_use]
    pub fn travelstar_laptop() -> Self {
        DiskPowerSpec {
            active_power: Watts::new(2.1),
            seek_power: Watts::new(2.3),
            idle_power: Watts::new(0.85),
            standby_power: Watts::new(0.25),
            spin_up_time: SimDuration::from_millis(1_800),
            spin_up_energy: Joules::new(8.0),
            spin_down_time: SimDuration::from_millis(400),
            spin_down_energy: Joules::new(1.0),
            max_rpm: 4_200,
            min_rpm: 4_200, // single-speed: only idle and standby
            rpm_step: 0,
            // 30 GB at 8 KiB blocks.
            capacity_blocks: 30_000_000_000 / 8_192,
        }
    }

    /// Returns a copy with a different standby→active spin-up energy
    /// (the sweep of the paper's Figure 8).
    ///
    /// Intermediate-mode transition costs, which the paper derives with the
    /// same linear model, scale along with it in
    /// [`PowerModel`](crate::PowerModel).
    #[must_use]
    pub fn with_spin_up_energy(mut self, energy: Joules) -> Self {
        self.spin_up_energy = energy;
        self
    }

    /// Returns a copy with a different standby→active spin-up time.
    #[must_use]
    pub fn with_spin_up_time(mut self, time: SimDuration) -> Self {
        self.spin_up_time = time;
        self
    }

    /// Number of intermediate ("NAP") rotational speeds between full speed
    /// and standby.
    ///
    /// For the Ultrastar extension this is 4: 12 000, 9 000, 6 000 and
    /// 3 000 RPM.
    #[must_use]
    pub fn nap_mode_count(&self) -> usize {
        if self.rpm_step == 0 || self.min_rpm >= self.max_rpm {
            return 0;
        }
        ((self.max_rpm - self.min_rpm) / self.rpm_step) as usize
    }
}

impl Default for DiskPowerSpec {
    fn default() -> Self {
        DiskPowerSpec::ultrastar_36z15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let s = DiskPowerSpec::ultrastar_36z15();
        assert_eq!(s.active_power, Watts::new(13.5));
        assert_eq!(s.idle_power, Watts::new(10.2));
        assert_eq!(s.standby_power, Watts::new(2.5));
        assert_eq!(s.spin_up_time, SimDuration::from_millis(10_900));
        assert_eq!(s.spin_up_energy, Joules::new(135.0));
        assert_eq!(s.spin_down_time, SimDuration::from_millis(1_500));
        assert_eq!(s.spin_down_energy, Joules::new(13.0));
        assert_eq!(s.max_rpm, 15_000);
        assert_eq!(s.min_rpm, 3_000);
    }

    #[test]
    fn nap_mode_count_matches_paper() {
        // 12k, 9k, 6k, 3k RPM.
        assert_eq!(DiskPowerSpec::ultrastar_36z15().nap_mode_count(), 4);
    }

    #[test]
    fn nap_mode_count_handles_degenerate_specs() {
        let mut s = DiskPowerSpec::ultrastar_36z15();
        s.rpm_step = 0;
        assert_eq!(s.nap_mode_count(), 0);
        let mut s = DiskPowerSpec::ultrastar_36z15();
        s.min_rpm = s.max_rpm;
        assert_eq!(s.nap_mode_count(), 0);
    }

    #[test]
    fn spin_up_overrides() {
        let s = DiskPowerSpec::ultrastar_36z15()
            .with_spin_up_energy(Joules::new(270.0))
            .with_spin_up_time(SimDuration::from_secs(20));
        assert_eq!(s.spin_up_energy, Joules::new(270.0));
        assert_eq!(s.spin_up_time, SimDuration::from_secs(20));
    }
}
