//! Precomputed idle-energy pricing tables.
//!
//! [`lower_envelope`](crate::PowerModel::lower_envelope) and
//! [`practical_idle_energy`](crate::PowerModel::practical_idle_energy) are
//! both piecewise-linear in the gap length: the envelope is a minimum of
//! per-mode energy lines (with feasibility cut-ins), and the practical
//! ladder energy is linear between consecutive demotion thresholds. OPG
//! prices every eviction candidate through these functions — up to three
//! calls per re-priced block — so the scan over modes / ladder steps is
//! replaced by an [`IdleEnergyTable`]: segment boundaries in integer
//! microseconds plus per-segment `(slope, intercept)` coefficients, making
//! a pricing call one tiny ordered lookup and one multiply-add.
//!
//! The table is **exact**, not approximate: segment coefficients are the
//! very `Watts`/`Joules` values the scan would combine, applied in the
//! same order of floating-point operations, and segment boundaries are
//! chosen so the winning mode is constant on every segment (candidate
//! boundaries bracket each pairwise line crossing and each feasibility
//! cut-in, and the winner is re-derived with the reference scan at each
//! candidate). The scan implementations stay available as
//! `*_scan` methods for equivalence tests and micro-benchmarks.

use pc_units::{Joules, SimDuration, Watts};

use crate::model::{LadderStep, ModeId, ModeSpec};

/// Precomputed piecewise-linear pricing for one [`PowerModel`]
/// (`crate::PowerModel`): the Figure-2 lower envelope and the
/// Practical-DPM ladder energy, each as segment tables over gap length.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct IdleEnergyTable {
    /// First gap (µs, inclusive) priced by each envelope segment;
    /// `env_start[0] == 0`.
    env_start: Vec<u64>,
    /// Winning mode per envelope segment (what Oracle DPM selects).
    env_mode: Vec<ModeId>,
    /// Energy-line slope per envelope segment.
    env_power: Vec<Watts>,
    /// Energy-line intercept `C_i = E_down + E_up` per envelope segment.
    env_overhead: Vec<Joules>,
    /// Ladder segment k prices gaps in `(prac_start[k], prac_start[k+1]]`.
    prac_start: Vec<u64>,
    /// Resting power of the ladder segment's mode.
    prac_power: Vec<Watts>,
    /// Energy accumulated by all fully-traversed earlier segments.
    prac_base: Vec<Joules>,
    /// Spin-down delta paid on entering this segment's mode (zero for the
    /// full-speed segment).
    prac_ddown: Vec<Joules>,
    /// Spin-up back to full speed from this segment's mode.
    prac_up: Vec<Joules>,
    /// `practical_idle_energy(0)`: the (zero) spin-up from full speed.
    prac_zero: Joules,
}

/// The per-mode Figure-2 energy line `(P_i, C_i)`.
fn line(modes: &[ModeSpec], i: usize) -> (Watts, Joules) {
    (
        modes[i].power,
        modes[i].spin_down.energy + modes[i].spin_up.energy,
    )
}

/// The reference argmin: the feasible mode with minimal energy line at
/// `gap`, exactly as the pre-table scan chose it (strict `<`, so ties keep
/// the shallower mode).
pub(crate) fn scan_oracle_mode(modes: &[ModeSpec], gap: SimDuration) -> ModeId {
    let mut best = 0usize;
    let (p0, c0) = line(modes, 0);
    let mut best_energy = p0 * gap + c0;
    for (i, m) in modes.iter().enumerate().skip(1) {
        if m.spin_down.time + m.spin_up.time > gap {
            continue;
        }
        let (p, c) = line(modes, i);
        let e = p * gap + c;
        if e < best_energy {
            best = i;
            best_energy = e;
        }
    }
    ModeId::new(best)
}

impl IdleEnergyTable {
    /// Builds both segment tables from the mode list and demotion ladder.
    pub(crate) fn build(modes: &[ModeSpec], ladder: &[LadderStep]) -> Self {
        let (env_start, env_mode) = envelope_segments(modes);
        let env_power = env_mode.iter().map(|&m| line(modes, m.index()).0).collect();
        let env_overhead = env_mode.iter().map(|&m| line(modes, m.index()).1).collect();

        // Replay the practical-energy scan, snapshotting the accumulator
        // at each ladder step so a query resumes mid-scan in O(1). The
        // accumulation order (residency, then spin-down delta) matches the
        // scan exactly, so resumed sums are bit-identical.
        let mut prac_start = Vec::with_capacity(ladder.len());
        let mut prac_power = Vec::with_capacity(ladder.len());
        let mut prac_base = Vec::with_capacity(ladder.len());
        let mut prac_ddown = Vec::with_capacity(ladder.len());
        let mut prac_up = Vec::with_capacity(ladder.len());
        let mut energy = Joules::ZERO;
        let mut prev_down = Joules::ZERO;
        for (i, step) in ladder.iter().enumerate() {
            let mode = &modes[step.mode.index()];
            prac_start.push(step.at_idle.as_micros());
            prac_power.push(mode.power);
            prac_base.push(energy);
            prac_ddown.push(if i > 0 {
                mode.spin_down.energy - prev_down
            } else {
                Joules::ZERO
            });
            prac_up.push(mode.spin_up.energy);
            if let Some(next) = ladder.get(i + 1) {
                energy += mode.power * (next.at_idle - step.at_idle);
                if i > 0 {
                    energy += mode.spin_down.energy - prev_down;
                }
            }
            prev_down = mode.spin_down.energy;
        }
        let prac_zero = Joules::ZERO + modes[ladder[0].mode.index()].spin_up.energy;
        IdleEnergyTable {
            env_start,
            env_mode,
            env_power,
            env_overhead,
            prac_start,
            prac_power,
            prac_base,
            prac_ddown,
            prac_up,
            prac_zero,
        }
    }

    /// Index of the envelope segment pricing `gap`.
    #[inline]
    fn env_segment(&self, gap: SimDuration) -> usize {
        // OPG's query distribution is short-gap-heavy, and short gaps all
        // land in segment 0: answer them with one compare, then find the
        // segment by binary search (env_start[0] = 0, so the partition
        // point is always >= 1).
        let g = gap.as_micros();
        match self.env_start.get(1) {
            Some(&s1) if g >= s1 => self.env_start.partition_point(|&s| s <= g) - 1,
            _ => 0,
        }
    }

    /// The mode Oracle DPM selects for `gap` (table form).
    #[inline]
    pub(crate) fn oracle_mode(&self, gap: SimDuration) -> ModeId {
        self.env_mode[self.env_segment(gap)]
    }

    /// The lower envelope `LE(gap)` (table form).
    #[inline]
    pub(crate) fn lower_envelope(&self, gap: SimDuration) -> Joules {
        let k = self.env_segment(gap);
        self.env_power[k] * gap + self.env_overhead[k]
    }

    /// The Practical-DPM ladder energy for `gap` (table form).
    #[inline]
    pub(crate) fn practical_idle_energy(&self, gap: SimDuration) -> Joules {
        let g = gap.as_micros();
        if g == 0 {
            return self.prac_zero;
        }
        // Same short-gap fast path as `env_segment`: k is the last segment
        // with prac_start[k] < g (prac_start[0] = 0 < g here, so the
        // partition point is always >= 1).
        let k = match self.prac_start.get(1) {
            Some(&s1) if g > s1 => self.prac_start.partition_point(|&s| s < g) - 1,
            _ => 0,
        };
        let rest = SimDuration::from_micros(g - self.prac_start[k]);
        let mut energy = self.prac_base[k];
        energy += self.prac_power[k] * rest;
        if k > 0 {
            energy += self.prac_ddown[k];
        }
        energy + self.prac_up[k]
    }
}

/// Computes the envelope segment boundaries: every integer-µs gap in
/// `[env_start[k], env_start[k+1])` is won by `env_mode[k]`.
fn envelope_segments(modes: &[ModeSpec]) -> (Vec<u64>, Vec<ModeId>) {
    // Candidate boundaries: feasibility cut-ins (exact, in µs) and a ±2 µs
    // bracket around every pairwise line crossing (crossings are computed
    // in f64, so the bracket absorbs rounding of the true crossing point).
    let mut cand: Vec<u64> = vec![0];
    for m in modes.iter().skip(1) {
        cand.push((m.spin_down.time + m.spin_up.time).as_micros());
    }
    for i in 0..modes.len() {
        for j in i + 1..modes.len() {
            let (pi, ci) = line(modes, i);
            let (pj, cj) = line(modes, j);
            if pi.as_watts() == pj.as_watts() {
                continue;
            }
            let cross_secs = (cj.as_joules() - ci.as_joules()) / (pi.as_watts() - pj.as_watts());
            let cross_micros = cross_secs * 1e6;
            if cross_micros.is_nan() || cross_micros <= 0.0 || cross_micros >= u64::MAX as f64 {
                continue;
            }
            let m = cross_micros.floor() as u64;
            for c in m.saturating_sub(2)..=m.saturating_add(2) {
                cand.push(c);
            }
        }
    }
    cand.sort_unstable();
    cand.dedup();
    // The winner is constant between consecutive candidates; evaluate it
    // with the reference scan at each left endpoint and merge runs.
    let mut starts = Vec::new();
    let mut winners: Vec<ModeId> = Vec::new();
    for &c in &cand {
        let w = scan_oracle_mode(modes, SimDuration::from_micros(c));
        if winners.last() != Some(&w) {
            starts.push(c);
            winners.push(w);
        }
    }
    (starts, winners)
}

#[cfg(test)]
mod tests {
    use pc_units::{Joules, SimDuration};

    use crate::{DiskPowerSpec, PowerModel};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn models() -> Vec<(&'static str, PowerModel)> {
        let spec = || DiskPowerSpec::ultrastar_36z15();
        vec![
            ("multi_speed", PowerModel::multi_speed(&spec())),
            ("two_mode", PowerModel::two_mode(&spec())),
            (
                "slow_spin_up",
                PowerModel::multi_speed(&spec().with_spin_up_time(SimDuration::from_secs(100))),
            ),
            (
                "pricey_spin_up",
                PowerModel::multi_speed(&spec().with_spin_up_energy(Joules::new(675.0))),
            ),
            (
                "cheap_spin_up",
                PowerModel::multi_speed(&spec().with_spin_up_energy(Joules::new(33.75))),
            ),
        ]
    }

    /// Every segment boundary ±3 µs, for both tables.
    fn boundary_gaps(m: &PowerModel) -> Vec<u64> {
        let mut gaps = vec![0u64];
        for &b in m
            .pricing
            .env_start
            .iter()
            .chain(m.pricing.prac_start.iter())
        {
            for g in b.saturating_sub(3)..=b.saturating_add(3) {
                gaps.push(g);
            }
        }
        gaps
    }

    #[test]
    fn table_matches_scan_at_segment_boundaries() {
        for (name, m) in models() {
            for g in boundary_gaps(&m) {
                let gap = SimDuration::from_micros(g);
                assert_eq!(
                    m.oracle_mode_for_gap(gap),
                    m.oracle_mode_for_gap_scan(gap),
                    "{name}: oracle mode at {g} µs"
                );
                assert_eq!(
                    m.lower_envelope(gap).as_joules().to_bits(),
                    m.lower_envelope_scan(gap).as_joules().to_bits(),
                    "{name}: envelope at {g} µs"
                );
                assert_eq!(
                    m.practical_idle_energy(gap).as_joules().to_bits(),
                    m.practical_idle_energy_scan(gap).as_joules().to_bits(),
                    "{name}: practical at {g} µs"
                );
            }
        }
    }

    #[test]
    fn table_matches_scan_on_random_gaps() {
        let mut state = 0x5eed_cafe_f00d_u64;
        for (name, m) in models() {
            for _ in 0..20_000 {
                // Mix short gaps (µs scale, the common OPG case) with gaps
                // out past the deepest threshold (~96 s).
                let r = splitmix64(&mut state);
                let g = if r & 1 == 0 {
                    r % 2_000_000
                } else {
                    r % 400_000_000
                };
                let gap = SimDuration::from_micros(g);
                assert_eq!(
                    m.oracle_mode_for_gap(gap),
                    m.oracle_mode_for_gap_scan(gap),
                    "{name}: oracle mode at {g} µs"
                );
                assert_eq!(
                    m.lower_envelope(gap).as_joules().to_bits(),
                    m.lower_envelope_scan(gap).as_joules().to_bits(),
                    "{name}: envelope at {g} µs"
                );
                assert_eq!(
                    m.practical_idle_energy(gap).as_joules().to_bits(),
                    m.practical_idle_energy_scan(gap).as_joules().to_bits(),
                    "{name}: practical at {g} µs"
                );
            }
        }
    }
}
