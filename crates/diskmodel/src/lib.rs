//! Disk power and service-time models for the `powercache` simulator.
//!
//! This crate is the analytical substrate of the HPCA'04 paper *Reducing
//! Energy Consumption of Disk Storage Using Power-Aware Cache Management*:
//!
//! * [`DiskPowerSpec`] — data-sheet parameters of a disk (the paper's
//!   Table 1 values for the IBM Ultrastar 36Z15 are provided by
//!   [`DiskPowerSpec::ultrastar_36z15`]).
//! * [`PowerModel`] — a multi-speed power model derived from a spec: one
//!   [`ModeSpec`] per power mode (full-speed idle, NAP1..NAP4, standby),
//!   the per-mode energy lines of the paper's Figure 2, their
//!   [lower envelope](PowerModel::lower_envelope), the energy-*savings*
//!   envelope of Figure 4, break-even times, and the 2-competitive
//!   threshold ladder used by the Practical DPM scheme.
//! * [`ServiceModel`] — first-order mechanical timing (seek, rotation,
//!   transfer) standing in for DiskSim.
//!
//! # Examples
//!
//! ```
//! use pc_diskmodel::{DiskPowerSpec, ModeId, PowerModel};
//! use pc_units::SimDuration;
//!
//! let model = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
//! // A 60-second idle gap is long enough that some low-power mode beats
//! // staying at full-speed idle.
//! let gap = SimDuration::from_secs(60);
//! let best = model.oracle_mode_for_gap(gap);
//! assert!(best.index() > 0);
//! assert!(model.lower_envelope(gap) < model.energy_line(ModeId::FULL_SPEED, gap));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod pricing;
mod service;
mod spec;

pub use model::{LadderStep, ModeId, ModeSpec, PowerModel, Transition};
pub use service::{ServiceModel, ServiceRequest};
pub use spec::DiskPowerSpec;
