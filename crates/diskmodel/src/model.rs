//! The multi-speed disk power model.
//!
//! The paper extends the 2-mode (idle/standby) power model of the IBM
//! Ultrastar 36Z15 with four intermediate rotational speeds ("NAP" modes),
//! following the DRPM proposal of Gurumurthi et al. For every mode `i` the
//! model defines the Figure-2 energy line
//!
//! ```text
//! E_i(t) = P_i · t + C_i,     C_i = E_down(i) + E_up(i)
//! ```
//!
//! the energy consumed if an idle gap of length `t` is spent entirely in
//! mode `i` (including the transition overhead to get there and back). The
//! *lower envelope* of these lines is the best possible energy for a gap —
//! what the Oracle DPM scheme achieves — and the intersection points of
//! consecutive envelope lines are the 2-competitive demotion thresholds
//! used by the Practical DPM scheme (Irani et al.).
//!
//! **Model note.** The paper cites DRPM's "linear power and time models".
//! With power strictly linear in RPM, every pairwise intersection of the
//! energy lines coincides at a single abscissa, which would remove all
//! intermediate modes from the envelope and contradict the paper's own
//! Figure 2 (distinct, increasing t0 < t1 < … < t4). DRPM's physical model
//! has spindle power super-linear in RPM, so this implementation uses
//! *quadratic* power in RPM with *linear* transition time/energy in ΔRPM,
//! which reproduces Figure 2's staircase envelope. See DESIGN.md §2.

use std::fmt;

use pc_units::{Joules, SimDuration, Watts};

use crate::pricing::{scan_oracle_mode, IdleEnergyTable};
use crate::DiskPowerSpec;

/// Index of a power mode within a [`PowerModel`].
///
/// Mode 0 is always full-speed idle; higher indices are progressively
/// lower-power modes, ending at standby.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ModeId(usize);

impl ModeId {
    /// The full-speed idle mode (the disk can service requests immediately).
    pub const FULL_SPEED: ModeId = ModeId(0);

    /// Creates a mode index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ModeId(index)
    }

    /// Returns the mode's index (0 = full-speed idle).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns `true` for the full-speed idle mode.
    #[must_use]
    pub const fn is_full_speed(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ModeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mode{}", self.0)
    }
}

/// The time and energy cost of one spindle-speed transition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Transition {
    /// Wall-clock duration of the transition.
    pub time: SimDuration,
    /// Energy consumed by the transition.
    pub energy: Joules,
}

/// One power mode of a multi-speed disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeSpec {
    /// Human-readable name: `idle`, `nap1` … `nap4`, `standby`.
    pub name: String,
    /// Rotational speed in this mode (0 for standby).
    pub rpm: u32,
    /// Power drawn while resting in this mode.
    pub power: Watts,
    /// Transition from full speed down to this mode.
    pub spin_down: Transition,
    /// Transition from this mode up to full speed.
    pub spin_up: Transition,
}

/// One step of the Practical-DPM demotion ladder: after `at_idle` of
/// cumulative idle time, the disk rests in `mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderStep {
    /// Cumulative idle time at which this mode is entered.
    pub at_idle: SimDuration,
    /// The mode entered.
    pub mode: ModeId,
}

/// A complete multi-speed disk power model.
///
/// Construct with [`PowerModel::multi_speed`] (the paper's 6-mode model) or
/// [`PowerModel::two_mode`] (classic idle/standby). All envelope and
/// threshold math is precomputed and queried in O(#modes) or better.
///
/// # Examples
///
/// ```
/// use pc_diskmodel::{DiskPowerSpec, PowerModel};
/// use pc_units::SimDuration;
///
/// let m = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
/// assert_eq!(m.mode_count(), 6);
/// // The first demotion happens a bit after 10 s of idleness.
/// let first = m.ladder()[1].at_idle;
/// assert!(first > SimDuration::from_secs(10) && first < SimDuration::from_secs(11));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    active_power: Watts,
    seek_power: Watts,
    modes: Vec<ModeSpec>,
    ladder: Vec<LadderStep>,
    pub(crate) pricing: IdleEnergyTable,
}

impl PowerModel {
    /// Builds the paper's 6-mode model (full-speed idle, NAP1..NAP4,
    /// standby) from a disk spec.
    ///
    /// Power at an intermediate speed `r` is
    /// `P_sb + (P_idle − P_sb)·(r/r_max)²`; transition time and energy
    /// scale linearly with the speed gap `(r_max − r)/r_max`.
    #[must_use]
    pub fn multi_speed(spec: &DiskPowerSpec) -> Self {
        let mut rpms = Vec::new();
        rpms.push(spec.max_rpm);
        let mut r = spec.max_rpm;
        while r > spec.min_rpm && spec.rpm_step > 0 {
            r -= spec.rpm_step.min(r);
            if r >= spec.min_rpm && r > 0 {
                rpms.push(r);
            }
        }
        rpms.push(0); // standby
        Self::from_rpms(spec, &rpms)
    }

    /// Builds the classic 2-mode model (full-speed idle and standby).
    #[must_use]
    pub fn two_mode(spec: &DiskPowerSpec) -> Self {
        Self::from_rpms(spec, &[spec.max_rpm, 0])
    }

    fn from_rpms(spec: &DiskPowerSpec, rpms: &[u32]) -> Self {
        assert!(
            rpms.first() == Some(&spec.max_rpm),
            "mode list must start at full speed"
        );
        let p_idle = spec.idle_power.as_watts();
        let p_sb = spec.standby_power.as_watts();
        let nap_count = rpms.len().saturating_sub(2);
        let modes = rpms
            .iter()
            .enumerate()
            .map(|(i, &rpm)| {
                let ratio = rpm as f64 / spec.max_rpm as f64;
                let power = if rpm == 0 {
                    p_sb
                } else {
                    p_sb + (p_idle - p_sb) * ratio * ratio
                };
                let gap = 1.0 - ratio;
                let name = if i == 0 {
                    "idle".to_owned()
                } else if rpm == 0 {
                    "standby".to_owned()
                } else {
                    format!("nap{i}")
                };
                let _ = nap_count;
                ModeSpec {
                    name,
                    rpm,
                    power: Watts::new(power),
                    spin_down: Transition {
                        time: spec.spin_down_time.mul_f64(gap),
                        energy: spec.spin_down_energy * gap,
                    },
                    spin_up: Transition {
                        time: spec.spin_up_time.mul_f64(gap),
                        energy: spec.spin_up_energy * gap,
                    },
                }
            })
            .collect::<Vec<_>>();
        let ladder = compute_ladder(&modes);
        let pricing = IdleEnergyTable::build(&modes, &ladder);
        PowerModel {
            active_power: spec.active_power,
            seek_power: spec.seek_power,
            modes,
            ladder,
            pricing,
        }
    }

    /// Power while actively transferring data.
    #[must_use]
    pub fn active_power(&self) -> Watts {
        self.active_power
    }

    /// Power while seeking.
    #[must_use]
    pub fn seek_power(&self) -> Watts {
        self.seek_power
    }

    /// Number of power modes (≥ 2).
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }

    /// Returns one mode's parameters.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    #[must_use]
    pub fn mode(&self, mode: ModeId) -> &ModeSpec {
        &self.modes[mode.index()]
    }

    /// Iterates over all modes, full speed first.
    pub fn modes(&self) -> impl Iterator<Item = (ModeId, &ModeSpec)> {
        self.modes.iter().enumerate().map(|(i, m)| (ModeId(i), m))
    }

    /// The standby mode (deepest mode).
    #[must_use]
    pub fn standby(&self) -> ModeId {
        ModeId(self.modes.len() - 1)
    }

    /// The round-trip transition overhead `C_i = E_down(i) + E_up(i)`.
    #[must_use]
    pub fn transition_overhead(&self, mode: ModeId) -> Joules {
        let m = self.mode(mode);
        m.spin_down.energy + m.spin_up.energy
    }

    /// The Figure-2 energy line: energy for an idle gap of length `gap`
    /// spent entirely in `mode`, including round-trip transition overhead.
    #[must_use]
    pub fn energy_line(&self, mode: ModeId, gap: SimDuration) -> Joules {
        self.mode(mode).power * gap + self.transition_overhead(mode)
    }

    /// The lower envelope `LE(gap) = min_i E_i(gap)`: the minimum energy any
    /// power-management decision can achieve for an idle gap (what Oracle
    /// DPM consumes).
    ///
    /// Served from the precomputed segment table; bit-identical to
    /// [`lower_envelope_scan`](Self::lower_envelope_scan).
    #[must_use]
    #[inline]
    pub fn lower_envelope(&self, gap: SimDuration) -> Joules {
        self.pricing.lower_envelope(gap)
    }

    /// Reference implementation of [`lower_envelope`](Self::lower_envelope):
    /// scans every mode's energy line. Kept for equivalence tests and
    /// micro-benchmarks of the pricing table.
    #[must_use]
    pub fn lower_envelope_scan(&self, gap: SimDuration) -> Joules {
        self.energy_line(self.oracle_mode_for_gap_scan(gap), gap)
    }

    /// The mode Oracle DPM selects for an idle gap: the feasible mode with
    /// minimal energy line. A mode is feasible if its round-trip transition
    /// time fits inside the gap; full speed is always feasible.
    ///
    /// Served from the precomputed segment table; identical to
    /// [`oracle_mode_for_gap_scan`](Self::oracle_mode_for_gap_scan).
    #[must_use]
    #[inline]
    pub fn oracle_mode_for_gap(&self, gap: SimDuration) -> ModeId {
        self.pricing.oracle_mode(gap)
    }

    /// Reference implementation of
    /// [`oracle_mode_for_gap`](Self::oracle_mode_for_gap): scans every
    /// mode's energy line, keeping the shallowest mode on ties.
    #[must_use]
    pub fn oracle_mode_for_gap_scan(&self, gap: SimDuration) -> ModeId {
        scan_oracle_mode(&self.modes, gap)
    }

    /// The Figure-4 savings line: energy saved versus staying at full-speed
    /// idle if a gap of length `gap` is spent in `mode`. May be negative
    /// for gaps shorter than the mode's break-even time.
    #[must_use]
    pub fn savings_line(&self, mode: ModeId, gap: SimDuration) -> Joules {
        self.energy_line(ModeId::FULL_SPEED, gap) - self.energy_line(mode, gap)
    }

    /// The Figure-4 upper envelope: the maximum energy a gap of length
    /// `gap` can save (never negative — staying at full speed saves 0).
    #[must_use]
    pub fn max_savings(&self, gap: SimDuration) -> Joules {
        self.energy_line(ModeId::FULL_SPEED, gap) - self.lower_envelope(gap)
    }

    /// The break-even time of a mode: the gap length at which going down to
    /// `mode` and back costs exactly as much as staying at full-speed idle.
    ///
    /// Returns [`SimDuration::ZERO`] for the full-speed mode and
    /// [`SimDuration::MAX`] if the mode never pays off (power not below
    /// idle power).
    #[must_use]
    pub fn break_even(&self, mode: ModeId) -> SimDuration {
        if mode.is_full_speed() {
            return SimDuration::ZERO;
        }
        let p0 = self.modes[0].power.as_watts();
        let pi = self.mode(mode).power.as_watts();
        if pi >= p0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(self.transition_overhead(mode).as_joules() / (p0 - pi))
    }

    /// The Practical-DPM demotion ladder: the 2-competitive thresholds of
    /// Irani et al., i.e. the breakpoints of the lower envelope.
    ///
    /// The first step is always `(0, full-speed)`; subsequent steps have
    /// strictly increasing `at_idle`. Modes that never appear on the lower
    /// envelope are skipped.
    #[must_use]
    pub fn ladder(&self) -> &[LadderStep] {
        &self.ladder
    }

    /// The mode the Practical-DPM ladder rests in after `idle` cumulative
    /// idle time.
    #[must_use]
    pub fn practical_mode_at(&self, idle: SimDuration) -> ModeId {
        let mut mode = ModeId::FULL_SPEED;
        for step in &self.ladder {
            if step.at_idle <= idle {
                mode = step.mode;
            } else {
                break;
            }
        }
        mode
    }

    /// Analytic energy consumed by an idle gap of length `gap` under the
    /// Practical-DPM threshold ladder: per-mode residency, plus spin-down
    /// energy for each demotion taken, plus the final spin-up back to full
    /// speed.
    ///
    /// This is the `E_practical` used for OPG's eviction penalties when the
    /// underlying disks use Practical DPM. (The cycle-accurate state machine
    /// in `pc-disksim` additionally models transition *durations*.)
    ///
    /// Served from the precomputed segment table; bit-identical to
    /// [`practical_idle_energy_scan`](Self::practical_idle_energy_scan).
    #[must_use]
    #[inline]
    pub fn practical_idle_energy(&self, gap: SimDuration) -> Joules {
        self.pricing.practical_idle_energy(gap)
    }

    /// Reference implementation of
    /// [`practical_idle_energy`](Self::practical_idle_energy): walks the
    /// demotion ladder step by step. Kept for equivalence tests and
    /// micro-benchmarks of the pricing table.
    #[must_use]
    pub fn practical_idle_energy_scan(&self, gap: SimDuration) -> Joules {
        let mut energy = Joules::ZERO;
        let mut prev_down = Joules::ZERO;
        let mut current = ModeId::FULL_SPEED;
        for (i, step) in self.ladder.iter().enumerate() {
            if step.at_idle >= gap {
                break;
            }
            let end = self
                .ladder
                .get(i + 1)
                .map_or(gap, |next| next.at_idle.min(gap));
            energy += self.mode(step.mode).power * (end - step.at_idle);
            if i > 0 {
                let down = self.mode(step.mode).spin_down.energy;
                energy += down - prev_down;
            }
            prev_down = self.mode(step.mode).spin_down.energy;
            current = step.mode;
        }
        energy + self.mode(current).spin_up.energy
    }
}

/// Computes the lower-envelope breakpoints (the demotion ladder) from the
/// mode lines, using the standard lower-envelope-of-lines sweep.
fn compute_ladder(modes: &[ModeSpec]) -> Vec<LadderStep> {
    // Lines in mode order: slopes strictly decrease for useful modes.
    // Keep only modes that improve on all shallower modes somewhere.
    let line = |i: usize| -> (f64, f64) {
        let c = modes[i].spin_down.energy + modes[i].spin_up.energy;
        (modes[i].power.as_watts(), c.as_joules())
    };
    // envelope entries: (start_time_secs, mode_index)
    let mut env: Vec<(f64, usize)> = vec![(0.0, 0)];
    for i in 1..modes.len() {
        let (pi, ci) = line(i);
        loop {
            let &(start, j) = env.last().expect("envelope never empty");
            let (pj, cj) = line(j);
            if pi >= pj {
                // Not lower-power than the current last line; can never win.
                break;
            }
            let cross = (ci - cj) / (pj - pi);
            if cross <= start && env.len() > 1 {
                env.pop();
                continue;
            }
            if cross <= start {
                // Replaces the very first line (shouldn't happen: line 0 has
                // zero intercept), guard anyway.
                env[0] = (0.0, i);
            } else {
                env.push((cross, i));
            }
            break;
        }
    }
    env.into_iter()
        .map(|(start, mode)| LadderStep {
            at_idle: SimDuration::from_secs_f64(start),
            mode: ModeId(mode),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())
    }

    fn secs(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }

    #[test]
    fn six_modes_with_expected_powers() {
        let m = model();
        assert_eq!(m.mode_count(), 6);
        let powers: Vec<f64> = m.modes().map(|(_, s)| s.power.as_watts()).collect();
        // Quadratic in RPM: 10.2, 7.428, 5.272, 3.732, 2.808, 2.5.
        let expected = [10.2, 7.428, 5.272, 3.732, 2.808, 2.5];
        for (p, e) in powers.iter().zip(expected) {
            assert!((p - e).abs() < 1e-9, "power {p} != {e}");
        }
        assert_eq!(m.mode(ModeId::new(0)).name, "idle");
        assert_eq!(m.mode(ModeId::new(1)).name, "nap1");
        assert_eq!(m.mode(m.standby()).name, "standby");
        assert_eq!(m.mode(m.standby()).rpm, 0);
    }

    #[test]
    fn transition_costs_scale_linearly() {
        let m = model();
        // NAP1 at 12000 RPM: 20% of the full transition.
        let nap1 = m.mode(ModeId::new(1));
        assert!((nap1.spin_up.energy.as_joules() - 27.0).abs() < 1e-9);
        assert!((nap1.spin_down.energy.as_joules() - 2.6).abs() < 1e-9);
        assert_eq!(nap1.spin_up.time, SimDuration::from_millis(2_180));
        // Standby: the full costs from Table 1.
        let sb = m.mode(m.standby());
        assert!((sb.spin_up.energy.as_joules() - 135.0).abs() < 1e-9);
        assert_eq!(sb.spin_up.time, SimDuration::from_millis(10_900));
    }

    #[test]
    fn ladder_matches_hand_computed_intersections() {
        let m = model();
        let ladder = m.ladder();
        assert_eq!(ladder.len(), 6, "all modes appear on the envelope");
        let expected = [0.0, 10.678, 13.729, 19.221, 32.034, 96.104];
        for (step, e) in ladder.iter().zip(expected) {
            assert!(
                (secs(step.at_idle) - e).abs() < 5e-3,
                "threshold {} != {e}",
                secs(step.at_idle)
            );
        }
        // Strictly increasing modes and thresholds.
        for w in ladder.windows(2) {
            assert!(w[0].at_idle < w[1].at_idle);
            assert!(w[0].mode < w[1].mode);
        }
    }

    #[test]
    fn break_even_of_nap1_matches_first_threshold() {
        let m = model();
        assert!((secs(m.break_even(ModeId::new(1))) - secs(m.ladder()[1].at_idle)).abs() < 1e-6);
        // Standby break-even: 148 J / 7.7 W ≈ 19.22 s.
        assert!((secs(m.break_even(m.standby())) - 148.0 / 7.7).abs() < 1e-3);
        assert_eq!(m.break_even(ModeId::FULL_SPEED), SimDuration::ZERO);
    }

    #[test]
    fn lower_envelope_is_minimum_of_lines() {
        let m = model();
        for s in [0u64, 1, 5, 11, 15, 25, 40, 100, 1000] {
            let gap = SimDuration::from_secs(s);
            let le = m.lower_envelope(gap);
            for (id, _) in m.modes() {
                assert!(
                    le.as_joules() <= m.energy_line(id, gap).as_joules() + 1e-9,
                    "envelope above line {id} at {s}s"
                );
            }
        }
    }

    #[test]
    fn envelope_is_subadditive() {
        // Concavity with LE(0)=0 implies LE(a+b) <= LE(a)+LE(b); OPG's
        // penalty non-negativity relies on this.
        let m = model();
        for a in [1u64, 7, 12, 30, 90, 200] {
            for b in [2u64, 9, 18, 50, 400] {
                let (da, db) = (SimDuration::from_secs(a), SimDuration::from_secs(b));
                assert!(
                    m.lower_envelope(da + db).as_joules()
                        <= m.lower_envelope(da).as_joules()
                            + m.lower_envelope(db).as_joules()
                            + 1e-9
                );
            }
        }
    }

    #[test]
    fn oracle_mode_progresses_with_gap_length() {
        let m = model();
        let mut last = 0;
        for s in [1u64, 12, 15, 25, 50, 200] {
            let mode = m.oracle_mode_for_gap(SimDuration::from_secs(s)).index();
            assert!(mode >= last, "oracle mode must be monotone in gap length");
            last = mode;
        }
        assert_eq!(last, m.standby().index());
        assert_eq!(
            m.oracle_mode_for_gap(SimDuration::from_secs(1)),
            ModeId::FULL_SPEED
        );
    }

    #[test]
    fn oracle_respects_transition_feasibility() {
        // Make spin-up so slow that standby cannot fit a 20 s gap.
        let spec = DiskPowerSpec::ultrastar_36z15().with_spin_up_time(SimDuration::from_secs(100));
        let m = PowerModel::multi_speed(&spec);
        let chosen = m.oracle_mode_for_gap(SimDuration::from_secs(20));
        let ms = m.mode(chosen);
        assert!(ms.spin_down.time + ms.spin_up.time <= SimDuration::from_secs(20));
    }

    #[test]
    fn practical_mode_follows_ladder() {
        let m = model();
        assert_eq!(
            m.practical_mode_at(SimDuration::from_secs(5)),
            ModeId::FULL_SPEED
        );
        assert_eq!(m.practical_mode_at(SimDuration::from_secs(11)).index(), 1);
        assert_eq!(m.practical_mode_at(SimDuration::from_secs(14)).index(), 2);
        assert_eq!(m.practical_mode_at(SimDuration::from_secs(20)).index(), 3);
        assert_eq!(m.practical_mode_at(SimDuration::from_secs(33)).index(), 4);
        assert_eq!(
            m.practical_mode_at(SimDuration::from_secs(100)),
            m.standby()
        );
    }

    #[test]
    fn practical_energy_short_gap_is_pure_idle() {
        let m = model();
        let gap = SimDuration::from_secs(5);
        // No demotion before 10.68 s: energy = idle power * gap (+ zero
        // spin-up from full speed).
        let e = m.practical_idle_energy(gap);
        assert!((e.as_joules() - 10.2 * 5.0).abs() < 1e-9);
    }

    #[test]
    fn practical_energy_matches_manual_two_segment_sum() {
        let m = model();
        let t1 = m.ladder()[1].at_idle;
        let gap = t1 + SimDuration::from_secs(1);
        // idle segment + 1 s of NAP1 + spin-down delta + spin-up from NAP1.
        let manual = 10.2 * t1.as_secs_f64() + 7.428 + 2.6 + 27.0;
        assert!((m.practical_idle_energy(gap).as_joules() - manual).abs() < 1e-6);
    }

    #[test]
    fn practical_is_between_oracle_and_twice_oracle() {
        let m = model();
        for s in [1u64, 5, 11, 14, 20, 35, 100, 500, 5_000] {
            let gap = SimDuration::from_secs(s);
            let oracle = m.lower_envelope(gap).as_joules();
            let practical = m.practical_idle_energy(gap).as_joules();
            assert!(practical >= oracle - 1e-9, "practical below oracle at {s}s");
            assert!(
                practical <= 2.0 * oracle + 1e-9,
                "practical not 2-competitive at {s}s: {practical} vs {oracle}"
            );
        }
    }

    #[test]
    fn two_mode_model_has_single_threshold() {
        let m = PowerModel::two_mode(&DiskPowerSpec::ultrastar_36z15());
        assert_eq!(m.mode_count(), 2);
        assert_eq!(m.ladder().len(), 2);
        // Break-even: 148 J / 7.7 W.
        assert!((secs(m.ladder()[1].at_idle) - 148.0 / 7.7).abs() < 1e-3);
    }

    #[test]
    fn savings_envelope_never_negative_and_superlinear() {
        let m = model();
        let mut last_ratio = 0.0;
        for s in [1u64, 5, 11, 20, 40, 100, 400] {
            let gap = SimDuration::from_secs(s);
            let save = m.max_savings(gap).as_joules();
            assert!(save >= -1e-9);
            let ratio = save / s as f64;
            assert!(
                ratio >= last_ratio - 1e-9,
                "savings per second should not decrease with gap length"
            );
            last_ratio = ratio;
        }
    }

    #[test]
    fn figure8_spinup_sweep_shifts_thresholds() {
        // Higher spin-up cost => higher break-even => later demotion.
        let cheap = PowerModel::multi_speed(
            &DiskPowerSpec::ultrastar_36z15().with_spin_up_energy(Joules::new(33.75)),
        );
        let pricey = PowerModel::multi_speed(
            &DiskPowerSpec::ultrastar_36z15().with_spin_up_energy(Joules::new(675.0)),
        );
        assert!(cheap.ladder()[1].at_idle < pricey.ladder()[1].at_idle);
    }
}
