//! First-order mechanical service-time model.
//!
//! Stands in for DiskSim's detailed mechanical simulation: a square-root
//! seek curve between cylinders, deterministic pseudo-random rotational
//! latency, and bandwidth-proportional transfer time. Energy results in the
//! reproduced experiments are dominated by power-mode residency, so this
//! level of fidelity suffices (see DESIGN.md §2).

use pc_units::{BlockNo, SimDuration};

/// One request to be serviced by a disk: a starting block and a length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceRequest {
    /// First block of the transfer.
    pub block: BlockNo,
    /// Transfer length in blocks (≥ 1).
    pub blocks: u64,
}

impl ServiceRequest {
    /// Creates a single-block request.
    #[must_use]
    pub const fn single(block: BlockNo) -> Self {
        ServiceRequest { block, blocks: 1 }
    }
}

/// One zone of a multi-zone (zoned-bit-recording) disk: a contiguous
/// range of cylinders sharing a sectors-per-track count. Outer zones
/// pack more blocks per track and therefore transfer faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    /// First block of the zone.
    pub first_block: u64,
    /// First cylinder of the zone.
    pub first_cylinder: u64,
    /// Blocks per cylinder inside this zone.
    pub blocks_per_cylinder: u64,
    /// Blocks that pass under the head per rotation inside this zone.
    pub blocks_per_track: u64,
}

/// Mechanical timing parameters of one disk.
///
/// # Examples
///
/// ```
/// use pc_diskmodel::{ServiceModel, ServiceRequest};
/// use pc_units::BlockNo;
///
/// let m = ServiceModel::ultrastar_36z15();
/// let t = m.service_time(None, ServiceRequest::single(BlockNo::new(1_000)));
/// // A random single-block access takes a few milliseconds.
/// assert!(t.as_millis_f64() > 0.1 && t.as_millis_f64() < 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceModel {
    /// Size of one block, in bytes.
    pub block_bytes: u64,
    /// Sustained transfer rate, in bytes per second (used when `zones`
    /// is empty; zoned models derive per-zone rates instead).
    pub transfer_rate: f64,
    /// Track-to-track (minimum non-zero) seek time.
    pub track_seek: SimDuration,
    /// Full-stroke (maximum) seek time.
    pub full_seek: SimDuration,
    /// Number of cylinders.
    pub cylinders: u64,
    /// Blocks per cylinder (derived from capacity; for zoned models this
    /// is the mean, used only as a fallback).
    pub blocks_per_cylinder: u64,
    /// Time of one full platter rotation at full speed.
    pub rotation: SimDuration,
    /// Zoned-bit-recording table, outermost (fastest) zone first. Empty =
    /// the flat single-zone model.
    pub zones: Vec<Zone>,
}

impl ServiceModel {
    /// Timing parameters approximating the IBM Ultrastar 36Z15:
    /// 8 KiB blocks, 52 MB/s sustained transfer, 0.5 ms track-to-track and
    /// 6.9 ms full-stroke seeks, 15 000 RPM (4 ms rotation), 18.4 GB.
    #[must_use]
    pub fn ultrastar_36z15() -> Self {
        let capacity_blocks = 18_400_000_000u64 / 8_192;
        let cylinders = 18_000;
        ServiceModel {
            block_bytes: 8_192,
            transfer_rate: 52_000_000.0,
            track_seek: SimDuration::from_micros(500),
            full_seek: SimDuration::from_micros(6_900),
            cylinders,
            blocks_per_cylinder: capacity_blocks.div_ceil(cylinders),
            rotation: SimDuration::from_micros(4_000),
            zones: Vec::new(),
        }
    }

    /// Timing parameters approximating a laptop-class (Travelstar-like)
    /// drive: 4 200 RPM (14.3 ms rotation), 25 MB/s sustained transfer,
    /// 1.5 ms track-to-track and 22 ms full-stroke seeks, 30 GB.
    #[must_use]
    pub fn travelstar_laptop() -> Self {
        let capacity_blocks = 30_000_000_000u64 / 8_192;
        let cylinders = 30_000;
        ServiceModel {
            block_bytes: 8_192,
            transfer_rate: 25_000_000.0,
            track_seek: SimDuration::from_micros(1_500),
            full_seek: SimDuration::from_micros(22_000),
            cylinders,
            blocks_per_cylinder: capacity_blocks.div_ceil(cylinders),
            rotation: SimDuration::from_micros(14_286),
            zones: Vec::new(),
        }
    }

    /// An Ultrastar-like model with `zone_count` recording zones: the
    /// outermost zone packs ~1.4× the mean linear density, the innermost
    /// ~0.65×, declining linearly — so low block numbers (outer tracks)
    /// transfer roughly twice as fast as high ones, as on real drives.
    ///
    /// # Panics
    ///
    /// Panics if `zone_count` is zero.
    #[must_use]
    pub fn zoned_ultrastar(zone_count: u64) -> Self {
        assert!(zone_count > 0, "need at least one zone");
        let mut model = ServiceModel::ultrastar_36z15();
        let capacity = model.blocks_per_cylinder * model.cylinders;
        let cylinders_per_zone = model.cylinders / zone_count;
        // Density weights decline linearly from 1.4 to 0.65, normalized so
        // the total capacity is preserved.
        let weights: Vec<f64> = (0..zone_count)
            .map(|z| {
                let f = if zone_count == 1 {
                    0.5
                } else {
                    z as f64 / (zone_count - 1) as f64
                };
                1.4 - f * 0.75
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        let mut zones = Vec::with_capacity(zone_count as usize);
        let mut first_block = 0u64;
        for (z, w) in weights.iter().enumerate() {
            let zone_blocks = (capacity as f64 * w / weight_sum).round() as u64;
            let bpc = (zone_blocks / cylinders_per_zone.max(1)).max(1);
            // Five recording surfaces: calibrated so the capacity-mean
            // zone rate matches the flat model's 52 MB/s.
            let bpt = (bpc / 5).max(1);
            zones.push(Zone {
                first_block,
                first_cylinder: z as u64 * cylinders_per_zone,
                blocks_per_cylinder: bpc,
                blocks_per_track: bpt,
            });
            first_block += zone_blocks;
        }
        model.zones = zones;
        model
    }

    /// The zone holding a block (zoned models only).
    #[must_use]
    pub fn zone_of(&self, block: BlockNo) -> Option<&Zone> {
        if self.zones.is_empty() {
            return None;
        }
        let idx = self
            .zones
            .partition_point(|z| z.first_block <= block.number())
            .saturating_sub(1);
        Some(&self.zones[idx])
    }

    /// Returns the cylinder holding a block.
    #[must_use]
    pub fn cylinder_of(&self, block: BlockNo) -> u64 {
        match self.zone_of(block) {
            Some(zone) => {
                let offset = (block.number() - zone.first_block) / zone.blocks_per_cylinder;
                (zone.first_cylinder + offset).min(self.cylinders - 1)
            }
            None => (block.number() / self.blocks_per_cylinder).min(self.cylinders - 1),
        }
    }

    /// Seek time between two cylinders: zero for the same cylinder,
    /// otherwise `track + (full − track)·√(distance/cylinders)`.
    #[must_use]
    pub fn seek_time(&self, from: u64, to: u64) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let distance = from.abs_diff(to);
        let frac = (distance as f64 / self.cylinders as f64).sqrt();
        self.track_seek + (self.full_seek - self.track_seek).mul_f64(frac)
    }

    /// Rotational latency for a block: deterministic pseudo-random in
    /// `[0, rotation)`, derived by hashing the block number so simulations
    /// are exactly reproducible.
    #[must_use]
    pub fn rotational_latency(&self, block: BlockNo) -> SimDuration {
        // SplitMix64 finalizer — cheap, well-distributed.
        let mut z = block.number().wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let micros = self.rotation.as_micros();
        SimDuration::from_micros(if micros == 0 { 0 } else { z % micros })
    }

    /// Pure data-transfer time for `blocks` blocks starting at `at`
    /// (zone-dependent for zoned models: outer tracks stream faster).
    #[must_use]
    pub fn transfer_time_at(&self, at: BlockNo, blocks: u64) -> SimDuration {
        match self.zone_of(at) {
            Some(zone) => {
                // One rotation moves `blocks_per_track` blocks past the
                // head.
                self.rotation
                    .mul_f64(blocks as f64 / zone.blocks_per_track as f64)
            }
            None => SimDuration::from_secs_f64(
                blocks as f64 * self.block_bytes as f64 / self.transfer_rate,
            ),
        }
    }

    /// Pure data-transfer time for `blocks` blocks (flat-model rate; for
    /// zoned models prefer [`ServiceModel::transfer_time_at`]).
    #[must_use]
    pub fn transfer_time(&self, blocks: u64) -> SimDuration {
        SimDuration::from_secs_f64(blocks as f64 * self.block_bytes as f64 / self.transfer_rate)
    }

    /// Total mechanical service time of a request: seek from the previous
    /// head position (or an average-length seek if unknown), rotational
    /// latency, and (zone-aware) transfer.
    #[must_use]
    pub fn service_time(&self, head_at: Option<BlockNo>, request: ServiceRequest) -> SimDuration {
        let to = self.cylinder_of(request.block);
        let seek = match head_at {
            Some(prev) => self.seek_time(self.cylinder_of(prev), to),
            // Unknown head position: average seek over one third of the
            // stroke, the standard random-workload approximation.
            None => self.seek_time(0, self.cylinders / 3),
        };
        seek + self.rotational_latency(request.block)
            + self.transfer_time_at(request.block, request.blocks)
    }

    /// Splits a service time into its seek and non-seek (latency+transfer)
    /// portions, for energy accounting at different power levels.
    #[must_use]
    pub fn seek_portion(&self, head_at: Option<BlockNo>, request: ServiceRequest) -> SimDuration {
        let to = self.cylinder_of(request.block);
        match head_at {
            Some(prev) => self.seek_time(self.cylinder_of(prev), to),
            None => self.seek_time(0, self.cylinders / 3),
        }
    }
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel::ultrastar_36z15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ServiceModel {
        ServiceModel::ultrastar_36z15()
    }

    #[test]
    fn same_cylinder_has_no_seek() {
        let m = model();
        assert_eq!(m.seek_time(100, 100), SimDuration::ZERO);
    }

    #[test]
    fn seek_grows_sublinearly_with_distance() {
        let m = model();
        let short = m.seek_time(0, 100);
        let long = m.seek_time(0, 10_000);
        assert!(short < long);
        assert!(long < m.full_seek + SimDuration::from_micros(1));
        // √ curve: 100x distance should be well under 100x time.
        assert!(long.as_micros() < short.as_micros() * 100);
    }

    #[test]
    fn full_stroke_is_the_maximum() {
        let m = model();
        assert_eq!(m.seek_time(0, m.cylinders - 1).as_micros(), {
            // frac ≈ 1
            let frac = ((m.cylinders - 1) as f64 / m.cylinders as f64).sqrt();
            (m.track_seek + (m.full_seek - m.track_seek).mul_f64(frac)).as_micros()
        });
    }

    #[test]
    fn rotational_latency_is_deterministic_and_bounded() {
        let m = model();
        for b in 0..1_000u64 {
            let block = BlockNo::new(b);
            let lat = m.rotational_latency(block);
            assert!(lat < m.rotation);
            assert_eq!(lat, m.rotational_latency(block));
        }
    }

    #[test]
    fn rotational_latency_averages_half_rotation() {
        let m = model();
        let n = 10_000u64;
        let total: u64 = (0..n)
            .map(|b| m.rotational_latency(BlockNo::new(b)).as_micros())
            .sum();
        let mean = total as f64 / n as f64;
        let half = m.rotation.as_micros() as f64 / 2.0;
        assert!((mean - half).abs() < half * 0.05, "mean {mean} vs {half}");
    }

    #[test]
    fn transfer_time_is_linear_in_length() {
        let m = model();
        let one = m.transfer_time(1);
        let eight = m.transfer_time(8);
        assert!((eight.as_secs_f64() - 8.0 * one.as_secs_f64()).abs() < 1e-5);
        // 8 KiB at 52 MB/s ≈ 158 µs.
        assert!((one.as_micros() as i64 - 158).abs() <= 2);
    }

    #[test]
    fn service_time_uses_head_position() {
        let m = model();
        let near = ServiceRequest::single(BlockNo::new(0));
        let seq = m.service_time(Some(BlockNo::new(1)), near);
        let far = m.service_time(Some(BlockNo::new(m.blocks_per_cylinder * 17_000)), near);
        assert!(seq < far);
    }

    #[test]
    fn cylinder_of_clamps_to_capacity() {
        let m = model();
        assert_eq!(m.cylinder_of(BlockNo::new(u64::MAX)), m.cylinders - 1);
        assert_eq!(m.cylinder_of(BlockNo::new(0)), 0);
    }

    #[test]
    fn zoned_model_covers_capacity_with_monotone_cylinders() {
        let m = ServiceModel::zoned_ultrastar(8);
        assert_eq!(m.zones.len(), 8);
        let capacity = model().blocks_per_cylinder * model().cylinders;
        // Zone boundaries are increasing and roughly cover the capacity.
        for w in m.zones.windows(2) {
            assert!(w[0].first_block < w[1].first_block);
            assert!(w[0].first_cylinder < w[1].first_cylinder);
            assert!(
                w[0].blocks_per_track > w[1].blocks_per_track,
                "outer zones are denser"
            );
        }
        let last = m.zones.last().unwrap();
        let covered =
            last.first_block + last.blocks_per_cylinder * (m.cylinders - last.first_cylinder);
        let coverage_error = (covered as f64 - capacity as f64).abs() / capacity as f64;
        assert!(coverage_error < 0.05, "covered {covered} of {capacity}");
        // Cylinder mapping is monotone in the block number.
        let mut prev = 0;
        for b in (0..capacity).step_by((capacity / 500) as usize) {
            let c = m.cylinder_of(BlockNo::new(b));
            assert!(c >= prev, "cylinder map must be monotone");
            assert!(c < m.cylinders);
            prev = c;
        }
    }

    #[test]
    fn outer_zones_transfer_faster() {
        let m = ServiceModel::zoned_ultrastar(8);
        let capacity = model().blocks_per_cylinder * model().cylinders;
        let outer = m.transfer_time_at(BlockNo::new(0), 64);
        let inner = m.transfer_time_at(BlockNo::new(capacity - 1), 64);
        assert!(
            inner.as_secs_f64() > outer.as_secs_f64() * 1.5,
            "inner {inner} vs outer {outer}"
        );
        // The flat model sits in between.
        let flat = model().transfer_time(64);
        assert!(outer < flat && flat < inner);
    }

    #[test]
    fn flat_model_is_unchanged_by_the_zone_machinery() {
        let m = model();
        assert!(m.zone_of(BlockNo::new(123)).is_none());
        assert_eq!(m.transfer_time_at(BlockNo::new(123), 8), m.transfer_time(8));
    }

    #[test]
    fn zoned_service_time_is_seek_plus_latency_plus_zone_transfer() {
        let m = ServiceModel::zoned_ultrastar(4);
        let req = ServiceRequest {
            block: BlockNo::new(100),
            blocks: 32,
        };
        let t = m.service_time(Some(BlockNo::new(100)), req);
        let expected =
            m.rotational_latency(BlockNo::new(100)) + m.transfer_time_at(BlockNo::new(100), 32);
        assert_eq!(t, expected, "same cylinder: no seek");
    }
}
