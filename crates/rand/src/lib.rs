//! First-party pseudo-random number generation.
//!
//! A deliberate, minimal subset of the `rand` 0.8 API surface the
//! workspace actually uses — [`Rng`], [`SeedableRng`], and
//! [`rngs::StdRng`] — implemented over xoshiro256++ (Blackman &
//! Vigna) seeded through SplitMix64, exactly the construction the
//! xoshiro authors recommend. Keeping the crate in-tree means the
//! workspace builds with **no registry access at all** (the seed repo
//! failed to resolve on air-gapped machines) while trace generators
//! keep their idiomatic `use rand::{Rng, SeedableRng}` imports.
//!
//! Determinism is a hard requirement here: every simulation seed maps
//! to one exact trace, forever. The generator and all sampling
//! transforms below are fixed algorithms with no platform- or
//! version-dependent behavior.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let d = rng.gen_range(0..19u32);
//! assert!(d < 19);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random `u64`s plus the sampling
/// conveniences the trace generators use.
///
/// All provided methods are derived deterministically from
/// [`Rng::next_u64`], so any implementor is fully reproducible.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (for `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive
    /// (`a..=b`) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1): the standard double-precision
        // uniform construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high` is exclusive.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; `high` is inclusive.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Draws a uniform `u64` in `[0, span)` without modulo bias
/// (Lemire's widening-multiply rejection method).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // `threshold` is the number of under-full slots to reject so every
    // residue class is equally likely.
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as u64) - (low as u64);
                low + uniform_below(rng, span) as $t
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // The range covers the whole u64 domain.
                    return rng.next_u64() as $t;
                }
                low + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        let u = f64::sample_standard(rng);
        let v = low + u * (high - low);
        // Floating-point rounding can land exactly on `high`; clamp back
        // into the half-open interval.
        if v < high {
            v
        } else {
            low.max(prev_down(high))
        }
    }

    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "cannot sample from an empty range");
        let u = f64::sample_standard(rng);
        low + u * (high - low)
    }
}

/// The largest double strictly below `x` (for positive finite `x`).
fn prev_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    ///
    /// Not cryptographically secure — it drives simulations, not
    /// secrets — but fast, tiny, and passes the usual statistical
    /// batteries (BigCrush) per its authors.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the 64-bit seed into the full
            // 256-bit state; the xoshiro authors' recommended seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_standard_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=8u64);
            assert!((5..=8).contains(&y));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform_over_small_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            let share = f64::from(c) / n as f64;
            assert!((share - 0.125).abs() < 0.01, "share {share}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.7)).count();
        let share = hits as f64 / 50_000.0;
        assert!((share - 0.7).abs() < 0.01, "share {share}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn works_through_unsized_trait_object_style_generics() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(f64::MIN_POSITIVE..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert!(draw(&mut rng) > 0.0);
    }
}
