//! Bounded shard admission queues.
//!
//! Each shard thread consumes work through one of these instead of an
//! unbounded mpsc channel. The bound is expressed in *requests*, not
//! messages: an I/O batch of `k` requests occupies `k` units of the
//! queue's capacity, so the depth gauge and the `BUSY` payload both
//! speak the unit clients care about.
//!
//! Admission is two-phase so a reader can split a batch exactly at the
//! remaining capacity without racing other connections:
//!
//! 1. [`QueueSender::try_reserve`] atomically grants
//!    `min(want, capacity − depth)` units and bumps the depth.
//! 2. [`QueueSender::push_reserved`] enqueues the message carrying the
//!    granted weight (no further depth change).
//!
//! Whatever was *not* granted is the caller's overload signal: the
//! reader answers those requests with `BUSY` instead of queueing them.
//! Control messages (statistics polls) bypass the bound through
//! [`QueueSender::push_control`] — they are rare, tiny, and must not be
//! starved by data-plane pressure.
//!
//! Depth is decremented when the consumer *pops* a message, so the
//! gauge reads "requests accepted but not yet started", matching what a
//! client can influence by backing off.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared state behind one shard's queue.
#[derive(Debug)]
struct Inner<T> {
    queue: Mutex<VecDeque<(T, usize)>>,
    ready: Condvar,
    capacity: usize,
    /// Requests reserved but not yet popped.
    depth: AtomicUsize,
    /// Highest depth ever observed at reserve time.
    high_water: AtomicU64,
    /// Live [`QueueSender`] handles; 0 + empty queue = disconnected.
    senders: AtomicUsize,
    /// Cleared when the [`QueueReceiver`] drops: reservations fail
    /// `Closed` from then on.
    receiver_alive: AtomicBool,
}

/// A reservation too small (or a disconnected consumer): the portion of
/// the batch that was **not** admitted must be bounced with `BUSY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPushError {
    /// The queue is full: `depth` requests were already waiting.
    Full {
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
    /// The consumer is gone (shard thread exited); nothing can be
    /// admitted any more.
    Closed,
}

/// The producing half: cloned into every connection reader.
#[derive(Debug)]
pub struct QueueSender<T> {
    inner: Arc<Inner<T>>,
}

/// The consuming half: owned by exactly one shard thread.
#[derive(Debug)]
pub struct QueueReceiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a queue bounded at `capacity` requests.
///
/// # Panics
///
/// Panics if `capacity` is zero.
#[must_use]
pub fn bounded<T>(capacity: usize) -> (QueueSender<T>, QueueReceiver<T>) {
    assert!(
        capacity > 0,
        "a shard queue needs capacity for at least one request"
    );
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        capacity,
        depth: AtomicUsize::new(0),
        high_water: AtomicU64::new(0),
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicBool::new(true),
    });
    (
        QueueSender {
            inner: Arc::clone(&inner),
        },
        QueueReceiver { inner },
    )
}

impl<T> Clone for QueueSender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::Relaxed);
        QueueSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for QueueSender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake the consumer so it can drain + exit.
            self.inner.ready.notify_all();
        }
    }
}

impl<T> QueueSender<T> {
    /// Atomically grants up to `want` units of capacity, returning the
    /// granted count (0 when the queue is already full). The grant is
    /// committed immediately — follow up with
    /// [`push_reserved`](Self::push_reserved) for exactly the granted
    /// weight.
    ///
    /// # Errors
    ///
    /// Returns [`TryPushError`] when nothing was granted: `Full` with
    /// the current depth, or `Closed` if the consumer is gone.
    pub fn try_reserve(&self, want: usize) -> Result<usize, TryPushError> {
        let _guard = self.inner.queue.lock().expect("queue poisoned");
        if !self.inner.receiver_alive.load(Ordering::Relaxed) {
            return Err(TryPushError::Closed);
        }
        let depth = self.inner.depth.load(Ordering::Relaxed);
        let granted = want.min(self.inner.capacity.saturating_sub(depth));
        if granted == 0 {
            return Err(TryPushError::Full { depth });
        }
        let after = depth + granted;
        self.inner.depth.store(after, Ordering::Relaxed);
        let hw = &self.inner.high_water;
        if after as u64 > hw.load(Ordering::Relaxed) {
            hw.store(after as u64, Ordering::Relaxed);
        }
        Ok(granted)
    }

    /// Enqueues a message whose capacity was already granted by
    /// [`try_reserve`](Self::try_reserve); `weight` must equal the
    /// granted count.
    pub fn push_reserved(&self, item: T, weight: usize) {
        let mut q = self.inner.queue.lock().expect("queue poisoned");
        q.push_back((item, weight));
        drop(q);
        self.inner.ready.notify_one();
    }

    /// Enqueues a control message (weight 0) regardless of data-plane
    /// pressure. Dropped (not queued) if the consumer is gone —
    /// mirroring `mpsc` send-after-disconnect, which callers already
    /// ignore; dropping matters so reply channels riding inside the
    /// message disconnect instead of sitting in a dead queue.
    pub fn push_control(&self, item: T) {
        let mut q = self.inner.queue.lock().expect("queue poisoned");
        if !self.inner.receiver_alive.load(Ordering::Relaxed) {
            return;
        }
        q.push_back((item, 0));
        drop(q);
        self.inner.ready.notify_one();
    }

    /// Current queue depth in requests.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.depth.load(Ordering::Relaxed)
    }
}

impl<T> Drop for QueueReceiver<T> {
    fn drop(&mut self) {
        // Under the lock so no reservation is mid-flight when the flag
        // flips; senders observe `Closed` from the next attempt on.
        let _guard = self.inner.queue.lock().expect("queue poisoned");
        self.inner.receiver_alive.store(false, Ordering::Relaxed);
    }
}

impl<T> QueueReceiver<T> {
    /// Blocks for the next message; `None` once every sender is gone
    /// and the queue has drained.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.queue.lock().expect("queue poisoned");
        loop {
            if let Some((item, weight)) = q.pop_front() {
                if weight > 0 {
                    self.inner.depth.fetch_sub(weight, Ordering::Relaxed);
                }
                return Some(item);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return None;
            }
            q = self.inner.ready.wait(q).expect("queue poisoned");
        }
    }

    /// Current queue depth in requests.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.depth.load(Ordering::Relaxed)
    }

    /// Highest depth ever observed.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.inner.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_splits_exactly_at_capacity() {
        let (tx, rx) = bounded::<u32>(8);
        assert_eq!(tx.try_reserve(5).unwrap(), 5);
        tx.push_reserved(1, 5);
        // Only 3 units left: a 6-unit batch gets a partial grant.
        assert_eq!(tx.try_reserve(6).unwrap(), 3);
        tx.push_reserved(2, 3);
        assert_eq!(tx.try_reserve(1), Err(TryPushError::Full { depth: 8 }));
        assert_eq!(tx.depth(), 8);
        assert_eq!(rx.high_water(), 8);

        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.depth(), 3);
        // Capacity freed by the pop is grantable again.
        assert_eq!(tx.try_reserve(10).unwrap(), 5);
    }

    #[test]
    fn control_messages_bypass_a_full_queue() {
        let (tx, rx) = bounded::<&str>(1);
        assert_eq!(tx.try_reserve(1).unwrap(), 1);
        tx.push_reserved("io", 1);
        assert!(matches!(tx.try_reserve(1), Err(TryPushError::Full { .. })));
        tx.push_control("stats");
        assert_eq!(rx.pop(), Some("io"));
        assert_eq!(rx.pop(), Some("stats"));
        assert_eq!(rx.depth(), 0);
    }

    #[test]
    fn pop_returns_none_after_last_sender_drops() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.try_reserve(1).unwrap();
        tx.push_reserved(7, 1);
        drop(tx);
        drop(tx2);
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn reserve_fails_closed_after_receiver_drops() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.try_reserve(1), Err(TryPushError::Closed));
    }

    #[test]
    fn blocked_pop_wakes_on_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        let h = std::thread::spawn(move || rx.pop());
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(tx);
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_reservations_never_exceed_capacity() {
        let (tx, rx) = bounded::<usize>(64);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let tx = tx.clone();
            joins.push(std::thread::spawn(move || {
                let mut granted_total = 0usize;
                for _ in 0..1_000 {
                    if let Ok(g) = tx.try_reserve(7) {
                        tx.push_reserved(g, g);
                        granted_total += g;
                    }
                }
                granted_total
            }));
        }
        drop(tx);
        let mut popped = 0usize;
        let mut max_depth = 0usize;
        while let Some(g) = rx.pop() {
            max_depth = max_depth.max(rx.depth() + g);
            popped += g;
        }
        let granted: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(popped, granted, "every granted request must be popped");
        assert!(max_depth <= 64, "depth overshot the bound: {max_depth}");
        assert!(rx.high_water() <= 64);
    }
}
