//! Live request capture: record every request a shard accepts into a
//! binary `.pct` trace file for later replay.
//!
//! The shard hot path must never block on file I/O, so capture is a
//! bounded ring: shards [`try_send`](std::sync::mpsc::SyncSender::try_send)
//! records into a fixed-capacity channel and a dedicated writer thread
//! drains it into a [`pc_tracefile::TraceFileWriter`]. When the ring is
//! full (the disk cannot keep up with the request rate) the record is
//! **dropped and counted** — the trace loses fidelity, visibly, instead
//! of the server losing throughput. Drop counts surface in `STATS` and
//! the closing report as the `capture` section.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use pc_trace::{IoOp, Record};
use pc_tracefile::TraceFileWriter;
use pc_units::{BlockId, BlockNo, DiskId, SimTime};

use crate::stats::CaptureSnapshot;

/// Default capacity of the capture ring, in records (32 B each ≈ 2 MiB
/// of buffered backlog before drops start).
pub const DEFAULT_CAPTURE_QUEUE: usize = 65_536;

/// The shard-side handle: a non-blocking record sink plus the live
/// recorded/dropped gauges.
#[derive(Debug)]
pub struct CaptureRing {
    tx: SyncSender<Record>,
    disk_count: u32,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl CaptureRing {
    /// Records one accepted request, never blocking: a full ring (or a
    /// dead writer) drops the record and bumps the drop gauge.
    pub(crate) fn record(&self, at_us: u64, disk: u32, block: u64, blocks: u64, write: bool) {
        let record = Record {
            time: SimTime::from_micros(at_us),
            // The engine reduces out-of-range disks modulo the array;
            // capture what is actually served so the file replays
            // against the same geometry.
            block: BlockId::new(DiskId::new(disk % self.disk_count), BlockNo::new(block)),
            blocks: blocks.max(1),
            op: if write { IoOp::Write } else { IoOp::Read },
        };
        match self.tx.try_send(record) {
            Ok(()) => {
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The live recorded/dropped gauges, for `STATS`.
    #[must_use]
    pub fn snapshot(&self) -> CaptureSnapshot {
        CaptureSnapshot {
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// A running capture: the shared ring plus the writer thread draining it
/// to disk.
#[derive(Debug)]
pub struct Capture {
    ring: Arc<CaptureRing>,
    writer: std::thread::JoinHandle<io::Result<u64>>,
    path: PathBuf,
}

/// What a finished capture reports back.
#[derive(Debug)]
pub struct CaptureReport {
    /// The trace file written.
    pub path: PathBuf,
    /// Records persisted to the file.
    pub written: u64,
    /// Records dropped at the full ring (not in the file).
    pub dropped: u64,
}

impl Capture {
    /// Creates the trace file and starts the writer thread.
    ///
    /// # Errors
    ///
    /// Returns any file-system error from creating the file.
    pub fn start(path: &Path, disk_count: u32, capacity: usize) -> io::Result<Capture> {
        let file = TraceFileWriter::create(path, disk_count)?;
        let (tx, rx) = sync_channel(capacity.max(1));
        let writer = std::thread::spawn(move || writer_main(file, &rx));
        Ok(Capture {
            ring: Arc::new(CaptureRing {
                tx,
                disk_count,
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
            writer,
            path: path.to_path_buf(),
        })
    }

    /// A shard-side handle to the ring.
    #[must_use]
    pub fn ring(&self) -> Arc<CaptureRing> {
        Arc::clone(&self.ring)
    }

    /// Waits for the writer to drain the ring and finalize the file,
    /// returning the closing report. Every other [`CaptureRing`] clone
    /// must be dropped first (shard threads joined), or this blocks
    /// until they are.
    ///
    /// # Errors
    ///
    /// Returns the writer thread's I/O error, if any.
    pub fn finish(self) -> io::Result<CaptureReport> {
        let dropped = self.ring.dropped.load(Ordering::Relaxed);
        drop(self.ring);
        let written = self
            .writer
            .join()
            .map_err(|_| io::Error::other("capture writer thread panicked"))??;
        Ok(CaptureReport {
            path: self.path,
            written,
            dropped,
        })
    }
}

/// The writer thread: drain the ring into the file until every sender is
/// gone, then finalize the header.
fn writer_main(mut file: TraceFileWriter, rx: &Receiver<Record>) -> io::Result<u64> {
    while let Ok(record) = rx.recv() {
        file.push(record)?;
    }
    file.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pc-capture-{tag}-{}.pct", std::process::id()))
    }

    #[test]
    fn capture_round_trips_and_reduces_disks() {
        let path = temp_path("roundtrip");
        let cap = Capture::start(&path, 4, 16).unwrap();
        let ring = cap.ring();
        ring.record(10, 1, 100, 2, true);
        ring.record(5, 6, 7, 1, false); // disk 6 % 4 == 2
        drop(ring);
        let report = cap.finish().unwrap();
        assert_eq!(report.written, 2);
        assert_eq!(report.dropped, 0);

        // File order is append order; read_trace re-sorts by time.
        let trace = pc_tracefile::read_trace(&path).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.records()[0].time, SimTime::from_micros(5));
        assert_eq!(trace.records()[0].block.disk().index(), 2);
        assert_eq!(trace.records()[1].op, IoOp::Write);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn full_ring_drops_and_counts_instead_of_blocking() {
        let path = temp_path("drops");
        let cap = Capture::start(&path, 1, 4).unwrap();
        let ring = cap.ring();
        // Park the writer behind a deliberately tiny ring by flooding
        // faster than it can drain; with 10k sends at capacity 4 some
        // must drop, and none may block.
        for i in 0..10_000u64 {
            ring.record(i, 0, i, 1, false);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.recorded + snap.dropped, 10_000);
        drop(ring);
        let report = cap.finish().unwrap();
        assert_eq!(report.written, snap.recorded);
        let trace = pc_tracefile::read_trace(&path).unwrap();
        assert_eq!(trace.len() as u64, report.written);
        std::fs::remove_file(&path).unwrap();
    }
}
