//! Per-connection state for the event-loop front-end: a nonblocking
//! socket, a compacting [`FrameBuf`] for request reassembly, and a
//! scatter-gather write queue flushed on writable readiness.
//!
//! A [`Conn`] is deliberately dumb — it owns no protocol logic beyond
//! framing and no knowledge of shards or tokens. The event loop in
//! `server.rs` drives it: on readable, [`Conn::fill`] then drain
//! [`Conn::next_request`]; replies go in via [`Conn::queue_write`] and
//! out via [`Conn::flush`], which uses `write_vectored` so a backlog of
//! small reply frames leaves in one syscall. When [`Conn::flush`]
//! can't finish (kernel send buffer full), the loop arms writable
//! interest and retries on the next `EPOLLOUT`.
//!
//! Memory discipline: the read buffer starts at [`READ_BUF`] bytes and
//! inbound frames are capped at the server's per-instance request
//! ceiling ([`crate::protocol::max_request_frame`] for its block size;
//! [`crate::protocol::MAX_REQUEST_FRAME`] for metadata-only), so an
//! idle connection costs a few hundred bytes of queue bookkeeping plus
//! one small buffer — not a thread stack. After the write queue drains
//! the read window is shrunk back via [`FrameBuf::reclaim`].

use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::protocol::{FrameBuf, ProtoError, Request};

/// Initial (and reclaimed-to) read buffer size per connection. Requests
/// are at most 23 wire bytes, so 4 KiB holds ~178 pipelined requests —
/// plenty for a drain quantum — while keeping 10k idle connections
/// under 64 MiB of read windows.
pub const READ_BUF: usize = 4096;

/// How many `read(2)` calls one readable event may issue before the
/// connection yields the IO thread. Level-triggered epoll re-reports
/// the fd if bytes remain, so this bounds per-connection latency
/// monopoly without losing data.
const READ_ROUNDS: usize = 8;

/// Cap on iovecs per `write_vectored` call (kernel `UIO_MAXIOV` is
/// 1024; staying well under avoids an allocation-size cliff).
const MAX_IOVECS: usize = 64;

/// What a [`Conn::fill`] pass observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// Read `0+` bytes and hit `WouldBlock` (or the round cap); the
    /// socket stays open.
    Open(usize),
    /// The peer closed its write half after `0+` bytes; drain buffered
    /// requests, flush replies, then close.
    Eof(usize),
}

/// One multiplexed connection: nonblocking stream + reassembly buffer +
/// pending-reply queue.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    inbuf: FrameBuf,
    /// Post-flush read-window floor: [`READ_BUF`] for metadata-sized
    /// frame caps, larger for payload-capable connections so the
    /// window is not re-zeroed and re-grown on every data burst.
    reclaim_floor: usize,
    outq: VecDeque<Vec<u8>>,
    /// Bytes of `outq.front()` already written to the kernel.
    head: usize,
    /// Total unsent bytes across the queue (including the partial front).
    out_bytes: usize,
    /// Last instant data arrived — the idle sweep's clock.
    pub last_data: Instant,
    /// Peer closed its write half; close once `outq` drains.
    pub closing: bool,
}

impl Conn {
    /// Wraps an accepted stream: switches it to nonblocking and
    /// disables Nagle (replies are latency-sensitive and batched by us,
    /// not the kernel). `max_frame` caps inbound frames: the server
    /// passes [`crate::protocol::max_request_frame`] for its block size,
    /// so a metadata-only deployment still rejects payload-sized frames
    /// larger than one data request could legitimately be.
    pub fn new(stream: TcpStream, max_frame: usize) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            inbuf: FrameBuf::with_capacity(READ_BUF).with_max_frame(max_frame),
            reclaim_floor: READ_BUF.max((max_frame + 4).min(16 * READ_BUF)),
            outq: VecDeque::new(),
            head: 0,
            out_bytes: 0,
            last_data: Instant::now(),
            closing: false,
        })
    }

    /// The underlying stream (for fd registration and socket options).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads until `WouldBlock`, EOF, or the per-event round cap.
    /// Advances the idle clock if any bytes arrived.
    pub fn fill(&mut self) -> io::Result<FillOutcome> {
        let mut total = 0usize;
        for _ in 0..READ_ROUNDS {
            match self.inbuf.read_from(&mut self.stream) {
                Ok(0) => {
                    if total > 0 {
                        self.last_data = Instant::now();
                    }
                    return Ok(FillOutcome::Eof(total));
                }
                Ok(n) => total += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if total > 0 {
            self.last_data = Instant::now();
        }
        Ok(FillOutcome::Open(total))
    }

    /// Decodes the next complete request, if one is buffered.
    pub fn next_request(&mut self) -> Result<Option<Request>, ProtoError> {
        self.inbuf.next_request()
    }

    /// Queues a reply frame for delivery. Empty frames are dropped.
    pub fn queue_write(&mut self, frame: Vec<u8>) {
        if frame.is_empty() {
            return;
        }
        self.out_bytes += frame.len();
        self.outq.push_back(frame);
    }

    /// Pushes queued frames to the kernel with `write_vectored`,
    /// returning `true` once the queue is empty. `false` means the
    /// send buffer filled mid-flush: arm writable interest and call
    /// again on `EPOLLOUT`.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.out_bytes > 0 {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.outq.len().min(MAX_IOVECS));
            for (i, frame) in self.outq.iter().take(MAX_IOVECS).enumerate() {
                let from = if i == 0 { self.head } else { 0 };
                slices.push(IoSlice::new(&frame[from..]));
            }
            let n = match self.stream.write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            self.advance(n);
        }
        // Nothing pending: shrink an over-grown read window back to the
        // idle footprint.
        self.inbuf.reclaim(self.reclaim_floor);
        Ok(true)
    }

    /// Accounts `n` bytes written: pops fully-sent frames, tracks the
    /// partial front.
    fn advance(&mut self, mut n: usize) {
        self.out_bytes -= n;
        while n > 0 {
            let front_left = self.outq.front().map(|f| f.len() - self.head).unwrap_or(0);
            if n >= front_left {
                self.outq.pop_front();
                self.head = 0;
                n -= front_left;
            } else {
                self.head += n;
                n = 0;
            }
        }
    }

    /// `true` while reply bytes are queued (writable interest needed).
    pub fn wants_write(&self) -> bool {
        self.out_bytes > 0
    }

    /// Unsent reply bytes currently queued.
    pub fn pending_write_bytes(&self) -> usize {
        self.out_bytes
    }

    /// Approximate heap footprint: read window + queued replies. Feeds
    /// the per-IO-thread `buffer_bytes` gauge.
    pub fn buffer_bytes(&self) -> usize {
        self.inbuf.capacity() + self.out_bytes
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::poller::set_send_buffer;
    use crate::protocol::encode_request;
    use crate::protocol::MAX_REQUEST_FRAME;
    use std::io::Read;
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;

    /// Scatter-gather under a tiny `SO_SNDBUF`: a reply backlog far
    /// larger than the kernel buffer must flush partially, report
    /// "not done", and complete over repeated EPOLLOUT-style retries —
    /// delivering byte-identical content.
    #[test]
    fn partial_writes_scatter_gather_to_completion() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        set_send_buffer(accepted.as_raw_fd(), 4096).unwrap();
        let mut conn = Conn::new(accepted, MAX_REQUEST_FRAME).unwrap();

        // ~1.5 MiB across many small frames: guaranteed to overrun a
        // 4 KiB send buffer many times over.
        let mut expect = Vec::new();
        for i in 0..6_000u32 {
            let frame: Vec<u8> = (0..255u8).map(|b| b ^ (i as u8)).collect();
            expect.extend_from_slice(&frame);
            conn.queue_write(frame);
        }
        let queued = conn.pending_write_bytes();
        assert_eq!(queued, expect.len());

        // First flush against a non-reading peer must stall partway.
        assert!(!conn.flush().unwrap(), "tiny SO_SNDBUF cannot take it all");
        assert!(conn.wants_write());
        assert!(conn.pending_write_bytes() < queued, "some bytes must move");

        // A reader thread consumes; we keep re-flushing as EPOLLOUT
        // would drive us, until the queue drains.
        let want = expect.len();
        let reader = std::thread::spawn(move || {
            let mut peer = peer;
            let mut got = Vec::with_capacity(want);
            let mut buf = [0u8; 8192];
            while got.len() < want {
                let n = peer.read(&mut buf).unwrap();
                assert!(n > 0, "sender hung up early at {} bytes", got.len());
                got.extend_from_slice(&buf[..n]);
            }
            got
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while !conn.flush().unwrap() {
            assert!(Instant::now() < deadline, "flush made no progress");
            std::thread::yield_now();
        }
        assert!(!conn.wants_write());
        assert_eq!(conn.pending_write_bytes(), 0);
        let got = reader.join().unwrap();
        assert_eq!(got, expect, "scatter-gather reordered or corrupted bytes");
    }

    /// `fill` + `next_request` round-trips pipelined requests and
    /// reports EOF exactly once the peer closes.
    #[test]
    fn fill_decodes_pipelined_requests_and_sees_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = Conn::new(accepted, MAX_REQUEST_FRAME).unwrap();

        let reqs: Vec<Request> = (0..100)
            .map(|i| Request::Io {
                seq: i,
                write: i % 3 == 0,
                disk: i % 4,
                block: u64::from(i) * 7,
                blocks: 1,
            })
            .collect();
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
        }
        peer.write_all(&wire).unwrap();
        drop(peer);

        let mut got = Vec::new();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        'outer: loop {
            assert!(Instant::now() < deadline, "never saw EOF");
            let outcome = conn.fill().unwrap();
            while let Some(req) = conn.next_request().unwrap() {
                got.push(req);
            }
            if let FillOutcome::Eof(_) = outcome {
                break 'outer;
            }
        }
        assert_eq!(got, reqs);
    }

    /// The read window reclaims to the idle footprint after a flush
    /// with nothing queued.
    #[test]
    fn idle_connections_reclaim_their_read_window() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = Conn::new(accepted, MAX_REQUEST_FRAME).unwrap();
        assert!(conn.flush().unwrap());
        assert!(
            conn.buffer_bytes() <= READ_BUF,
            "idle footprint blew past the window: {}",
            conn.buffer_bytes()
        );
    }
}
