//! `pc-server`: the online serving layer over the `powercache` stack.
//!
//! Everything below this crate simulates — caches, disks, energy. This
//! crate puts that stack behind a socket: a long-running daemon that
//! serves block read/write requests over a compact length-prefixed
//! binary protocol ([`protocol`]), hash-partitions `(disk, block)`
//! across N independent shard threads ([`shard`]), and advances each
//! shard's own virtual-time disk timeline so the service can report
//! *live* energy, hit-ratio and latency statistics ([`stats`]) while it
//! runs. A companion load generator ([`loadgen`]) replays the workspace
//! workloads over M concurrent connections and collects a closing
//! report.
//!
//! Two binaries ship with the crate:
//!
//! * `pc-server` — the daemon (graceful SIGTERM drain, closing report).
//! * `pc-loadgen` — the load generator (also hosts the deterministic
//!   `--in-process` mode, which needs no sockets at all).
//!
//! See DESIGN.md §8 for the architecture discussion.
//!
//! # Examples
//!
//! In-process, no sockets (the deterministic mode):
//!
//! ```
//! use pc_server::shard::{EngineConfig, InProcCluster};
//! use pc_trace::Workload;
//!
//! let workload = Workload::parse("synthetic").unwrap().with_requests(1_000);
//! let mut cluster = InProcCluster::new(&EngineConfig::new(4, 4));
//! for record in workload.stream(42) {
//!     cluster.submit(&record);
//! }
//! let snapshot = cluster.into_snapshot();
//! assert_eq!(snapshot.total_requests(), 1_000);
//! assert!(snapshot.total_energy() > pc_units::Joules::ZERO);
//! ```

// `unsafe` is denied crate-wide; the one exception is [`poller`],
// which wraps the epoll/eventfd syscalls behind a safe API and is the
// only module allowed to opt in.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod conn;
pub mod data;
pub mod loadgen;
#[allow(unsafe_code)]
pub mod poller;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shard;
pub mod stats;

pub use capture::{Capture, CaptureReport, CaptureRing, DEFAULT_CAPTURE_QUEUE};
pub use conn::Conn;
pub use data::{fill_block, BlockStore};
pub use loadgen::{run_in_process, run_tcp, InProcReport, LoadReport, LoadgenConfig};
pub use poller::{Event, Interest, Poller, Waker};
pub use server::{RunSummary, Server};
pub use shard::{
    online_policy, parse_slow_shard, parse_write_policy, shard_of, EngineConfig, InProcCluster,
    ShardEngine, SlowShard, SubmitOutcome, DEFAULT_QUEUE_BOUND, ONLINE_POLICIES,
};
pub use stats::{parse_stats_json, CaptureSnapshot, ClusterSnapshot, ShardSnapshot, StatsSummary};
