//! The `pc-loadgen` client: replay a workload against a `pc-server`
//! over M concurrent connections (or through the in-process cluster)
//! and print a closing report.

use std::process::ExitCode;
use std::time::Duration;

use pc_server::{
    online_policy, parse_slow_shard, parse_write_policy, run_in_process, run_tcp, EngineConfig,
    LoadgenConfig, SlowShard, DEFAULT_QUEUE_BOUND,
};
use pc_trace::Workload;

const USAGE: &str = "usage: pc-loadgen [--addr HOST:PORT] \
[--workload synthetic|oltp|cello96|nonstationary:SCENARIO] \
[--trace FILE.pct] \
[--conns N] [--connections N] [--secs S] [--seed N] [--rate REQ_PER_SEC] [--shutdown] \
[--retry-budget N] [--backoff-us N] [--backoff-cap-us N] [--io-timeout-secs S] \
[--payload] [--block-bytes N] \
[--in-process] [--shards N] [--policy NAME] [--write-policy NAME] [--reqs N] \
[--shard-queue N] [--slow-shard IDX:MICROS]\n\
  nonstationary scenarios (diurnal, flash-crowd, churn, phase-change)\n\
  shift their request mix mid-run — pair with `pc-server --policy meta`\n\
  to watch the adaptive policy switch in STATS.\n\
  --conns drives the hot workload streams; --connections N holds the\n\
  remainder (N - conns) open as mostly-idle sockets to exercise the\n\
  server's event-loop connection scaling.\n\
  --trace FILE replays a binary .pct trace (see `repro trace export`\n\
  and `pc-server --capture`) instead of generating --workload; records\n\
  are dealt round-robin across the hot connections.\n\
  --payload drives the protocol-v2 data plane: writes carry block\n\
  contents, reads are READ_DATA, and every DATA reply is verified\n\
  (CRC32C + exact bytes) against the deterministic disk image.\n\
  --block-bytes must match the server's data-plane block size.";

struct Args {
    load: LoadgenConfig,
    shutdown: bool,
    in_process: bool,
    shards: usize,
    policy: String,
    write_policy: String,
    reqs: Option<usize>,
    shard_queue: usize,
    slow_shard: Option<SlowShard>,
}

fn parse_args() -> Result<Args, String> {
    let mut load = LoadgenConfig::new("127.0.0.1:7070".to_owned());
    let mut shutdown = false;
    let mut in_process = false;
    let mut shards = 8usize;
    let mut policy = "pa-lru".to_owned();
    let mut write_policy = "write-back".to_owned();
    let mut reqs = None;
    let mut shard_queue = DEFAULT_QUEUE_BOUND;
    let mut slow_shard = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => load.addr = value("--addr")?,
            "--workload" => {
                let name = value("--workload")?;
                load.workload =
                    Workload::parse(&name).ok_or_else(|| format!("unknown workload {name:?}"))?;
            }
            "--conns" => {
                load.conns = value("--conns")?
                    .parse()
                    .map_err(|e| format!("--conns: {e}"))?
            }
            "--connections" => {
                load.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--secs" => {
                load.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?
            }
            "--seed" => {
                load.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--rate" => {
                load.rate = Some(
                    value("--rate")?
                        .parse()
                        .map_err(|e| format!("--rate: {e}"))?,
                )
            }
            "--reqs" => {
                reqs = Some(
                    value("--reqs")?
                        .parse()
                        .map_err(|e| format!("--reqs: {e}"))?,
                )
            }
            "--retry-budget" => {
                load.retry_budget = value("--retry-budget")?
                    .parse()
                    .map_err(|e| format!("--retry-budget: {e}"))?
            }
            "--backoff-us" => {
                load.backoff_us = value("--backoff-us")?
                    .parse()
                    .map_err(|e| format!("--backoff-us: {e}"))?
            }
            "--backoff-cap-us" => {
                load.backoff_cap_us = value("--backoff-cap-us")?
                    .parse()
                    .map_err(|e| format!("--backoff-cap-us: {e}"))?
            }
            "--io-timeout-secs" => {
                let secs: f64 = value("--io-timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--io-timeout-secs: {e}"))?;
                if secs <= 0.0 {
                    return Err("--io-timeout-secs must be positive".to_owned());
                }
                load.io_timeout = Duration::from_secs_f64(secs);
            }
            "--trace" => load.trace = Some(value("--trace")?.into()),
            "--payload" => load.payload = true,
            "--block-bytes" => {
                load.block_bytes = value("--block-bytes")?
                    .parse()
                    .map_err(|e| format!("--block-bytes: {e}"))?;
                if load.block_bytes == 0 {
                    return Err("--block-bytes must be at least 1".to_owned());
                }
            }
            "--shutdown" => shutdown = true,
            "--in-process" => in_process = true,
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--shard-queue" => {
                shard_queue = value("--shard-queue")?
                    .parse()
                    .map_err(|e| format!("--shard-queue: {e}"))?;
                if shard_queue == 0 {
                    return Err("--shard-queue must be at least 1".to_owned());
                }
            }
            "--slow-shard" => {
                let spec = value("--slow-shard")?;
                slow_shard =
                    Some(parse_slow_shard(&spec).ok_or_else(|| {
                        format!("--slow-shard: expected IDX:MICROS, got {spec:?}")
                    })?);
            }
            "--policy" => policy = value("--policy")?,
            "--write-policy" => write_policy = value("--write-policy")?,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if let Some(n) = reqs {
        load.workload = load.workload.clone().with_requests(n);
    }
    Ok(Args {
        load,
        shutdown,
        in_process,
        shards,
        policy,
        write_policy,
        reqs,
        shard_queue,
        slow_shard,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.in_process {
        if args.load.trace.is_some() {
            eprintln!("pc-loadgen: --trace replays over TCP; drop --in-process");
            return ExitCode::FAILURE;
        }
        return run_in_process_mode(&args);
    }

    let source = match &args.load.trace {
        Some(path) => format!("trace:{}", path.display()),
        None => args.load.workload.name().to_owned(),
    };
    println!(
        "pc-loadgen: {} conns={} connections={} secs={} seed={} -> {}",
        source,
        args.load.conns,
        args.load.connections.max(args.load.conns),
        args.load.secs,
        args.load.seed,
        args.load.addr,
    );
    let report = match run_tcp(&args.load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pc-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if args.shutdown {
        if let Err(e) = pc_server::loadgen::send_shutdown(&args.load.addr) {
            eprintln!("pc-loadgen: shutdown: {e}");
            return ExitCode::FAILURE;
        }
        println!("pc-loadgen: server acknowledged shutdown");
    }
    // A run with zero responses, or shards that never accounted any
    // energy, is a failed run even if the sockets behaved.
    if report.responses == 0 {
        eprintln!("pc-loadgen: no responses received");
        return ExitCode::FAILURE;
    }
    if !report.stats.shard_energy_j.iter().all(|&e| e > 0.0) {
        eprintln!("pc-loadgen: a shard reported zero energy");
        return ExitCode::FAILURE;
    }
    // BUSY handled by backoff is a healthy protocol exchange; BUSY that
    // persisted past the whole retry budget means the server stayed
    // saturated, and the run failed to deliver those requests.
    if report.exhausted > 0 {
        eprintln!(
            "pc-loadgen: {} requests exhausted the retry budget",
            report.exhausted
        );
        return ExitCode::FAILURE;
    }
    // In payload mode every DATA reply was verified against the disk
    // image; a mismatch is a data-plane bug, and an unexpected CORRUPT
    // (no fault injection requested here) means the slab lost data.
    if report.verify_failures > 0 {
        eprintln!(
            "pc-loadgen: {} DATA replies failed verification",
            report.verify_failures
        );
        return ExitCode::FAILURE;
    }
    if report.corrupt > 0 {
        eprintln!("pc-loadgen: {} reads answered CORRUPT", report.corrupt);
        return ExitCode::FAILURE;
    }
    if args.load.payload && report.payload_bytes == 0 {
        eprintln!("pc-loadgen: payload mode moved zero payload bytes");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_in_process_mode(args: &Args) -> ExitCode {
    let Some(policy) = online_policy(&args.policy) else {
        eprintln!("unknown policy {:?}", args.policy);
        return ExitCode::FAILURE;
    };
    let Some(write_policy) = parse_write_policy(&args.write_policy) else {
        eprintln!("unknown write policy {:?}", args.write_policy);
        return ExitCode::FAILURE;
    };
    let mut engine = EngineConfig::new(args.shards, args.load.workload.disk_count())
        .with_policy(policy)
        .with_sim(pc_sim::SimConfig::default().with_write_policy(write_policy))
        .with_queue_bound(args.shard_queue);
    if let Some(slow) = args.slow_shard {
        if slow.shard >= args.shards {
            eprintln!(
                "--slow-shard index {} out of range (shards={})",
                slow.shard, args.shards
            );
            return ExitCode::FAILURE;
        }
        engine = engine.with_slow_shard(slow);
    }
    let workload = args
        .load
        .workload
        .clone()
        .with_requests(args.reqs.unwrap_or(100_000));
    let report = run_in_process(&engine, &workload, args.load.seed);
    println!(
        "pc-loadgen (in-process): {} submitted={} served={} hits={} seed={}",
        workload.name(),
        report.submitted,
        report.served,
        report.hits,
        args.load.seed,
    );
    println!(
        "backpressure: busy_rejects={} retries=0 exhausted=0",
        report.busy_rejects
    );
    print!("{}", report.snapshot.render_table());
    println!("{}", report.snapshot.to_json());
    ExitCode::SUCCESS
}
