//! The `pc-server` daemon: serve block I/O over TCP until SIGTERM (or a
//! `SHUTDOWN` frame), then drain and print the closing report.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use pc_server::{
    online_policy, parse_slow_shard, parse_write_policy, EngineConfig, Server, DEFAULT_QUEUE_BOUND,
    ONLINE_POLICIES,
};

/// Set by the C signal handler; bridged to the server's stop flag by a
/// watcher thread (the handler itself must stay async-signal-safe).
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // libc is already linked by std; `signal` with a flag-setting
    // handler is the entire dependency surface.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

const USAGE: &str = "usage: pc-server [--addr HOST:PORT] [--shards N] [--disks N] \
[--policy NAME] [--write-policy NAME] [--cache-blocks N] [--prefetch N] \
[--shard-queue N] [--slow-shard IDX:MICROS] [--io-threads N] [--legacy-threads] \
[--block-bytes N] [--corrupt-rate N] [--capture FILE.pct]\n\
  policies: lru fifo arc mq lirs 2q pa-lru pa-arc pa-mq pa-lirs pa-2q meta\n\
  (--policy meta adapts: it re-ranks the fixed policies each epoch and\n\
  switches the live one; STATS gains per-shard active_policy/switches)\n\
  write policies: write-back write-through wbeu[:limit] wtdu\n\
  --shard-queue bounds each shard's admission queue (requests); a full\n\
  queue answers BUSY. --slow-shard injects a per-request service delay\n\
  into one shard (fault injection for backpressure tests).\n\
  --io-threads sets the epoll event-loop thread count (0 = auto);\n\
  --legacy-threads restores the thread-per-connection front-end.\n\
  --block-bytes sets the data-plane block size (READ_DATA/WRITE_DATA\n\
  payload bytes per block, default 4096). --corrupt-rate N flips one\n\
  slab byte before every Nth verified read per shard (0 = off): CRC\n\
  fault injection — reads answer CORRUPT and STATS counts crc_failures.\n\
  --capture records every accepted request into a binary .pct trace\n\
  file for later replay (pc-loadgen --trace); capture never blocks a\n\
  shard — when the writer falls behind, records are dropped and the\n\
  drop count surfaces in STATS and the closing report.";

struct Args {
    addr: String,
    engine: EngineConfig,
    policy_name: String,
    write_name: String,
    capture: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = "127.0.0.1:7070".to_owned();
    let mut shards = 8usize;
    let mut disks = 21u32;
    let mut policy_name = "pa-lru".to_owned();
    let mut write_name = "write-back".to_owned();
    let mut cache_blocks = 4_096usize;
    let mut prefetch = 0u64;
    let mut shard_queue = DEFAULT_QUEUE_BOUND;
    let mut slow_shard = None;
    let mut io_threads = 0usize;
    let mut legacy_threads = false;
    let mut block_bytes = pc_server::protocol::DEFAULT_BLOCK_BYTES;
    let mut corrupt_rate = 0u64;
    let mut capture = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--disks" => {
                disks = value("--disks")?
                    .parse()
                    .map_err(|e| format!("--disks: {e}"))?
            }
            "--policy" => policy_name = value("--policy")?,
            "--write-policy" => write_name = value("--write-policy")?,
            "--cache-blocks" => {
                cache_blocks = value("--cache-blocks")?
                    .parse()
                    .map_err(|e| format!("--cache-blocks: {e}"))?;
            }
            "--prefetch" => {
                prefetch = value("--prefetch")?
                    .parse()
                    .map_err(|e| format!("--prefetch: {e}"))?
            }
            "--shard-queue" => {
                shard_queue = value("--shard-queue")?
                    .parse()
                    .map_err(|e| format!("--shard-queue: {e}"))?;
                if shard_queue == 0 {
                    return Err("--shard-queue must be at least 1".to_owned());
                }
            }
            "--slow-shard" => {
                let spec = value("--slow-shard")?;
                slow_shard =
                    Some(parse_slow_shard(&spec).ok_or_else(|| {
                        format!("--slow-shard: expected IDX:MICROS, got {spec:?}")
                    })?);
            }
            "--io-threads" => {
                io_threads = value("--io-threads")?
                    .parse()
                    .map_err(|e| format!("--io-threads: {e}"))?
            }
            "--legacy-threads" => legacy_threads = true,
            "--block-bytes" => {
                block_bytes = value("--block-bytes")?
                    .parse()
                    .map_err(|e| format!("--block-bytes: {e}"))?;
                if block_bytes == 0 {
                    return Err("--block-bytes must be at least 1".to_owned());
                }
            }
            "--corrupt-rate" => {
                corrupt_rate = value("--corrupt-rate")?
                    .parse()
                    .map_err(|e| format!("--corrupt-rate: {e}"))?
            }
            "--capture" => capture = Some(value("--capture")?.into()),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let policy = online_policy(&policy_name).ok_or_else(|| {
        format!(
            "unknown policy {policy_name:?}; online policies: {ONLINE_POLICIES:?} plus \"meta\""
        )
    })?;
    let write_policy = parse_write_policy(&write_name)
        .ok_or_else(|| format!("unknown write policy {write_name:?}"))?;
    let sim = pc_sim::SimConfig::default()
        .with_cache_blocks(cache_blocks)
        .with_write_policy(write_policy)
        .with_prefetch_depth(prefetch);
    let mut engine = EngineConfig::new(shards, disks)
        .with_policy(policy)
        .with_sim(sim)
        .with_queue_bound(shard_queue)
        .with_io_threads(io_threads)
        .with_legacy_threads(legacy_threads)
        .with_block_bytes(block_bytes)
        .with_corrupt_every(corrupt_rate);
    if let Some(slow) = slow_shard {
        if slow.shard >= shards {
            return Err(format!(
                "--slow-shard index {} out of range (shards={shards})",
                slow.shard
            ));
        }
        engine = engine.with_slow_shard(slow);
    }
    Ok(Args {
        addr,
        engine,
        policy_name,
        write_name,
        capture,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();
    let mut server = match Server::bind(&args.addr, args.engine.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pc-server: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.capture {
        server = server.with_capture(path.clone());
    }
    let addr = server
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(args.addr);
    println!(
        "pc-server listening on {addr} shards={} disks={} policy={} write_policy={} cache_blocks={} shard_queue={} front_end={}{}",
        args.engine.shards,
        args.engine.disks,
        args.policy_name,
        args.write_name,
        args.engine.sim.cache_blocks,
        args.engine.queue_bound,
        if args.engine.legacy_threads {
            "legacy-threads".to_owned()
        } else if args.engine.io_threads == 0 {
            "event-loop(auto)".to_owned()
        } else {
            format!("event-loop({})", args.engine.io_threads)
        },
        args.engine
            .slow_shard
            .map(|s| format!(" slow_shard={}:{}us", s.shard, s.micros))
            .unwrap_or_default(),
    );
    if let Some(path) = &args.capture {
        println!("pc-server capturing to {}", path.display());
    }

    let stop = server.stop_flag();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            stop.store(true, Ordering::Relaxed);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });

    match server.run() {
        Ok(summary) => {
            println!(
                "pc-server drained: {} connections, {} requests",
                summary.connections,
                summary.snapshot.total_requests()
            );
            if let Some(report) = &summary.capture {
                println!(
                    "pc-server captured {} records to {} ({} dropped)",
                    report.written,
                    report.path.display(),
                    report.dropped,
                );
            }
            print!("{}", summary.snapshot.render_table());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pc-server: {e}");
            ExitCode::FAILURE
        }
    }
}
