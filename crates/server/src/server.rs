//! The TCP daemon: thread-per-shard engines behind a readiness-based
//! connection front-end.
//!
//! ```text
//!            ┌── IO thread 0: epoll ──▶ conns 0,N,2N… ──┐
//! accept ────┤                                          ├─batches─▶ shard threads
//!            └── IO thread 1: epoll ──▶ conns 1,N+1,…  ──┘              │
//!                    ▲                                                  │
//!                    └───────────── reply hub (token, bytes) ◀──────────┘
//! ```
//!
//! The default front-end is an **event loop**: a handful of IO threads,
//! each multiplexing thousands of nonblocking connections through one
//! [`Poller`] (a first-party epoll wrapper — see [`crate::poller`]).
//! Per readable wakeup a connection's buffered bytes are drained,
//! *every* complete frame is decoded, and the decoded requests are
//! submitted to shards as per-shard batches through the bounded
//! [`queue`] admission path — one `try_reserve` covering each batch, so
//! the exactly-once IO-or-BUSY invariant from the blocking front-end
//! carries over unchanged. Shard replies route back to the owning IO
//! thread over a reply hub (an mpsc channel plus an eventfd [`Waker`]),
//! are queued on the connection's scatter-gather write buffer, and any
//! partial write arms `EPOLLOUT` for the rest. An idle connection
//! costs one slab slot, one 4 KiB read window and a deadline-heap entry
//! — not a thread stack — and a lazy-deletion deadline heap sweeps
//! silent peers after the idle timeout.
//!
//! The pre-event-loop **legacy** front-end (reader + writer thread per
//! connection, blocking reads) is retained behind
//! [`EngineConfig::legacy_threads`] for differential testing, and is
//! the automatic fallback on hosts without epoll.
//!
//! Admission is **bounded** on both paths: each shard consumes work
//! through a [`queue`] holding at most [`EngineConfig::queue_bound`]
//! requests. A batch that does not fit answers the overflow with
//! `BUSY` frames (carrying the shard's queue depth) instead of
//! buffering, so overload pushes back on clients rather than silently
//! reshaping the request stream a shard sees — the stream's shape is
//! what decides the exploitable idle periods, so it must not be
//! laundered through an elastic queue.
//!
//! Shutdown (SIGTERM bridge or the `SHUTDOWN` opcode) sets one atomic
//! flag: the accept loop stops, IO threads deliver outstanding shard
//! replies and flush write buffers, shard channels disconnect, and
//! every shard closes its energy books and hands back a final
//! [`ShardSnapshot`] for the closing report.

use std::collections::BinaryHeap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_units::SimTime;

use crate::capture::{Capture, CaptureReport, CaptureRing, DEFAULT_CAPTURE_QUEUE};
use crate::conn::{Conn, FillOutcome};
use crate::poller::{Event, Interest, Poller, Waker};
use crate::protocol::{self, FrameBuf, Request, Response};
use crate::queue::{self, QueueReceiver, QueueSender, TryPushError};
use crate::shard::{shard_of, EngineConfig, ShardEngine};
use crate::stats::{CaptureSnapshot, ClusterSnapshot, IoThreadSnapshot, ShardSnapshot};
use pc_units::{BlockNo, DiskId};

/// Flush a connection's pending batch to its shard once it holds this
/// many requests, even if more input is buffered.
const BATCH_LIMIT: usize = 1024;

/// How often blocked legacy readers / the accept loop re-check the stop
/// flag; also the event loop's maximum poll timeout for the same check.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Default per-connection idle timeout: a peer that sends no bytes for
/// this long is disconnected so it cannot pin server state forever.
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// The poller token reserved for each IO thread's waker.
const WAKER_TOKEN: u64 = u64::MAX;

/// How long a stopping IO thread waits for shards to answer its
/// outstanding batches before abandoning undelivered replies.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// One request routed to a shard.
struct IoReq {
    seq: u32,
    at_us: u64,
    disk: u32,
    block: u64,
    blocks: u64,
    write: bool,
    /// `Some` for a protocol-v2 data request: the `WRITE_DATA` payload
    /// (empty for `READ_DATA`, whose *reply* carries the bytes).
    /// `None` is a metadata-only request.
    payload: Option<Vec<u8>>,
}

/// Validates a data request against the server's block size before it
/// is batched: reads are bodiless, writes carry exactly
/// `blocks × block_bytes`, and both respect the per-request block cap.
/// A violation is a protocol error that kills the connection.
fn valid_data_request(write: bool, blocks: u16, payload: &[u8], block_bytes: usize) -> bool {
    let blocks = blocks.max(1);
    if blocks > protocol::MAX_DATA_BLOCKS {
        return false;
    }
    if write {
        payload.len() == blocks as usize * block_bytes
    } else {
        payload.is_empty()
    }
}

/// Where a shard sends a batch's encoded responses.
enum ReplySink {
    /// Legacy path: the connection's dedicated writer thread.
    Thread(Sender<WriterMsg>),
    /// Event path: the owning IO thread's reply hub, tagged with the
    /// connection's slab token; the waker interrupts its poll.
    Event {
        hub: Sender<(u64, Vec<u8>)>,
        token: u64,
        waker: Arc<Waker>,
    },
}

impl ReplySink {
    fn send(&self, bytes: Vec<u8>) {
        match self {
            // The receiving side may already be gone mid-shutdown.
            ReplySink::Thread(tx) => {
                let _ = tx.send(WriterMsg::Bytes(bytes));
            }
            ReplySink::Event { hub, token, waker } => {
                if hub.send((*token, bytes)).is_ok() {
                    waker.wake();
                }
            }
        }
    }
}

/// Work sent to a shard thread.
enum ShardMsg {
    /// A batch of requests from one connection; encoded responses go
    /// back through `reply`.
    Io { reply: ReplySink, batch: Vec<IoReq> },
    /// A snapshot request; the live snapshot goes back through `reply`.
    Stats { reply: Sender<ShardSnapshot> },
}

/// Bytes for a legacy connection's writer thread.
enum WriterMsg {
    Bytes(Vec<u8>),
    Close,
}

/// One IO thread's live gauges, shared as atomics so a STATS request on
/// any thread reads every thread's current values.
#[derive(Debug, Default)]
struct IoGauges {
    connections: AtomicU64,
    wakeups: AtomicU64,
    frames: AtomicU64,
    writeback_bytes: AtomicU64,
    buffer_bytes: AtomicU64,
}

impl IoGauges {
    fn snapshot(&self, thread: usize) -> IoThreadSnapshot {
        IoThreadSnapshot {
            thread,
            connections: self.connections.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            writeback_bytes: self.writeback_bytes.load(Ordering::Relaxed),
            buffer_bytes: self.buffer_bytes.load(Ordering::Relaxed),
        }
    }
}

fn io_snapshots(gauges: &[IoGauges]) -> Vec<IoThreadSnapshot> {
    gauges
        .iter()
        .enumerate()
        .map(|(i, g)| g.snapshot(i))
        .collect()
}

/// The daemon: bind, then [`run`](Self::run) until stopped.
pub struct Server {
    listener: TcpListener,
    engine: EngineConfig,
    stop: Arc<AtomicBool>,
    idle_timeout: Duration,
    capture: Option<std::path::PathBuf>,
}

/// What a completed run hands back for the closing report.
#[derive(Debug)]
pub struct RunSummary {
    /// Final cluster snapshot with closed energy books (includes the
    /// per-IO-thread gauges when the event-loop front-end served).
    pub snapshot: ClusterSnapshot,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// The closing capture report when `--capture` recorded the run.
    pub capture: Option<CaptureReport>,
}

impl Server {
    /// Binds the listener. The engine is not built until [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, engine: EngineConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
            idle_timeout: IDLE_TIMEOUT,
            capture: None,
        })
    }

    /// Records every request the shards accept into a binary `.pct`
    /// trace file at `path` (see [`crate::capture`]). Capture never
    /// blocks a shard: when the writer falls behind, records are
    /// dropped and counted instead.
    #[must_use]
    pub fn with_capture(mut self, path: std::path::PathBuf) -> Self {
        self.capture = Some(path);
        self
    }

    /// Overrides the per-connection idle timeout (default 60 s): a peer
    /// that sends no bytes for this long is disconnected.
    #[must_use]
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `local_addr` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The stop flag: store `true` (from a signal bridge, a test, or
    /// the `SHUTDOWN` opcode path) to trigger a graceful drain.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves until the stop flag is set, then drains and returns the
    /// final snapshot. Uses the event-loop front-end unless
    /// [`EngineConfig::legacy_threads`] is set or the host has no epoll
    /// (non-Linux), in which case the legacy blocking path serves.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors just
    /// close that connection.
    ///
    /// # Panics
    ///
    /// Panics if a shard or IO thread panicked (the engine is poisoned
    /// beyond reporting).
    pub fn run(self) -> std::io::Result<RunSummary> {
        if self.engine.legacy_threads {
            return self.run_legacy();
        }
        match Poller::new() {
            Ok(_probe) => self.run_event(),
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => self.run_legacy(),
            Err(e) => Err(e),
        }
    }

    /// Starts the live trace capture when configured; `None` otherwise.
    fn start_capture(&self) -> std::io::Result<Option<Capture>> {
        match &self.capture {
            Some(path) => Ok(Some(Capture::start(
                path,
                self.engine.disks,
                DEFAULT_CAPTURE_QUEUE,
            )?)),
            None => Ok(None),
        }
    }

    /// Builds the shard threads; shared by both front-ends. Each shard
    /// holds its own handle to the capture ring (when capturing) so the
    /// writer thread's channel disconnects exactly when the last shard
    /// joins.
    fn spawn_shards(
        &self,
        busy_gauges: &Arc<Vec<AtomicU64>>,
        capture: Option<&Arc<CaptureRing>>,
    ) -> (
        Vec<QueueSender<ShardMsg>>,
        Vec<std::thread::JoinHandle<ShardSnapshot>>,
    ) {
        let mut shard_txs = Vec::with_capacity(self.engine.shards);
        let mut shard_joins = Vec::with_capacity(self.engine.shards);
        for id in 0..self.engine.shards {
            let engine = ShardEngine::new(id, &self.engine);
            let (tx, rx) = queue::bounded(self.engine.queue_bound);
            shard_txs.push(tx);
            let gauges = Arc::clone(busy_gauges);
            let delay_us = self.engine.slow_delay_micros(id);
            let ring = capture.map(Arc::clone);
            shard_joins.push(std::thread::spawn(move || {
                shard_main(engine, &rx, &gauges[id], delay_us, ring.as_deref())
            }));
        }
        (shard_txs, shard_joins)
    }

    /// The event-loop front-end: accept here, serve on N IO threads.
    fn run_event(self) -> std::io::Result<RunSummary> {
        let policy = self.engine.policy.name();
        let write_policy = self.engine.sim.write_policy.name().to_owned();
        let epoch = Instant::now();

        let busy_gauges: Arc<Vec<AtomicU64>> =
            Arc::new((0..self.engine.shards).map(|_| AtomicU64::new(0)).collect());
        let capture = self.start_capture()?;
        let capture_ring = capture.as_ref().map(Capture::ring);
        let (shard_txs, shard_joins) = self.spawn_shards(&busy_gauges, capture_ring.as_ref());
        let shard_txs = Arc::new(shard_txs);

        let nthreads = effective_io_threads(self.engine.io_threads);
        let io_gauges: Arc<Vec<IoGauges>> =
            Arc::new((0..nthreads).map(|_| IoGauges::default()).collect());
        let mut wakers = Vec::with_capacity(nthreads);
        let mut pollers = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            wakers.push(Arc::new(Waker::new()?));
            pollers.push(Poller::new()?);
        }
        let wakers = Arc::new(wakers);

        let mut intakes = Vec::with_capacity(nthreads);
        let mut io_joins = Vec::with_capacity(nthreads);
        for (thread, poller) in pollers.into_iter().enumerate() {
            let (intake_tx, intake_rx) = channel();
            intakes.push(intake_tx);
            let ctx = IoThreadCtx {
                thread,
                poller,
                waker: Arc::clone(&wakers[thread]),
                all_wakers: Arc::clone(&wakers),
                intake: intake_rx,
                shard_txs: Arc::clone(&shard_txs),
                busy_gauges: Arc::clone(&busy_gauges),
                io_gauges: Arc::clone(&io_gauges),
                stop: Arc::clone(&self.stop),
                epoch,
                names: (policy.clone(), write_policy.clone()),
                idle_timeout: self.idle_timeout,
                block_bytes: self.engine.block_bytes,
                capture: capture_ring.as_ref().map(Arc::clone),
            };
            io_joins.push(std::thread::spawn(move || io_thread_main(ctx)));
        }

        self.listener.set_nonblocking(true)?;
        let mut connections = 0u64;
        while !self.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let at = (connections as usize) % nthreads;
                    connections += 1;
                    if intakes[at].send(stream).is_ok() {
                        wakers[at].wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: wake every IO thread so it observes the flag, let each
        // deliver its outstanding replies and flush, then close the
        // shard channels so the books close.
        drop(intakes);
        for w in wakers.iter() {
            w.wake();
        }
        for j in io_joins {
            j.join().expect("IO thread panicked");
        }
        let io = io_snapshots(&io_gauges);
        drop(shard_txs);
        let shards = shard_joins
            .into_iter()
            .map(|j| j.join().expect("shard thread panicked"))
            .collect();
        let (final_capture, report) = finish_capture(capture, capture_ring)?;
        Ok(RunSummary {
            snapshot: ClusterSnapshot::new(policy, write_policy, shards)
                .with_io(io)
                .with_capture(final_capture),
            connections,
            capture: report,
        })
    }

    /// The legacy thread-per-connection front-end (and the fallback for
    /// hosts without epoll).
    fn run_legacy(self) -> std::io::Result<RunSummary> {
        let policy = self.engine.policy.name();
        let write_policy = self.engine.sim.write_policy.name().to_owned();
        let epoch = Instant::now();

        let busy_gauges: Arc<Vec<AtomicU64>> =
            Arc::new((0..self.engine.shards).map(|_| AtomicU64::new(0)).collect());
        let capture = self.start_capture()?;
        let capture_ring = capture.as_ref().map(Capture::ring);
        let (shard_txs, shard_joins) = self.spawn_shards(&busy_gauges, capture_ring.as_ref());
        let shard_txs = Arc::new(shard_txs);

        self.listener.set_nonblocking(true)?;
        let mut connections = 0u64;
        let mut conn_joins = Vec::new();
        while !self.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let txs = Arc::clone(&shard_txs);
                    let stop = Arc::clone(&self.stop);
                    let gauges = Arc::clone(&busy_gauges);
                    let names = (policy.clone(), write_policy.clone());
                    let idle_timeout = self.idle_timeout;
                    let block_bytes = self.engine.block_bytes;
                    let ring = capture_ring.as_ref().map(Arc::clone);
                    conn_joins.push(std::thread::spawn(move || {
                        // A dead connection is the client's problem, not
                        // the daemon's.
                        let _ = serve_conn(
                            stream,
                            &txs,
                            &stop,
                            epoch,
                            &names,
                            &gauges,
                            idle_timeout,
                            block_bytes,
                            ring.as_deref(),
                        );
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: readers notice the flag within a poll interval and
        // exit, dropping their shard senders; once ours go too, each
        // shard's channel disconnects and it closes its books.
        for j in conn_joins {
            let _ = j.join();
        }
        drop(shard_txs);
        let shards = shard_joins
            .into_iter()
            .map(|j| j.join().expect("shard thread panicked"))
            .collect();
        let (final_capture, report) = finish_capture(capture, capture_ring)?;
        Ok(RunSummary {
            snapshot: ClusterSnapshot::new(policy, write_policy, shards)
                .with_capture(final_capture),
            connections,
            capture: report,
        })
    }
}

/// Tears down a running capture after every shard has joined: read the
/// final gauges, release the front-end's ring handle so the writer's
/// channel disconnects, and wait for the file to finalize.
fn finish_capture(
    capture: Option<Capture>,
    ring: Option<Arc<CaptureRing>>,
) -> std::io::Result<(Option<CaptureSnapshot>, Option<CaptureReport>)> {
    let Some(capture) = capture else {
        return Ok((None, None));
    };
    let snap = ring.as_ref().map(|r| r.snapshot());
    drop(ring);
    let report = capture.finish()?;
    Ok((snap, Some(report)))
}

/// Resolves the IO-thread count: explicit, or a quarter of the
/// available parallelism clamped to `[1, 8]` (shard threads want the
/// rest of the cores).
fn effective_io_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    (cores / 4).clamp(1, 8)
}

/// Everything one IO thread needs; moved into the thread at spawn.
struct IoThreadCtx {
    thread: usize,
    poller: Poller,
    waker: Arc<Waker>,
    all_wakers: Arc<Vec<Arc<Waker>>>,
    intake: Receiver<TcpStream>,
    shard_txs: Arc<Vec<QueueSender<ShardMsg>>>,
    busy_gauges: Arc<Vec<AtomicU64>>,
    io_gauges: Arc<Vec<IoGauges>>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    names: (String, String),
    idle_timeout: Duration,
    /// The engine's block size; sizes the per-connection frame cap and
    /// validates data-request payload lengths.
    block_bytes: usize,
    /// The live capture gauges, for `STATS` (`None` when not capturing).
    capture: Option<Arc<CaptureRing>>,
}

/// One multiplexed connection's slab slot.
struct Entry {
    conn: Conn,
    /// This entry's slab index (tokens are `gen << 32 | idx`).
    idx: usize,
    gen: u32,
    /// Batches submitted to shards whose replies have not yet been
    /// delivered to this connection; an EOF'd connection closes only
    /// once this reaches zero and the write queue drains, so nothing
    /// admitted goes unanswered.
    inflight: usize,
    /// Whether writable interest is currently armed.
    want_out: bool,
    /// Gauge contributions last folded into the shared atomics.
    accounted_wb: u64,
    accounted_buf: u64,
}

/// The per-IO-thread event loop state.
struct EventLoop {
    ctx: IoThreadCtx,
    hub_tx: Sender<(u64, Vec<u8>)>,
    hub_rx: Receiver<(u64, Vec<u8>)>,
    slab: Vec<Option<Entry>>,
    /// Current generation per slab index; bumped on close so stale
    /// poller events and deadline entries miss.
    gens: Vec<u32>,
    free: Vec<usize>,
    /// Lazy-deletion idle deadlines: `(deadline, token)`, min-first.
    deadlines: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    /// Per-shard scratch batches; always empty between connections.
    batches: Vec<Vec<IoReq>>,
    /// This thread's total outstanding shard batches (drain barrier).
    inflight: usize,
}

fn io_thread_main(ctx: IoThreadCtx) {
    let nshards = ctx.shard_txs.len();
    let (hub_tx, hub_rx) = channel();
    ctx.poller
        .register(ctx.waker.fd(), WAKER_TOKEN, Interest::Readable)
        .expect("register waker with poller");
    let mut lp = EventLoop {
        ctx,
        hub_tx,
        hub_rx,
        slab: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        deadlines: BinaryHeap::new(),
        batches: (0..nshards).map(|_| Vec::new()).collect(),
        inflight: 0,
    };
    let mut events: Vec<Event> = Vec::new();
    loop {
        lp.adopt_new_conns();
        lp.deliver_replies();
        lp.sweep_idle();
        if lp.ctx.stop.load(Ordering::Relaxed) {
            break;
        }
        events.clear();
        let timeout = lp.next_timeout_ms();
        if lp.ctx.poller.wait(&mut events, Some(timeout)).is_err() {
            break;
        }
        lp.gauges().wakeups.fetch_add(1, Ordering::Relaxed);
        for ev in &events {
            if ev.token == WAKER_TOKEN {
                lp.ctx.waker.drain();
            } else {
                lp.handle_conn_event(*ev);
            }
        }
    }
    lp.drain();
}

impl EventLoop {
    fn gauges(&self) -> &IoGauges {
        &self.ctx.io_gauges[self.ctx.thread]
    }

    fn token_of(&self, idx: usize) -> u64 {
        (u64::from(self.gens[idx]) << 32) | idx as u64
    }

    /// Folds a connection's gauge deltas into the shared atomics.
    /// Wrapping arithmetic makes concurrent deltas from sibling threads
    /// commute.
    fn settle(entry: &mut Entry, gauges: &IoGauges) {
        let wb = entry.conn.pending_write_bytes() as u64;
        let buf = entry.conn.buffer_bytes() as u64;
        gauges
            .writeback_bytes
            .fetch_add(wb.wrapping_sub(entry.accounted_wb), Ordering::Relaxed);
        gauges
            .buffer_bytes
            .fetch_add(buf.wrapping_sub(entry.accounted_buf), Ordering::Relaxed);
        entry.accounted_wb = wb;
        entry.accounted_buf = buf;
    }

    /// Adopts connections handed over by the accept loop.
    fn adopt_new_conns(&mut self) {
        use std::os::fd::AsRawFd;
        while let Ok(stream) = self.ctx.intake.try_recv() {
            let max_frame = protocol::max_request_frame(self.ctx.block_bytes);
            let Ok(conn) = Conn::new(stream, max_frame) else {
                continue; // Peer died between accept and adoption.
            };
            let idx = self.free.pop().unwrap_or_else(|| {
                self.slab.push(None);
                self.gens.push(0);
                self.slab.len() - 1
            });
            let token = self.token_of(idx);
            if self
                .ctx
                .poller
                .register(conn.stream().as_raw_fd(), token, Interest::Readable)
                .is_err()
            {
                self.free.push(idx);
                continue;
            }
            let mut entry = Entry {
                conn,
                idx,
                gen: self.gens[idx],
                inflight: 0,
                want_out: false,
                accounted_wb: 0,
                accounted_buf: 0,
            };
            Self::settle(&mut entry, &self.ctx.io_gauges[self.ctx.thread]);
            self.deadlines.push(std::cmp::Reverse((
                entry.conn.last_data + self.ctx.idle_timeout,
                token,
            )));
            self.slab[idx] = Some(entry);
            self.gauges().connections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Delivers shard replies queued on the hub to their connections.
    fn deliver_replies(&mut self) {
        while let Ok((token, bytes)) = self.hub_rx.try_recv() {
            self.inflight = self.inflight.saturating_sub(1);
            let (idx, gen) = split_token(token);
            let Some(mut entry) = self.take_entry(idx, gen) else {
                continue; // Connection closed while the batch was in flight.
            };
            entry.inflight = entry.inflight.saturating_sub(1);
            entry.conn.queue_write(bytes);
            self.finish_entry(idx, entry);
        }
    }

    /// Like [`deliver_replies`](Self::deliver_replies), but usable while
    /// `entry` is detached from the slab: replies for `entry` land on it
    /// directly, everyone else's go through the slab as usual.
    fn deliver_replies_for(&mut self, entry: &mut Entry) {
        while let Ok((token, bytes)) = self.hub_rx.try_recv() {
            self.inflight = self.inflight.saturating_sub(1);
            let (idx, gen) = split_token(token);
            if idx == entry.idx && gen == entry.gen {
                entry.inflight = entry.inflight.saturating_sub(1);
                entry.conn.queue_write(bytes);
            } else if let Some(mut other) = self.take_entry(idx, gen) {
                other.inflight = other.inflight.saturating_sub(1);
                other.conn.queue_write(bytes);
                self.finish_entry(idx, other);
            }
        }
    }

    /// Pops due idle deadlines; reinserts entries whose connection
    /// spoke since the deadline was scheduled (lazy deletion).
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        while let Some(&std::cmp::Reverse((at, token))) = self.deadlines.peek() {
            if at > now {
                break;
            }
            self.deadlines.pop();
            let (idx, gen) = split_token(token);
            let Some(entry) = self.take_entry(idx, gen) else {
                continue; // Stale: the connection is already gone.
            };
            let fresh = entry.conn.last_data + self.ctx.idle_timeout;
            if fresh <= now {
                self.close_entry(idx, entry);
            } else {
                self.deadlines.push(std::cmp::Reverse((fresh, token)));
                self.slab[idx] = Some(entry);
            }
        }
    }

    /// Milliseconds until the next idle deadline, capped at the
    /// stop-flag check interval.
    fn next_timeout_ms(&self) -> u32 {
        let cap = POLL_INTERVAL.as_millis() as u32;
        match self.deadlines.peek() {
            Some(&std::cmp::Reverse((at, _))) => {
                let until = at.saturating_duration_since(Instant::now());
                (until.as_millis() as u32).min(cap)
            }
            None => cap,
        }
    }

    /// Removes the entry for `idx` if the generation matches; the
    /// caller must put it back via [`finish_entry`](Self::finish_entry)
    /// or close it.
    fn take_entry(&mut self, idx: usize, gen: u32) -> Option<Entry> {
        if idx >= self.slab.len() || self.gens[idx] != gen {
            return None;
        }
        self.slab[idx].take()
    }

    /// One poller event for a connection token.
    fn handle_conn_event(&mut self, ev: Event) {
        let (idx, gen) = split_token(ev.token);
        let Some(mut entry) = self.take_entry(idx, gen) else {
            return; // Stale event for a closed connection.
        };
        if ev.error {
            self.close_entry(idx, entry);
            return;
        }
        if ev.writable && entry.conn.wants_write() && entry.conn.flush().is_err() {
            self.close_entry(idx, entry);
            return;
        }
        if ev.readable && !self.read_and_serve(&mut entry) {
            // Protocol error or dead socket: nothing to salvage, and —
            // matching the legacy front-end — decoded-but-unsubmitted
            // requests from the poisoned stream are dropped, not
            // bounced.
            for b in &mut self.batches {
                b.clear();
            }
            self.close_entry(idx, entry);
            return;
        }
        self.finish_entry(idx, entry);
    }

    /// Re-arms interest, settles gauges, and either parks the entry
    /// back in the slab or closes it if it finished draining.
    fn finish_entry(&mut self, idx: usize, mut entry: Entry) {
        use std::os::fd::AsRawFd;
        // Flush whatever got queued this round; EPOLLOUT handles the rest.
        if entry.conn.wants_write() && entry.conn.flush().is_err() {
            self.close_entry(idx, entry);
            return;
        }
        if entry.conn.closing && !entry.conn.wants_write() && entry.inflight == 0 {
            self.close_entry(idx, entry);
            return;
        }
        let want_out = entry.conn.wants_write();
        if want_out != entry.want_out {
            let interest = if want_out {
                Interest::Both
            } else {
                Interest::Readable
            };
            let token = self.token_of(idx);
            if self
                .ctx
                .poller
                .modify(entry.conn.stream().as_raw_fd(), token, interest)
                .is_err()
            {
                self.close_entry(idx, entry);
                return;
            }
            entry.want_out = want_out;
        }
        Self::settle(&mut entry, &self.ctx.io_gauges[self.ctx.thread]);
        self.slab[idx] = Some(entry);
    }

    /// Drains the socket, decodes every complete frame, batches I/O
    /// per shard, and submits the batches through bounded admission.
    /// Returns `false` if the connection must close immediately.
    fn read_and_serve(&mut self, entry: &mut Entry) -> bool {
        match entry.conn.fill() {
            Ok(FillOutcome::Open(_)) => {}
            Ok(FillOutcome::Eof(_)) => entry.conn.closing = true,
            Err(_) => return false,
        }
        let at_us = self.ctx.epoch.elapsed().as_micros() as u64;
        let nshards = self.ctx.shard_txs.len();
        let mut decoded = 0u64;
        let mut ok = true;
        loop {
            match entry.conn.next_request() {
                Ok(Some(Request::Io {
                    seq,
                    write,
                    disk,
                    block,
                    blocks,
                })) => {
                    decoded += 1;
                    let s = shard_of(DiskId::new(disk), BlockNo::new(block), nshards);
                    self.batches[s].push(IoReq {
                        seq,
                        at_us,
                        disk,
                        block,
                        blocks: u64::from(blocks),
                        write,
                        payload: None,
                    });
                    if self.batches[s].len() >= BATCH_LIMIT {
                        self.submit_shard(s, entry);
                    }
                }
                Ok(Some(Request::IoData {
                    seq,
                    write,
                    disk,
                    block,
                    blocks,
                    payload,
                })) => {
                    decoded += 1;
                    if !valid_data_request(write, blocks, &payload, self.ctx.block_bytes) {
                        ok = false;
                        break;
                    }
                    let s = shard_of(DiskId::new(disk), BlockNo::new(block), nshards);
                    self.batches[s].push(IoReq {
                        seq,
                        at_us,
                        disk,
                        block,
                        blocks: u64::from(blocks),
                        write,
                        payload: Some(payload),
                    });
                    if self.batches[s].len() >= BATCH_LIMIT {
                        self.submit_shard(s, entry);
                    }
                }
                Ok(Some(Request::Stats { seq })) => {
                    decoded += 1;
                    self.submit_all(entry);
                    self.gauges().frames.fetch_add(decoded, Ordering::Relaxed);
                    decoded = 0;
                    let json = collect_stats(
                        &self.ctx.shard_txs,
                        &self.ctx.names,
                        &self.ctx.io_gauges,
                        self.ctx.capture.as_deref(),
                    );
                    // Shards answer Stats *after* the batches queued ahead
                    // of it (FIFO), so every IO reply that must precede
                    // this snapshot is already on the hub: deliver them
                    // first to keep the legacy front-end's reply order.
                    self.deliver_replies_for(entry);
                    let mut out = Vec::with_capacity(json.len() + 16);
                    protocol::encode_response(&Response::Stats { seq, json }, &mut out);
                    entry.conn.queue_write(out);
                }
                Ok(Some(Request::Shutdown { seq })) => {
                    decoded += 1;
                    self.submit_all(entry);
                    let mut out = Vec::new();
                    protocol::encode_response(&Response::Shutdown { seq }, &mut out);
                    entry.conn.queue_write(out);
                    self.ctx.stop.store(true, Ordering::Relaxed);
                    for w in self.ctx.all_wakers.iter() {
                        w.wake();
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        self.gauges().frames.fetch_add(decoded, Ordering::Relaxed);
        if ok {
            self.submit_all(entry);
        }
        ok
    }

    fn submit_all(&mut self, entry: &mut Entry) {
        for s in 0..self.batches.len() {
            self.submit_shard(s, entry);
        }
    }

    /// Pushes one shard's pending batch through bounded admission: one
    /// `try_reserve` covers the batch, the granted prefix rides to the
    /// shard with this connection's reply token, and the remainder is
    /// answered `BUSY` straight into the connection's write queue —
    /// exactly once per request, never both.
    fn submit_shard(&mut self, s: usize, entry: &mut Entry) {
        let batch = &mut self.batches[s];
        if batch.is_empty() {
            return;
        }
        let tx = &self.ctx.shard_txs[s];
        let token = (u64::from(entry.gen) << 32) | entry.idx as u64;
        match tx.try_reserve(batch.len()) {
            Ok(granted) => {
                let rejected = batch.split_off(granted);
                tx.push_reserved(
                    ShardMsg::Io {
                        reply: ReplySink::Event {
                            hub: self.hub_tx.clone(),
                            token,
                            waker: Arc::clone(&self.ctx.waker),
                        },
                        batch: std::mem::take(batch),
                    },
                    granted,
                );
                entry.inflight += 1;
                self.inflight += 1;
                if !rejected.is_empty() {
                    bounce_into_conn(&rejected, tx.depth(), entry, &self.ctx.busy_gauges[s]);
                }
            }
            Err(TryPushError::Full { depth }) => {
                bounce_into_conn(batch, depth, entry, &self.ctx.busy_gauges[s]);
                batch.clear();
            }
            Err(TryPushError::Closed) => {
                // Mid-shutdown: the shard is gone, but every accepted
                // request still gets exactly one answer.
                bounce_into_conn(batch, 0, entry, &self.ctx.busy_gauges[s]);
                batch.clear();
            }
        }
    }

    /// Tears a connection down: bumps the generation so stale events
    /// and deadlines miss, returns its gauge contributions, frees the
    /// slot.
    fn close_entry(&mut self, idx: usize, mut entry: Entry) {
        let gauges = &self.ctx.io_gauges[self.ctx.thread];
        gauges
            .writeback_bytes
            .fetch_add(0u64.wrapping_sub(entry.accounted_wb), Ordering::Relaxed);
        gauges
            .buffer_bytes
            .fetch_add(0u64.wrapping_sub(entry.accounted_buf), Ordering::Relaxed);
        entry.accounted_wb = 0;
        entry.accounted_buf = 0;
        {
            use std::os::fd::AsRawFd;
            let _ = self.ctx.poller.deregister(entry.conn.stream().as_raw_fd());
        }
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.gauges().connections.fetch_sub(1, Ordering::Relaxed);
        drop(entry);
        self.slab[idx] = None;
    }

    /// Post-stop drain: deliver outstanding shard replies (bounded by
    /// [`DRAIN_GRACE`]), then push remaining write queues out with
    /// bounded blocking writes so acks and late replies still land.
    fn drain(mut self) {
        let deadline = Instant::now() + DRAIN_GRACE;
        while self.inflight > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self
                .hub_rx
                .recv_timeout(left.min(Duration::from_millis(50)))
            {
                Ok((token, bytes)) => {
                    self.inflight -= 1;
                    let (idx, gen) = split_token(token);
                    if let Some(mut entry) = self.take_entry(idx, gen) {
                        entry.inflight = entry.inflight.saturating_sub(1);
                        entry.conn.queue_write(bytes);
                        self.slab[idx] = Some(entry);
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        for entry in self.slab.iter_mut().flatten() {
            if entry.conn.wants_write() {
                let stream = entry.conn.stream();
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = entry.conn.flush();
            }
        }
    }
}

/// Splits a slab token into `(index, generation)`.
fn split_token(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// Answers `reqs` with `BUSY` frames straight into the connection's
/// write queue (event path).
fn bounce_into_conn(reqs: &[IoReq], depth: usize, entry: &mut Entry, busy_gauge: &AtomicU64) {
    let mut out = Vec::with_capacity(reqs.len() * 13);
    let depth = u32::try_from(depth).unwrap_or(u32::MAX);
    for r in reqs {
        protocol::encode_response(&Response::Busy { seq: r.seq, depth }, &mut out);
    }
    busy_gauge.fetch_add(reqs.len() as u64, Ordering::Relaxed);
    entry.conn.queue_write(out);
}

/// A shard thread: apply batches in arrival order until every sender is
/// gone, then close the books.
///
/// `delay_us` is the fault-injected per-request service delay (0 for a
/// healthy shard); `busy` is this shard's reject counter, incremented by
/// the connection front-end and folded into every snapshot here.
fn shard_main(
    mut engine: ShardEngine,
    rx: &QueueReceiver<ShardMsg>,
    busy: &AtomicU64,
    delay_us: u64,
    capture: Option<&CaptureRing>,
) -> ShardSnapshot {
    let delay = (delay_us > 0).then(|| Duration::from_micros(delay_us));
    while let Some(msg) = rx.pop() {
        match msg {
            ShardMsg::Io { reply, batch } => {
                let mut out = Vec::with_capacity(batch.len() * 14);
                for r in &batch {
                    if let Some(d) = delay {
                        std::thread::sleep(d);
                    }
                    if let Some(cap) = capture {
                        // Non-blocking by construction: a full ring
                        // drops and counts instead of stalling the
                        // shard's request loop.
                        cap.record(r.at_us, r.disk, r.block, r.blocks, r.write);
                    }
                    let outcome = engine.ingest(
                        SimTime::from_micros(r.at_us),
                        r.disk,
                        r.block,
                        r.blocks,
                        r.write,
                    );
                    let response_us =
                        u32::try_from(outcome.response.as_micros()).unwrap_or(u32::MAX);
                    match &r.payload {
                        // Metadata requests and WRITE_DATA acks share the
                        // compact IO frame; the written bytes stay server-side.
                        None => protocol::encode_response(
                            &Response::Io {
                                seq: r.seq,
                                hit: outcome.hit,
                                response_us,
                            },
                            &mut out,
                        ),
                        Some(bytes) if r.write => {
                            engine.write_payload(r.disk, r.block, r.blocks, bytes);
                            protocol::encode_response(
                                &Response::Io {
                                    seq: r.seq,
                                    hit: outcome.hit,
                                    response_us,
                                },
                                &mut out,
                            );
                        }
                        Some(_) => {
                            // READ_DATA: encode the header optimistically,
                            // then let the store append verified slab bytes
                            // straight after it (copy-once). On a checksum
                            // failure the store already refilled the frame;
                            // roll the reply back to a CORRUPT frame.
                            let total = r.blocks.max(1) as usize * engine.block_bytes();
                            let frame_start = out.len();
                            protocol::encode_data_header(
                                r.seq,
                                outcome.hit,
                                response_us,
                                total,
                                &mut out,
                            );
                            if !engine.read_payload_into(r.disk, r.block, r.blocks, &mut out) {
                                out.truncate(frame_start);
                                protocol::encode_response(
                                    &Response::Corrupt { seq: r.seq },
                                    &mut out,
                                );
                            }
                        }
                    }
                }
                reply.send(out);
            }
            ShardMsg::Stats { reply } => {
                let mut snap = engine.snapshot();
                snap.busy_rejects = busy.load(Ordering::Relaxed);
                snap.queue_depth = rx.depth() as u64;
                snap.queue_high_water = rx.high_water();
                let _ = reply.send(snap);
            }
        }
    }
    let mut snap = engine.into_snapshot();
    snap.busy_rejects = busy.load(Ordering::Relaxed);
    snap.queue_high_water = rx.high_water();
    snap
}

/// A legacy connection's reader loop; spawns the paired writer thread.
#[allow(clippy::too_many_arguments)]
fn serve_conn(
    stream: TcpStream,
    shard_txs: &[QueueSender<ShardMsg>],
    stop: &AtomicBool,
    epoch: Instant,
    names: &(String, String),
    busy_gauges: &[AtomicU64],
    idle_timeout: Duration,
    block_bytes: usize,
    capture: Option<&CaptureRing>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let write_half = stream.try_clone()?;
    let (writer_tx, writer_rx) = channel();
    let writer = std::thread::spawn(move || writer_main(write_half, &writer_rx));

    let result = read_loop(
        stream,
        shard_txs,
        stop,
        epoch,
        names,
        &writer_tx,
        busy_gauges,
        idle_timeout,
        block_bytes,
        capture,
    );
    let _ = writer_tx.send(WriterMsg::Close);
    drop(writer_tx);
    let _ = writer.join();
    result
}

#[allow(clippy::too_many_arguments)]
fn read_loop(
    mut stream: TcpStream,
    shard_txs: &[QueueSender<ShardMsg>],
    stop: &AtomicBool,
    epoch: Instant,
    names: &(String, String),
    writer_tx: &Sender<WriterMsg>,
    busy_gauges: &[AtomicU64],
    idle_timeout: Duration,
    block_bytes: usize,
    capture: Option<&CaptureRing>,
) -> std::io::Result<()> {
    let nshards = shard_txs.len();
    let mut fb = FrameBuf::new().with_max_frame(protocol::max_request_frame(block_bytes));
    let mut batches: Vec<Vec<IoReq>> = (0..nshards).map(|_| Vec::new()).collect();
    let mut last_data = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match fb.read_from(&mut stream) {
            Ok(0) => return Ok(()), // EOF: client is done.
            Ok(_) => last_data = Instant::now(),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_data.elapsed() >= idle_timeout {
                    // A silent peer must not pin this thread forever.
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        // Every request in this chunk carries the same arrival stamp —
        // one clock read per socket read, not per request.
        let at_us = epoch.elapsed().as_micros() as u64;
        loop {
            match fb.next_request() {
                Ok(Some(Request::Io {
                    seq,
                    write,
                    disk,
                    block,
                    blocks,
                })) => {
                    let s = shard_of(DiskId::new(disk), BlockNo::new(block), nshards);
                    batches[s].push(IoReq {
                        seq,
                        at_us,
                        disk,
                        block,
                        blocks: u64::from(blocks),
                        write,
                        payload: None,
                    });
                    if batches[s].len() >= BATCH_LIMIT {
                        flush(&mut batches[s], &shard_txs[s], writer_tx, &busy_gauges[s]);
                    }
                }
                Ok(Some(Request::IoData {
                    seq,
                    write,
                    disk,
                    block,
                    blocks,
                    payload,
                })) => {
                    if !valid_data_request(write, blocks, &payload, block_bytes) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "data request violates the block-size contract",
                        ));
                    }
                    let s = shard_of(DiskId::new(disk), BlockNo::new(block), nshards);
                    batches[s].push(IoReq {
                        seq,
                        at_us,
                        disk,
                        block,
                        blocks: u64::from(blocks),
                        write,
                        payload: Some(payload),
                    });
                    if batches[s].len() >= BATCH_LIMIT {
                        flush(&mut batches[s], &shard_txs[s], writer_tx, &busy_gauges[s]);
                    }
                }
                Ok(Some(Request::Stats { seq })) => {
                    flush_all(&mut batches, shard_txs, writer_tx, busy_gauges);
                    let json = collect_stats(shard_txs, names, &[], capture);
                    let mut out = Vec::with_capacity(json.len() + 16);
                    protocol::encode_response(&Response::Stats { seq, json }, &mut out);
                    let _ = writer_tx.send(WriterMsg::Bytes(out));
                }
                Ok(Some(Request::Shutdown { seq })) => {
                    flush_all(&mut batches, shard_txs, writer_tx, busy_gauges);
                    let mut out = Vec::new();
                    protocol::encode_response(&Response::Shutdown { seq }, &mut out);
                    let _ = writer_tx.send(WriterMsg::Bytes(out));
                    stop.store(true, Ordering::Relaxed);
                    return Ok(());
                }
                Ok(None) => break,
                Err(e) => {
                    // Unframeable stream: nothing to salvage.
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
        }
        flush_all(&mut batches, shard_txs, writer_tx, busy_gauges);
    }
}

/// Pushes a legacy connection's pending batch through the shard's
/// bounded admission queue. Whatever does not fit is answered with
/// `BUSY` frames carrying the queue depth — requests are never silently
/// dropped and never buffered beyond the bound.
fn flush(
    batch: &mut Vec<IoReq>,
    tx: &QueueSender<ShardMsg>,
    writer_tx: &Sender<WriterMsg>,
    busy_gauge: &AtomicU64,
) {
    if batch.is_empty() {
        return;
    }
    match tx.try_reserve(batch.len()) {
        Ok(granted) => {
            let rejected = batch.split_off(granted);
            tx.push_reserved(
                ShardMsg::Io {
                    reply: ReplySink::Thread(writer_tx.clone()),
                    batch: std::mem::take(batch),
                },
                granted,
            );
            if !rejected.is_empty() {
                bounce(&rejected, tx.depth(), writer_tx, busy_gauge);
            }
        }
        Err(TryPushError::Full { depth }) => {
            bounce(batch, depth, writer_tx, busy_gauge);
            batch.clear();
        }
        Err(TryPushError::Closed) => {
            // Mid-shutdown: the shard is gone, but every accepted
            // request still gets exactly one answer.
            bounce(batch, 0, writer_tx, busy_gauge);
            batch.clear();
        }
    }
}

/// Answers `reqs` with `BUSY` frames reporting `depth` (legacy path).
fn bounce(reqs: &[IoReq], depth: usize, writer_tx: &Sender<WriterMsg>, busy_gauge: &AtomicU64) {
    let mut out = Vec::with_capacity(reqs.len() * 13);
    let depth = u32::try_from(depth).unwrap_or(u32::MAX);
    for r in reqs {
        protocol::encode_response(&Response::Busy { seq: r.seq, depth }, &mut out);
    }
    busy_gauge.fetch_add(reqs.len() as u64, Ordering::Relaxed);
    let _ = writer_tx.send(WriterMsg::Bytes(out));
}

fn flush_all(
    batches: &mut [Vec<IoReq>],
    shard_txs: &[QueueSender<ShardMsg>],
    writer_tx: &Sender<WriterMsg>,
    busy_gauges: &[AtomicU64],
) {
    for ((batch, tx), gauge) in batches.iter_mut().zip(shard_txs).zip(busy_gauges) {
        flush(batch, tx, writer_tx, gauge);
    }
}

/// Gathers a live snapshot from every shard and renders the JSON,
/// attaching IO-thread gauges when the event-loop front-end is serving
/// (`io_gauges` empty on the legacy path keeps the bytes identical to
/// pre-event-loop output).
fn collect_stats(
    shard_txs: &[QueueSender<ShardMsg>],
    names: &(String, String),
    io_gauges: &[IoGauges],
    capture: Option<&CaptureRing>,
) -> String {
    let (tx, rx) = channel();
    for s in shard_txs {
        s.push_control(ShardMsg::Stats { reply: tx.clone() });
    }
    drop(tx);
    let snaps: Vec<ShardSnapshot> = rx.iter().collect();
    let snaps = if snaps.len() == shard_txs.len() {
        snaps
    } else {
        // Mid-shutdown race: report what answered rather than nothing.
        let mut dense: Vec<ShardSnapshot> =
            (0..shard_txs.len()).map(ShardSnapshot::empty).collect();
        for s in snaps {
            let at = s.shard;
            dense[at] = s;
        }
        dense
    };
    ClusterSnapshot::new(names.0.clone(), names.1.clone(), snaps)
        .with_io(io_snapshots(io_gauges))
        .with_capture(capture.map(CaptureRing::snapshot))
        .to_json()
}

fn writer_main(mut stream: TcpStream, rx: &Receiver<WriterMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Bytes(bytes) => {
                if stream.write_all(&bytes).is_err() {
                    return; // Peer went away; reader will notice too.
                }
            }
            WriterMsg::Close => break,
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request, FrameBuf, Request, Response};
    use crate::stats::parse_stats_json;
    use std::io::Read;

    fn read_response(stream: &mut TcpStream, fb: &mut FrameBuf) -> Response {
        loop {
            if let Some(resp) = fb.next_response().unwrap() {
                return resp;
            }
            assert!(fb.read_from(stream).unwrap() > 0, "server closed early");
        }
    }

    fn io_stats_shutdown_roundtrip(engine: EngineConfig) {
        let expect_io = !engine.legacy_threads && cfg!(target_os = "linux");
        let server = Server::bind("127.0.0.1:0", engine).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        // Miss then hit on the same block.
        for seq in 0..2u32 {
            encode_request(
                &Request::Io {
                    seq,
                    write: false,
                    disk: 1,
                    block: 77,
                    blocks: 1,
                },
                &mut wire,
            );
        }
        encode_request(&Request::Stats { seq: 2 }, &mut wire);
        stream.write_all(&wire).unwrap();

        let mut hits = Vec::new();
        for want_seq in 0..2u32 {
            match read_response(&mut stream, &mut fb) {
                Response::Io { seq, hit, .. } => {
                    assert_eq!(seq, want_seq);
                    hits.push(hit);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(hits, vec![false, true]);

        match read_response(&mut stream, &mut fb) {
            Response::Stats { seq, json } => {
                assert_eq!(seq, 2);
                let summary = parse_stats_json(&json).expect("stats must parse");
                assert_eq!(summary.requests, 2);
                assert_eq!(summary.hits, 1);
                assert_eq!(summary.shard_energy_j.len(), 2);
                if expect_io {
                    assert_eq!(
                        summary.io_connections, 1,
                        "the event loop must report its one connection"
                    );
                } else {
                    assert_eq!(summary.io_connections, 0);
                }
            }
            other => panic!("unexpected response {other:?}"),
        }

        let mut wire = Vec::new();
        encode_request(&Request::Shutdown { seq: 3 }, &mut wire);
        stream.write_all(&wire).unwrap();
        assert_eq!(
            read_response(&mut stream, &mut fb),
            Response::Shutdown { seq: 3 }
        );

        let summary = handle.join().unwrap();
        assert_eq!(summary.snapshot.total_requests(), 2);
        assert_eq!(summary.connections, 1);
    }

    #[test]
    fn serves_io_stats_and_shutdown_over_loopback() {
        io_stats_shutdown_roundtrip(EngineConfig::new(2, 4));
    }

    #[test]
    fn legacy_front_end_serves_the_same_protocol() {
        io_stats_shutdown_roundtrip(EngineConfig::new(2, 4).with_legacy_threads(true));
    }

    #[test]
    fn stop_flag_drains_an_idle_server() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(1, 1)).unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());
        stop.store(true, Ordering::Relaxed);
        let summary = handle.join().unwrap();
        assert_eq!(summary.snapshot.total_requests(), 0);
        assert_eq!(summary.connections, 0);
    }

    fn idle_sweep_closes_silent_but_not_active(engine: EngineConfig) {
        let server = Server::bind("127.0.0.1:0", engine)
            .unwrap()
            .with_idle_timeout(Duration::from_millis(150));
        let addr = server.local_addr().unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // An active connection opened *before* the silent one: it must
        // survive the sweep that reaps its silent sibling.
        let mut good = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 1 }, &mut wire);
        good.write_all(&wire).unwrap();
        assert!(matches!(
            read_response(&mut good, &mut fb),
            Response::Stats { seq: 1, .. }
        ));

        // Connect, send nothing: the sweep must hang up on us instead
        // of holding per-connection state until we bother to speak.
        // Meanwhile `good` keeps talking, so the same sweep must leave
        // it alone.
        let mut silent = TcpStream::connect(addr).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let started = Instant::now();
        let mut seq = 2u32;
        loop {
            assert!(
                started.elapsed() < Duration::from_secs(4),
                "disconnect must come from the idle sweep, not this loop's patience"
            );
            let mut wire = Vec::new();
            encode_request(&Request::Stats { seq }, &mut wire);
            good.write_all(&wire).unwrap();
            assert!(
                matches!(read_response(&mut good, &mut fb), Response::Stats { .. }),
                "the active connection must survive the sweep"
            );
            seq += 1;
            let mut buf = [0u8; 8];
            match silent.read(&mut buf) {
                Ok(0) => break, // Swept: exactly what we want.
                Ok(_) => panic!("the silent connection got data from nowhere"),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => break, // A reset counts as closed too.
            }
        }

        // And `good` is still fully functional afterwards.
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq }, &mut wire);
        good.write_all(&wire).unwrap();
        assert!(matches!(
            read_response(&mut good, &mut fb),
            Response::Stats { .. }
        ));

        stop.store(true, Ordering::Relaxed);
        drop(good);
        handle.join().unwrap();
    }

    #[test]
    fn idle_connections_are_disconnected() {
        idle_sweep_closes_silent_but_not_active(EngineConfig::new(1, 1));
    }

    #[test]
    fn idle_sweep_works_on_the_legacy_path_too() {
        idle_sweep_closes_silent_but_not_active(EngineConfig::new(1, 1).with_legacy_threads(true));
    }

    #[test]
    fn garbage_input_kills_only_that_connection() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(1, 1)).unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // A frame with a zero length prefix is unrecoverable.
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&[0u8; 8]).unwrap();
        let mut buf = [0u8; 16];
        // Server closes the connection: read returns 0 (or a reset).
        let n = bad.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "bad connection must be closed without a response");

        // A fresh, well-behaved connection still works.
        let mut good = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 9 }, &mut wire);
        good.write_all(&wire).unwrap();
        assert!(matches!(
            read_response(&mut good, &mut fb),
            Response::Stats { seq: 9, .. }
        ));

        stop.store(true, Ordering::Relaxed);
        drop(good);
        handle.join().unwrap();
    }

    #[test]
    fn oversized_request_frames_poison_only_the_offender() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(1, 1)).unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // A frame claiming 1 MiB: legal for the *protocol* but larger
        // than any request, so the server-side cap must kill the
        // connection at the prefix instead of buffering a megabyte.
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&(1024u32 * 1024).to_le_bytes()).unwrap();
        let mut buf = [0u8; 16];
        let n = bad.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "oversized frame must close the connection");

        let mut good = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 4 }, &mut wire);
        good.write_all(&wire).unwrap();
        assert!(matches!(
            read_response(&mut good, &mut fb),
            Response::Stats { seq: 4, .. }
        ));

        stop.store(true, Ordering::Relaxed);
        drop(good);
        handle.join().unwrap();
    }
}
