//! The TCP daemon: thread-per-shard engines behind a frame-parsing
//! connection layer.
//!
//! ```text
//! conn reader ──batch──▶ shard 0 thread ──resp bytes──▶ conn writer
//!      │    └──batch──▶ shard 1 thread ──────┘              │
//!   TcpStream (read half)                          TcpStream (write half)
//! ```
//!
//! Each connection gets a reader thread (parses frames, groups requests
//! into per-shard batches) and a writer thread (serializes response
//! bytes back). Each shard thread owns its [`ShardEngine`] outright —
//! no locks anywhere on the request path; coordination is message
//! passing throughout.
//!
//! Admission is **bounded**: each shard consumes work through a
//! [`queue`] holding at most [`EngineConfig::queue_bound`]
//! requests. A reader whose batch does not fit answers the overflow
//! with `BUSY` frames (carrying the shard's queue depth) instead of
//! buffering, so overload pushes back on clients rather than silently
//! reshaping the request stream a shard sees — the stream's shape is
//! what decides the exploitable idle periods, so it must not be
//! laundered through an elastic queue. Readers also enforce an idle
//! timeout: a peer that stays silent too long is disconnected rather
//! than pinning a thread forever.
//!
//! Shutdown (SIGTERM bridge or the `SHUTDOWN` opcode) sets one atomic
//! flag: the accept loop stops, readers drain their parse buffers and
//! exit, shard channels disconnect, and every shard closes its energy
//! books and hands back a final [`ShardSnapshot`] for the closing
//! report.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_units::SimTime;

use crate::protocol::{self, FrameBuf, Request, Response};
use crate::queue::{self, QueueReceiver, QueueSender, TryPushError};
use crate::shard::{shard_of, EngineConfig, ShardEngine};
use crate::stats::{ClusterSnapshot, ShardSnapshot};
use pc_units::{BlockNo, DiskId};

/// Flush a connection's pending batch to its shard once it holds this
/// many requests, even if more input is buffered.
const BATCH_LIMIT: usize = 1024;

/// How often blocked readers / the accept loop re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Default per-connection idle timeout: a peer that sends no bytes for
/// this long is disconnected so it cannot pin a reader thread forever.
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// One request routed to a shard.
struct IoReq {
    seq: u32,
    at_us: u64,
    disk: u32,
    block: u64,
    blocks: u64,
    write: bool,
}

/// Work sent to a shard thread.
enum ShardMsg {
    /// A batch of requests from one connection; encoded responses go
    /// back through `reply`.
    Io {
        reply: Sender<WriterMsg>,
        batch: Vec<IoReq>,
    },
    /// A snapshot request; the live snapshot goes back through `reply`.
    Stats { reply: Sender<ShardSnapshot> },
}

/// Bytes for a connection's writer thread.
enum WriterMsg {
    Bytes(Vec<u8>),
    Close,
}

/// The daemon: bind, then [`run`](Self::run) until stopped.
pub struct Server {
    listener: TcpListener,
    engine: EngineConfig,
    stop: Arc<AtomicBool>,
    idle_timeout: Duration,
}

/// What a completed run hands back for the closing report.
#[derive(Debug)]
pub struct RunSummary {
    /// Final cluster snapshot with closed energy books.
    pub snapshot: ClusterSnapshot,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

impl Server {
    /// Binds the listener. The engine is not built until [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, engine: EngineConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
            idle_timeout: IDLE_TIMEOUT,
        })
    }

    /// Overrides the per-connection idle timeout (default 60 s): a peer
    /// that sends no bytes for this long is disconnected.
    #[must_use]
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `local_addr` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The stop flag: store `true` (from a signal bridge, a test, or
    /// the `SHUTDOWN` opcode path) to trigger a graceful drain.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves until the stop flag is set, then drains and returns the
    /// final snapshot.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors just
    /// close that connection.
    ///
    /// # Panics
    ///
    /// Panics if a shard thread panicked (its engine is poisoned beyond
    /// reporting).
    pub fn run(self) -> std::io::Result<RunSummary> {
        let policy = self.engine.policy.name();
        let write_policy = self.engine.sim.write_policy.name().to_owned();
        let epoch = Instant::now();

        let busy_gauges: Arc<Vec<AtomicU64>> =
            Arc::new((0..self.engine.shards).map(|_| AtomicU64::new(0)).collect());
        let mut shard_txs = Vec::with_capacity(self.engine.shards);
        let mut shard_joins = Vec::with_capacity(self.engine.shards);
        for id in 0..self.engine.shards {
            let engine = ShardEngine::new(id, &self.engine);
            let (tx, rx) = queue::bounded(self.engine.queue_bound);
            shard_txs.push(tx);
            let gauges = Arc::clone(&busy_gauges);
            let delay_us = self.engine.slow_delay_micros(id);
            shard_joins.push(std::thread::spawn(move || {
                shard_main(engine, &rx, &gauges[id], delay_us)
            }));
        }
        let shard_txs = Arc::new(shard_txs);

        self.listener.set_nonblocking(true)?;
        let mut connections = 0u64;
        let mut conn_joins = Vec::new();
        while !self.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let txs = Arc::clone(&shard_txs);
                    let stop = Arc::clone(&self.stop);
                    let gauges = Arc::clone(&busy_gauges);
                    let names = (policy.clone(), write_policy.clone());
                    let idle_timeout = self.idle_timeout;
                    conn_joins.push(std::thread::spawn(move || {
                        // A dead connection is the client's problem, not
                        // the daemon's.
                        let _ =
                            serve_conn(stream, &txs, &stop, epoch, &names, &gauges, idle_timeout);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: readers notice the flag within a poll interval and
        // exit, dropping their shard senders; once ours go too, each
        // shard's channel disconnects and it closes its books.
        for j in conn_joins {
            let _ = j.join();
        }
        drop(shard_txs);
        let shards = shard_joins
            .into_iter()
            .map(|j| j.join().expect("shard thread panicked"))
            .collect();
        Ok(RunSummary {
            snapshot: ClusterSnapshot::new(policy, write_policy, shards),
            connections,
        })
    }
}

/// A shard thread: apply batches in arrival order until every sender is
/// gone, then close the books.
///
/// `delay_us` is the fault-injected per-request service delay (0 for a
/// healthy shard); `busy` is this shard's reject counter, incremented by
/// the connection readers and folded into every snapshot here.
fn shard_main(
    mut engine: ShardEngine,
    rx: &QueueReceiver<ShardMsg>,
    busy: &AtomicU64,
    delay_us: u64,
) -> ShardSnapshot {
    let delay = (delay_us > 0).then(|| Duration::from_micros(delay_us));
    while let Some(msg) = rx.pop() {
        match msg {
            ShardMsg::Io { reply, batch } => {
                let mut out = Vec::with_capacity(batch.len() * 14);
                for r in &batch {
                    if let Some(d) = delay {
                        std::thread::sleep(d);
                    }
                    let outcome = engine.ingest(
                        SimTime::from_micros(r.at_us),
                        r.disk,
                        r.block,
                        r.blocks,
                        r.write,
                    );
                    let response_us =
                        u32::try_from(outcome.response.as_micros()).unwrap_or(u32::MAX);
                    protocol::encode_response(
                        &Response::Io {
                            seq: r.seq,
                            hit: outcome.hit,
                            response_us,
                        },
                        &mut out,
                    );
                }
                // The writer may already be gone mid-shutdown.
                let _ = reply.send(WriterMsg::Bytes(out));
            }
            ShardMsg::Stats { reply } => {
                let mut snap = engine.snapshot();
                snap.busy_rejects = busy.load(Ordering::Relaxed);
                snap.queue_depth = rx.depth() as u64;
                snap.queue_high_water = rx.high_water();
                let _ = reply.send(snap);
            }
        }
    }
    let mut snap = engine.into_snapshot();
    snap.busy_rejects = busy.load(Ordering::Relaxed);
    snap.queue_high_water = rx.high_water();
    snap
}

/// A connection's reader loop; spawns the paired writer thread.
fn serve_conn(
    stream: TcpStream,
    shard_txs: &[QueueSender<ShardMsg>],
    stop: &AtomicBool,
    epoch: Instant,
    names: &(String, String),
    busy_gauges: &[AtomicU64],
    idle_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let write_half = stream.try_clone()?;
    let (writer_tx, writer_rx) = channel();
    let writer = std::thread::spawn(move || writer_main(write_half, &writer_rx));

    let result = read_loop(
        stream,
        shard_txs,
        stop,
        epoch,
        names,
        &writer_tx,
        busy_gauges,
        idle_timeout,
    );
    let _ = writer_tx.send(WriterMsg::Close);
    drop(writer_tx);
    let _ = writer.join();
    result
}

#[allow(clippy::too_many_arguments)]
fn read_loop(
    mut stream: TcpStream,
    shard_txs: &[QueueSender<ShardMsg>],
    stop: &AtomicBool,
    epoch: Instant,
    names: &(String, String),
    writer_tx: &Sender<WriterMsg>,
    busy_gauges: &[AtomicU64],
    idle_timeout: Duration,
) -> std::io::Result<()> {
    let nshards = shard_txs.len();
    let mut fb = FrameBuf::new();
    let mut batches: Vec<Vec<IoReq>> = (0..nshards).map(|_| Vec::new()).collect();
    let mut last_data = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match fb.read_from(&mut stream) {
            Ok(0) => return Ok(()), // EOF: client is done.
            Ok(_) => last_data = Instant::now(),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_data.elapsed() >= idle_timeout {
                    // A silent peer must not pin this thread forever.
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        // Every request in this chunk carries the same arrival stamp —
        // one clock read per socket read, not per request.
        let at_us = epoch.elapsed().as_micros() as u64;
        loop {
            match fb.next_request() {
                Ok(Some(Request::Io {
                    seq,
                    write,
                    disk,
                    block,
                    blocks,
                })) => {
                    let s = shard_of(DiskId::new(disk), BlockNo::new(block), nshards);
                    batches[s].push(IoReq {
                        seq,
                        at_us,
                        disk,
                        block,
                        blocks: u64::from(blocks),
                        write,
                    });
                    if batches[s].len() >= BATCH_LIMIT {
                        flush(&mut batches[s], &shard_txs[s], writer_tx, &busy_gauges[s]);
                    }
                }
                Ok(Some(Request::Stats { seq })) => {
                    flush_all(&mut batches, shard_txs, writer_tx, busy_gauges);
                    let json = collect_stats(shard_txs, names);
                    let mut out = Vec::with_capacity(json.len() + 16);
                    protocol::encode_response(&Response::Stats { seq, json }, &mut out);
                    let _ = writer_tx.send(WriterMsg::Bytes(out));
                }
                Ok(Some(Request::Shutdown { seq })) => {
                    flush_all(&mut batches, shard_txs, writer_tx, busy_gauges);
                    let mut out = Vec::new();
                    protocol::encode_response(&Response::Shutdown { seq }, &mut out);
                    let _ = writer_tx.send(WriterMsg::Bytes(out));
                    stop.store(true, Ordering::Relaxed);
                    return Ok(());
                }
                Ok(None) => break,
                Err(e) => {
                    // Unframeable stream: nothing to salvage.
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
        }
        flush_all(&mut batches, shard_txs, writer_tx, busy_gauges);
    }
}

/// Pushes a connection's pending batch through the shard's bounded
/// admission queue. Whatever does not fit is answered with `BUSY`
/// frames carrying the queue depth — requests are never silently
/// dropped and never buffered beyond the bound.
fn flush(
    batch: &mut Vec<IoReq>,
    tx: &QueueSender<ShardMsg>,
    writer_tx: &Sender<WriterMsg>,
    busy_gauge: &AtomicU64,
) {
    if batch.is_empty() {
        return;
    }
    match tx.try_reserve(batch.len()) {
        Ok(granted) => {
            let rejected = batch.split_off(granted);
            tx.push_reserved(
                ShardMsg::Io {
                    reply: writer_tx.clone(),
                    batch: std::mem::take(batch),
                },
                granted,
            );
            if !rejected.is_empty() {
                bounce(&rejected, tx.depth(), writer_tx, busy_gauge);
            }
        }
        Err(TryPushError::Full { depth }) => {
            bounce(batch, depth, writer_tx, busy_gauge);
            batch.clear();
        }
        Err(TryPushError::Closed) => {
            // Mid-shutdown: the shard is gone, but every accepted
            // request still gets exactly one answer.
            bounce(batch, 0, writer_tx, busy_gauge);
            batch.clear();
        }
    }
}

/// Answers `reqs` with `BUSY` frames reporting `depth`.
fn bounce(reqs: &[IoReq], depth: usize, writer_tx: &Sender<WriterMsg>, busy_gauge: &AtomicU64) {
    let mut out = Vec::with_capacity(reqs.len() * 13);
    let depth = u32::try_from(depth).unwrap_or(u32::MAX);
    for r in reqs {
        protocol::encode_response(&Response::Busy { seq: r.seq, depth }, &mut out);
    }
    busy_gauge.fetch_add(reqs.len() as u64, Ordering::Relaxed);
    let _ = writer_tx.send(WriterMsg::Bytes(out));
}

fn flush_all(
    batches: &mut [Vec<IoReq>],
    shard_txs: &[QueueSender<ShardMsg>],
    writer_tx: &Sender<WriterMsg>,
    busy_gauges: &[AtomicU64],
) {
    for ((batch, tx), gauge) in batches.iter_mut().zip(shard_txs).zip(busy_gauges) {
        flush(batch, tx, writer_tx, gauge);
    }
}

/// Gathers a live snapshot from every shard and renders the JSON.
fn collect_stats(shard_txs: &[QueueSender<ShardMsg>], names: &(String, String)) -> String {
    let (tx, rx) = channel();
    for s in shard_txs {
        s.push_control(ShardMsg::Stats { reply: tx.clone() });
    }
    drop(tx);
    let snaps: Vec<ShardSnapshot> = rx.iter().collect();
    if snaps.len() != shard_txs.len() {
        // Mid-shutdown race: report what answered rather than nothing.
        let mut dense: Vec<ShardSnapshot> =
            (0..shard_txs.len()).map(ShardSnapshot::empty).collect();
        for s in snaps {
            let at = s.shard;
            dense[at] = s;
        }
        return ClusterSnapshot::new(names.0.clone(), names.1.clone(), dense).to_json();
    }
    ClusterSnapshot::new(names.0.clone(), names.1.clone(), snaps).to_json()
}

fn writer_main(mut stream: TcpStream, rx: &Receiver<WriterMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Bytes(bytes) => {
                if stream.write_all(&bytes).is_err() {
                    return; // Peer went away; reader will notice too.
                }
            }
            WriterMsg::Close => break,
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request, FrameBuf, Request, Response};
    use crate::stats::parse_stats_json;
    use std::io::Read;

    fn read_response(stream: &mut TcpStream, fb: &mut FrameBuf) -> Response {
        loop {
            if let Some(resp) = fb.next_response().unwrap() {
                return resp;
            }
            assert!(fb.read_from(stream).unwrap() > 0, "server closed early");
        }
    }

    #[test]
    fn serves_io_stats_and_shutdown_over_loopback() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(2, 4)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        // Miss then hit on the same block.
        for seq in 0..2u32 {
            encode_request(
                &Request::Io {
                    seq,
                    write: false,
                    disk: 1,
                    block: 77,
                    blocks: 1,
                },
                &mut wire,
            );
        }
        encode_request(&Request::Stats { seq: 2 }, &mut wire);
        stream.write_all(&wire).unwrap();

        let mut hits = Vec::new();
        for want_seq in 0..2u32 {
            match read_response(&mut stream, &mut fb) {
                Response::Io { seq, hit, .. } => {
                    assert_eq!(seq, want_seq);
                    hits.push(hit);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(hits, vec![false, true]);

        match read_response(&mut stream, &mut fb) {
            Response::Stats { seq, json } => {
                assert_eq!(seq, 2);
                let summary = parse_stats_json(&json).expect("stats must parse");
                assert_eq!(summary.requests, 2);
                assert_eq!(summary.hits, 1);
                assert_eq!(summary.shard_energy_j.len(), 2);
            }
            other => panic!("unexpected response {other:?}"),
        }

        let mut wire = Vec::new();
        encode_request(&Request::Shutdown { seq: 3 }, &mut wire);
        stream.write_all(&wire).unwrap();
        assert_eq!(
            read_response(&mut stream, &mut fb),
            Response::Shutdown { seq: 3 }
        );

        let summary = handle.join().unwrap();
        assert_eq!(summary.snapshot.total_requests(), 2);
        assert_eq!(summary.connections, 1);
    }

    #[test]
    fn stop_flag_drains_an_idle_server() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(1, 1)).unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());
        stop.store(true, Ordering::Relaxed);
        let summary = handle.join().unwrap();
        assert_eq!(summary.snapshot.total_requests(), 0);
        assert_eq!(summary.connections, 0);
    }

    #[test]
    fn idle_connections_are_disconnected() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(1, 1))
            .unwrap()
            .with_idle_timeout(Duration::from_millis(150));
        let addr = server.local_addr().unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // Connect, send nothing: the reader must hang up on us instead
        // of pinning its thread until we bother to speak.
        let mut silent = TcpStream::connect(addr).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let started = Instant::now();
        let mut buf = [0u8; 8];
        let n = silent.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "the idle connection must be closed");
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "disconnect must come from the idle timeout, not our read timeout"
        );

        // An active connection on the same server is unaffected.
        let mut good = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 1 }, &mut wire);
        good.write_all(&wire).unwrap();
        assert!(matches!(
            read_response(&mut good, &mut fb),
            Response::Stats { seq: 1, .. }
        ));

        stop.store(true, Ordering::Relaxed);
        drop(good);
        handle.join().unwrap();
    }

    #[test]
    fn garbage_input_kills_only_that_connection() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(1, 1)).unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // A frame with a zero length prefix is unrecoverable.
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&[0u8; 8]).unwrap();
        let mut buf = [0u8; 16];
        // Server closes the connection: read returns 0 (or a reset).
        let n = bad.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "bad connection must be closed without a response");

        // A fresh, well-behaved connection still works.
        let mut good = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 9 }, &mut wire);
        good.write_all(&wire).unwrap();
        assert!(matches!(
            read_response(&mut good, &mut fb),
            Response::Stats { seq: 9, .. }
        ));

        stop.store(true, Ordering::Relaxed);
        drop(good);
        handle.join().unwrap();
    }
}
