//! The TCP daemon: thread-per-shard engines behind a frame-parsing
//! connection layer.
//!
//! ```text
//! conn reader ──batch──▶ shard 0 thread ──resp bytes──▶ conn writer
//!      │    └──batch──▶ shard 1 thread ──────┘              │
//!   TcpStream (read half)                          TcpStream (write half)
//! ```
//!
//! Each connection gets a reader thread (parses frames, groups requests
//! into per-shard batches) and a writer thread (serializes response
//! bytes back). Each shard thread owns its [`ShardEngine`] outright —
//! no locks anywhere on the request path; all coordination is mpsc.
//!
//! Shutdown (SIGTERM bridge or the `SHUTDOWN` opcode) sets one atomic
//! flag: the accept loop stops, readers drain their parse buffers and
//! exit, shard channels disconnect, and every shard closes its energy
//! books and hands back a final [`ShardSnapshot`] for the closing
//! report.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_units::SimTime;

use crate::protocol::{self, FrameBuf, Request, Response};
use crate::shard::{shard_of, EngineConfig, ShardEngine};
use crate::stats::{ClusterSnapshot, ShardSnapshot};
use pc_units::{BlockNo, DiskId};

/// Flush a connection's pending batch to its shard once it holds this
/// many requests, even if more input is buffered.
const BATCH_LIMIT: usize = 1024;

/// How often blocked readers / the accept loop re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// One request routed to a shard.
struct IoReq {
    seq: u32,
    at_us: u64,
    disk: u32,
    block: u64,
    blocks: u64,
    write: bool,
}

/// Work sent to a shard thread.
enum ShardMsg {
    /// A batch of requests from one connection; encoded responses go
    /// back through `reply`.
    Io {
        reply: Sender<WriterMsg>,
        batch: Vec<IoReq>,
    },
    /// A snapshot request; the live snapshot goes back through `reply`.
    Stats { reply: Sender<ShardSnapshot> },
}

/// Bytes for a connection's writer thread.
enum WriterMsg {
    Bytes(Vec<u8>),
    Close,
}

/// The daemon: bind, then [`run`](Self::run) until stopped.
pub struct Server {
    listener: TcpListener,
    engine: EngineConfig,
    stop: Arc<AtomicBool>,
}

/// What a completed run hands back for the closing report.
#[derive(Debug)]
pub struct RunSummary {
    /// Final cluster snapshot with closed energy books.
    pub snapshot: ClusterSnapshot,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

impl Server {
    /// Binds the listener. The engine is not built until [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, engine: EngineConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `local_addr` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The stop flag: store `true` (from a signal bridge, a test, or
    /// the `SHUTDOWN` opcode path) to trigger a graceful drain.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves until the stop flag is set, then drains and returns the
    /// final snapshot.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors just
    /// close that connection.
    ///
    /// # Panics
    ///
    /// Panics if a shard thread panicked (its engine is poisoned beyond
    /// reporting).
    pub fn run(self) -> std::io::Result<RunSummary> {
        let policy = self.engine.policy.name();
        let write_policy = self.engine.sim.write_policy.name().to_owned();
        let epoch = Instant::now();

        let mut shard_txs = Vec::with_capacity(self.engine.shards);
        let mut shard_joins = Vec::with_capacity(self.engine.shards);
        for id in 0..self.engine.shards {
            let engine = ShardEngine::new(id, &self.engine);
            let (tx, rx) = channel();
            shard_txs.push(tx);
            shard_joins.push(std::thread::spawn(move || shard_main(engine, &rx)));
        }
        let shard_txs = Arc::new(shard_txs);

        self.listener.set_nonblocking(true)?;
        let mut connections = 0u64;
        let mut conn_joins = Vec::new();
        while !self.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let txs = Arc::clone(&shard_txs);
                    let stop = Arc::clone(&self.stop);
                    let names = (policy.clone(), write_policy.clone());
                    conn_joins.push(std::thread::spawn(move || {
                        // A dead connection is the client's problem, not
                        // the daemon's.
                        let _ = serve_conn(stream, &txs, &stop, epoch, &names);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: readers notice the flag within a poll interval and
        // exit, dropping their shard senders; once ours go too, each
        // shard's channel disconnects and it closes its books.
        for j in conn_joins {
            let _ = j.join();
        }
        drop(shard_txs);
        let shards = shard_joins
            .into_iter()
            .map(|j| j.join().expect("shard thread panicked"))
            .collect();
        Ok(RunSummary {
            snapshot: ClusterSnapshot::new(policy, write_policy, shards),
            connections,
        })
    }
}

/// A shard thread: apply batches in arrival order until every sender is
/// gone, then close the books.
fn shard_main(mut engine: ShardEngine, rx: &Receiver<ShardMsg>) -> ShardSnapshot {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Io { reply, batch } => {
                let mut out = Vec::with_capacity(batch.len() * 14);
                for r in &batch {
                    let outcome = engine.ingest(
                        SimTime::from_micros(r.at_us),
                        r.disk,
                        r.block,
                        r.blocks,
                        r.write,
                    );
                    let response_us =
                        u32::try_from(outcome.response.as_micros()).unwrap_or(u32::MAX);
                    protocol::encode_response(
                        &Response::Io {
                            seq: r.seq,
                            hit: outcome.hit,
                            response_us,
                        },
                        &mut out,
                    );
                }
                // The writer may already be gone mid-shutdown.
                let _ = reply.send(WriterMsg::Bytes(out));
            }
            ShardMsg::Stats { reply } => {
                let _ = reply.send(engine.snapshot());
            }
        }
    }
    engine.into_snapshot()
}

/// A connection's reader loop; spawns the paired writer thread.
fn serve_conn(
    stream: TcpStream,
    shard_txs: &[Sender<ShardMsg>],
    stop: &AtomicBool,
    epoch: Instant,
    names: &(String, String),
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let write_half = stream.try_clone()?;
    let (writer_tx, writer_rx) = channel();
    let writer = std::thread::spawn(move || writer_main(write_half, &writer_rx));

    let result = read_loop(stream, shard_txs, stop, epoch, names, &writer_tx);
    let _ = writer_tx.send(WriterMsg::Close);
    drop(writer_tx);
    let _ = writer.join();
    result
}

fn read_loop(
    mut stream: TcpStream,
    shard_txs: &[Sender<ShardMsg>],
    stop: &AtomicBool,
    epoch: Instant,
    names: &(String, String),
    writer_tx: &Sender<WriterMsg>,
) -> std::io::Result<()> {
    let nshards = shard_txs.len();
    let mut fb = FrameBuf::new();
    let mut batches: Vec<Vec<IoReq>> = (0..nshards).map(|_| Vec::new()).collect();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match fb.read_from(&mut stream) {
            Ok(0) => return Ok(()), // EOF: client is done.
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
        // Every request in this chunk carries the same arrival stamp —
        // one clock read per socket read, not per request.
        let at_us = epoch.elapsed().as_micros() as u64;
        loop {
            match fb.next_request() {
                Ok(Some(Request::Io {
                    seq,
                    write,
                    disk,
                    block,
                    blocks,
                })) => {
                    let s = shard_of(DiskId::new(disk), BlockNo::new(block), nshards);
                    batches[s].push(IoReq {
                        seq,
                        at_us,
                        disk,
                        block,
                        blocks: u64::from(blocks),
                        write,
                    });
                    if batches[s].len() >= BATCH_LIMIT {
                        flush(&mut batches[s], &shard_txs[s], writer_tx);
                    }
                }
                Ok(Some(Request::Stats { seq })) => {
                    flush_all(&mut batches, shard_txs, writer_tx);
                    let json = collect_stats(shard_txs, names);
                    let mut out = Vec::with_capacity(json.len() + 16);
                    protocol::encode_response(&Response::Stats { seq, json }, &mut out);
                    let _ = writer_tx.send(WriterMsg::Bytes(out));
                }
                Ok(Some(Request::Shutdown { seq })) => {
                    flush_all(&mut batches, shard_txs, writer_tx);
                    let mut out = Vec::new();
                    protocol::encode_response(&Response::Shutdown { seq }, &mut out);
                    let _ = writer_tx.send(WriterMsg::Bytes(out));
                    stop.store(true, Ordering::Relaxed);
                    return Ok(());
                }
                Ok(None) => break,
                Err(e) => {
                    // Unframeable stream: nothing to salvage.
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
        }
        flush_all(&mut batches, shard_txs, writer_tx);
    }
}

fn flush(batch: &mut Vec<IoReq>, tx: &Sender<ShardMsg>, writer_tx: &Sender<WriterMsg>) {
    if !batch.is_empty() {
        let _ = tx.send(ShardMsg::Io {
            reply: writer_tx.clone(),
            batch: std::mem::take(batch),
        });
    }
}

fn flush_all(
    batches: &mut [Vec<IoReq>],
    shard_txs: &[Sender<ShardMsg>],
    writer_tx: &Sender<WriterMsg>,
) {
    for (batch, tx) in batches.iter_mut().zip(shard_txs) {
        flush(batch, tx, writer_tx);
    }
}

/// Gathers a live snapshot from every shard and renders the JSON.
fn collect_stats(shard_txs: &[Sender<ShardMsg>], names: &(String, String)) -> String {
    let (tx, rx) = channel();
    for s in shard_txs {
        let _ = s.send(ShardMsg::Stats { reply: tx.clone() });
    }
    drop(tx);
    let snaps: Vec<ShardSnapshot> = rx.iter().collect();
    if snaps.len() != shard_txs.len() {
        // Mid-shutdown race: report what answered rather than nothing.
        let mut dense: Vec<ShardSnapshot> =
            (0..shard_txs.len()).map(ShardSnapshot::empty).collect();
        for s in snaps {
            let at = s.shard;
            dense[at] = s;
        }
        return ClusterSnapshot::new(names.0.clone(), names.1.clone(), dense).to_json();
    }
    ClusterSnapshot::new(names.0.clone(), names.1.clone(), snaps).to_json()
}

fn writer_main(mut stream: TcpStream, rx: &Receiver<WriterMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Bytes(bytes) => {
                if stream.write_all(&bytes).is_err() {
                    return; // Peer went away; reader will notice too.
                }
            }
            WriterMsg::Close => break,
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request, FrameBuf, Request, Response};
    use crate::stats::parse_stats_json;
    use std::io::Read;

    fn read_response(stream: &mut TcpStream, fb: &mut FrameBuf) -> Response {
        loop {
            if let Some(resp) = fb.next_response().unwrap() {
                return resp;
            }
            assert!(fb.read_from(stream).unwrap() > 0, "server closed early");
        }
    }

    #[test]
    fn serves_io_stats_and_shutdown_over_loopback() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(2, 4)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        // Miss then hit on the same block.
        for seq in 0..2u32 {
            encode_request(
                &Request::Io {
                    seq,
                    write: false,
                    disk: 1,
                    block: 77,
                    blocks: 1,
                },
                &mut wire,
            );
        }
        encode_request(&Request::Stats { seq: 2 }, &mut wire);
        stream.write_all(&wire).unwrap();

        let mut hits = Vec::new();
        for want_seq in 0..2u32 {
            match read_response(&mut stream, &mut fb) {
                Response::Io { seq, hit, .. } => {
                    assert_eq!(seq, want_seq);
                    hits.push(hit);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(hits, vec![false, true]);

        match read_response(&mut stream, &mut fb) {
            Response::Stats { seq, json } => {
                assert_eq!(seq, 2);
                let summary = parse_stats_json(&json).expect("stats must parse");
                assert_eq!(summary.requests, 2);
                assert_eq!(summary.hits, 1);
                assert_eq!(summary.shard_energy_j.len(), 2);
            }
            other => panic!("unexpected response {other:?}"),
        }

        let mut wire = Vec::new();
        encode_request(&Request::Shutdown { seq: 3 }, &mut wire);
        stream.write_all(&wire).unwrap();
        assert_eq!(
            read_response(&mut stream, &mut fb),
            Response::Shutdown { seq: 3 }
        );

        let summary = handle.join().unwrap();
        assert_eq!(summary.snapshot.total_requests(), 2);
        assert_eq!(summary.connections, 1);
    }

    #[test]
    fn stop_flag_drains_an_idle_server() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(1, 1)).unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());
        stop.store(true, Ordering::Relaxed);
        let summary = handle.join().unwrap();
        assert_eq!(summary.snapshot.total_requests(), 0);
        assert_eq!(summary.connections, 0);
    }

    #[test]
    fn garbage_input_kills_only_that_connection() {
        let server = Server::bind("127.0.0.1:0", EngineConfig::new(1, 1)).unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // A frame with a zero length prefix is unrecoverable.
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&[0u8; 8]).unwrap();
        let mut buf = [0u8; 16];
        // Server closes the connection: read returns 0 (or a reset).
        let n = bad.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "bad connection must be closed without a response");

        // A fresh, well-behaved connection still works.
        let mut good = TcpStream::connect(addr).unwrap();
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 9 }, &mut wire);
        good.write_all(&wire).unwrap();
        assert!(matches!(
            read_response(&mut good, &mut fb),
            Response::Stats { seq: 9, .. }
        ));

        stop.store(true, Ordering::Relaxed);
        drop(good);
        handle.join().unwrap();
    }
}
