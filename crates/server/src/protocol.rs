//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload. The first payload byte is the opcode; all
//! integers are little-endian and fixed-width, so encoding and decoding
//! are straight `to_le_bytes` / `from_le_bytes` with no varint state.
//!
//! Request payloads:
//!
//! | opcode | payload | bytes |
//! |--------|---------|-------|
//! | `0x01` READ / `0x02` WRITE | `op, seq:u32, disk:u32, block:u64, blocks:u16` | 19 |
//! | `0x03` STATS | `op, seq:u32` | 5 |
//! | `0x04` SHUTDOWN | `op, seq:u32` | 5 |
//! | `0x11` READ_DATA | `op, seq:u32, disk:u32, block:u64, blocks:u16` | 19 |
//! | `0x12` WRITE_DATA | `op, seq:u32, disk:u32, block:u64, blocks:u16, data…` | 19 + blocks×block_bytes |
//!
//! Response payloads:
//!
//! | opcode | payload |
//! |--------|---------|
//! | `0x81` IO | `op, seq:u32, hit:u8, response_us:u32` |
//! | `0x83` STATS | `op, seq:u32, json bytes` |
//! | `0x84` SHUTDOWN | `op, seq:u32` |
//! | `0x85` BUSY | `op, seq:u32, depth:u32` |
//! | `0x86` CORRUPT | `op, seq:u32` |
//! | `0x91` DATA | `op, seq:u32, hit:u8, response_us:u32, data…` |
//!
//! `response_us` is the *virtual* (simulated) response time of the
//! request, saturated to `u32::MAX` µs; clients measure wall latency
//! themselves. `seq` is an opaque per-connection correlation id echoed
//! back verbatim — the server never interprets it.
//!
//! `BUSY` is the overload answer to a READ/WRITE whose shard queue was
//! full: the request was **not** executed, and `depth` reports how many
//! requests were already waiting at that shard, so a client can scale
//! its backoff to the congestion it is seeing. Every accepted request
//! is answered exactly once — with IO or with BUSY, never both.
//!
//! # Protocol v2: payload frames
//!
//! `READ_DATA`/`WRITE_DATA` are the metadata opcodes plus block
//! contents. A `WRITE_DATA` request carries exactly
//! `blocks.max(1) × block_bytes` payload bytes after the 19-byte
//! header (`block_bytes` is a server-wide constant, default
//! [`DEFAULT_BLOCK_BYTES`]); a `READ_DATA` request is bodiless and is
//! answered with a `DATA` response carrying the same header layout as
//! IO followed by the block contents, or with `CORRUPT` when the
//! server's CRC32C check caught a damaged slab frame (the failure is
//! also counted in STATS `crc_failures`). Data requests are capped at
//! [`MAX_DATA_BLOCKS`] blocks so the per-connection request frame cap
//! ([`max_request_frame`]) stays far below [`MAX_FRAME`]; overload
//! (`BUSY`) answers data requests exactly like metadata ones.

use std::io::Read;

/// Hard upper bound on a frame payload (1 MiB): anything larger is a
/// corrupt or hostile stream and kills the connection.
pub const MAX_FRAME: usize = 1 << 20;

/// The largest *request* payload the protocol defines (a 19-byte
/// READ/WRITE). Server-side connections cap their [`FrameBuf`] at this
/// instead of [`MAX_FRAME`]: a length prefix that no legal request
/// could ever need is rejected immediately, before a single payload
/// byte is buffered — with tens of thousands of connections, letting a
/// hostile peer park a megabyte per connection is an amplification the
/// read path must not offer.
pub const MAX_REQUEST_FRAME: usize = 19;

/// Default payload bytes per block for the data plane (protocol v2).
pub const DEFAULT_BLOCK_BYTES: usize = 4096;

/// Most blocks one `READ_DATA`/`WRITE_DATA` request may cover. Bounds
/// the payload-capable request frame cap: at the default 4 KiB block
/// this keeps the largest legal request frame at 256 KiB + 19 bytes,
/// well under [`MAX_FRAME`].
pub const MAX_DATA_BLOCKS: u16 = 64;

/// The request-frame cap for a payload-capable connection: one
/// `WRITE_DATA` header plus the largest legal data payload, clamped to
/// [`MAX_FRAME`]. A length prefix above this poisons the stream before
/// any payload bytes are buffered, exactly like the metadata-only
/// [`MAX_REQUEST_FRAME`] cap.
#[must_use]
pub fn max_request_frame(block_bytes: usize) -> usize {
    (MAX_REQUEST_FRAME + MAX_DATA_BLOCKS as usize * block_bytes).min(MAX_FRAME)
}

const OP_READ: u8 = 0x01;
const OP_WRITE: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_READ_DATA: u8 = 0x11;
const OP_WRITE_DATA: u8 = 0x12;
const OP_RESP_IO: u8 = 0x81;
const OP_RESP_STATS: u8 = 0x83;
const OP_RESP_SHUTDOWN: u8 = 0x84;
const OP_RESP_BUSY: u8 = 0x85;
const OP_RESP_CORRUPT: u8 = 0x86;
const OP_RESP_DATA: u8 = 0x91;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A block read or write.
    Io {
        /// Per-connection correlation id, echoed in the response.
        seq: u32,
        /// True for writes, false for reads.
        write: bool,
        /// Target disk index (the server reduces it modulo its array size).
        disk: u32,
        /// First block number.
        block: u64,
        /// Request length in blocks (0 is treated as 1).
        blocks: u16,
    },
    /// A protocol-v2 block read or write carrying payload bytes.
    IoData {
        /// Per-connection correlation id, echoed in the response.
        seq: u32,
        /// True for writes, false for reads.
        write: bool,
        /// Target disk index (the server reduces it modulo its array size).
        disk: u32,
        /// First block number.
        block: u64,
        /// Request length in blocks (0 is treated as 1).
        blocks: u16,
        /// Block contents: `blocks.max(1) × block_bytes` bytes for a
        /// write, empty for a read (the reply carries the data).
        payload: Vec<u8>,
    },
    /// Request a cluster statistics snapshot (JSON).
    Stats {
        /// Correlation id.
        seq: u32,
    },
    /// Ask the daemon to drain and exit (same path as SIGTERM).
    Shutdown {
        /// Correlation id.
        seq: u32,
    },
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Completion of a read or write.
    Io {
        /// Correlation id from the request.
        seq: u32,
        /// Whether every block was resident in the cache.
        hit: bool,
        /// Virtual response time in µs (saturated).
        response_us: u32,
    },
    /// A statistics snapshot.
    Stats {
        /// Correlation id from the request.
        seq: u32,
        /// The cluster snapshot as JSON (see `stats::ClusterSnapshot`).
        json: String,
    },
    /// Acknowledgement of a shutdown request.
    Shutdown {
        /// Correlation id from the request.
        seq: u32,
    },
    /// Overload rejection: the target shard's queue was full and the
    /// request was **not** executed. Clients back off and retry.
    Busy {
        /// Correlation id from the request.
        seq: u32,
        /// The shard's queue depth (in requests) at rejection time.
        depth: u32,
    },
    /// Completion of a `READ_DATA` carrying the block contents.
    Data {
        /// Correlation id from the request.
        seq: u32,
        /// Whether every block was resident in the cache.
        hit: bool,
        /// Virtual response time in µs (saturated).
        response_us: u32,
        /// The block contents (`blocks.max(1) × block_bytes` bytes).
        payload: Vec<u8>,
    },
    /// A `READ_DATA` whose slab frame failed its CRC32C check: the
    /// corruption was detected and counted, no payload is returned.
    Corrupt {
        /// Correlation id from the request.
        seq: u32,
    },
}

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Frame length prefix was zero or exceeded [`MAX_FRAME`].
    BadLength(usize),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Payload shorter than its opcode requires.
    Truncated,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadLength(n) => write!(f, "bad frame length {n}"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::Truncated => write!(f, "truncated payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Appends one request frame (length prefix included) to `out`.
///
/// # Panics
///
/// Panics if a `WRITE_DATA` payload would push the frame past
/// [`MAX_FRAME`].
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Io {
            seq,
            write,
            disk,
            block,
            blocks,
        } => {
            out.extend_from_slice(&19u32.to_le_bytes());
            out.push(if *write { OP_WRITE } else { OP_READ });
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&disk.to_le_bytes());
            out.extend_from_slice(&block.to_le_bytes());
            out.extend_from_slice(&blocks.to_le_bytes());
        }
        Request::IoData {
            seq,
            write,
            disk,
            block,
            blocks,
            payload,
        } => encode_data_request(*seq, *write, *disk, *block, *blocks, payload, out),
        Request::Stats { seq } => {
            out.extend_from_slice(&5u32.to_le_bytes());
            out.push(OP_STATS);
            out.extend_from_slice(&seq.to_le_bytes());
        }
        Request::Shutdown { seq } => {
            out.extend_from_slice(&5u32.to_le_bytes());
            out.push(OP_SHUTDOWN);
            out.extend_from_slice(&seq.to_le_bytes());
        }
    }
}

/// Appends one `READ_DATA`/`WRITE_DATA` request frame with the payload
/// taken from a borrowed slice — the load generator's hot path, which
/// reuses one scratch buffer per connection instead of moving an owned
/// `Vec` into [`Request::IoData`] per request.
///
/// # Panics
///
/// Panics if the payload would push the frame past [`MAX_FRAME`].
#[allow(clippy::too_many_arguments)]
pub fn encode_data_request(
    seq: u32,
    write: bool,
    disk: u32,
    block: u64,
    blocks: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let len = 19 + payload.len();
    assert!(len <= MAX_FRAME, "data payload exceeds MAX_FRAME");
    out.reserve(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(if write { OP_WRITE_DATA } else { OP_READ_DATA });
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&disk.to_le_bytes());
    out.extend_from_slice(&block.to_le_bytes());
    out.extend_from_slice(&blocks.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends one response frame (length prefix included) to `out`.
///
/// # Panics
///
/// Panics if a stats JSON payload would exceed [`MAX_FRAME`].
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Io {
            seq,
            hit,
            response_us,
        } => {
            out.extend_from_slice(&10u32.to_le_bytes());
            out.push(OP_RESP_IO);
            out.extend_from_slice(&seq.to_le_bytes());
            out.push(u8::from(*hit));
            out.extend_from_slice(&response_us.to_le_bytes());
        }
        Response::Stats { seq, json } => {
            let len = 5 + json.len();
            assert!(len <= MAX_FRAME, "stats JSON exceeds MAX_FRAME");
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.push(OP_RESP_STATS);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(json.as_bytes());
        }
        Response::Shutdown { seq } => {
            out.extend_from_slice(&5u32.to_le_bytes());
            out.push(OP_RESP_SHUTDOWN);
            out.extend_from_slice(&seq.to_le_bytes());
        }
        Response::Busy { seq, depth } => {
            out.extend_from_slice(&9u32.to_le_bytes());
            out.push(OP_RESP_BUSY);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&depth.to_le_bytes());
        }
        Response::Data {
            seq,
            hit,
            response_us,
            payload,
        } => {
            encode_data_response(*seq, *hit, *response_us, payload, out);
        }
        Response::Corrupt { seq } => {
            out.extend_from_slice(&5u32.to_le_bytes());
            out.push(OP_RESP_CORRUPT);
            out.extend_from_slice(&seq.to_le_bytes());
        }
    }
}

/// Appends one `DATA` response frame with the payload taken from a
/// borrowed slice — the server's copy-once reply path: slab bytes land
/// directly in the outgoing reply buffer (header + payload
/// contiguous), with no intermediate `Vec` per response.
///
/// # Panics
///
/// Panics if the payload would push the frame past [`MAX_FRAME`].
pub fn encode_data_response(
    seq: u32,
    hit: bool,
    response_us: u32,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    encode_data_header(seq, hit, response_us, payload.len(), out);
    out.extend_from_slice(payload);
}

/// Appends a `DATA` response frame's length prefix and 10-byte header
/// for a payload of exactly `payload_len` bytes that the caller appends
/// directly afterwards — the shard's scatter-gather path writes slab
/// bytes straight into the reply buffer with no per-response `Vec`.
///
/// # Panics
///
/// Panics if the payload would push the frame past [`MAX_FRAME`].
pub fn encode_data_header(
    seq: u32,
    hit: bool,
    response_us: u32,
    payload_len: usize,
    out: &mut Vec<u8>,
) {
    let len = 10 + payload_len;
    assert!(len <= MAX_FRAME, "data payload exceeds MAX_FRAME");
    out.reserve(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(OP_RESP_DATA);
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(u8::from(hit));
    out.extend_from_slice(&response_us.to_le_bytes());
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().expect("caller sliced 4 bytes"))
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("caller sliced 8 bytes"))
}

/// Decodes a request payload (the bytes *after* the length prefix).
///
/// # Errors
///
/// Returns [`ProtoError`] on an unknown opcode or short payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let (&op, rest) = payload.split_first().ok_or(ProtoError::Truncated)?;
    match op {
        OP_READ | OP_WRITE => {
            if rest.len() != 18 {
                return Err(ProtoError::Truncated);
            }
            Ok(Request::Io {
                seq: le_u32(&rest[0..4]),
                write: op == OP_WRITE,
                disk: le_u32(&rest[4..8]),
                block: le_u64(&rest[8..16]),
                blocks: u16::from_le_bytes(rest[16..18].try_into().expect("2 bytes")),
            })
        }
        OP_READ_DATA | OP_WRITE_DATA => {
            // READ_DATA is bodiless; WRITE_DATA carries at least one
            // block of payload. Exact payload sizing against the
            // server's block_bytes happens in the serving layer, which
            // knows the configuration.
            if rest.len() < 18 || (op == OP_READ_DATA && rest.len() != 18) {
                return Err(ProtoError::Truncated);
            }
            Ok(Request::IoData {
                seq: le_u32(&rest[0..4]),
                write: op == OP_WRITE_DATA,
                disk: le_u32(&rest[4..8]),
                block: le_u64(&rest[8..16]),
                blocks: u16::from_le_bytes(rest[16..18].try_into().expect("2 bytes")),
                payload: rest[18..].to_vec(),
            })
        }
        OP_STATS | OP_SHUTDOWN => {
            if rest.len() != 4 {
                return Err(ProtoError::Truncated);
            }
            let seq = le_u32(rest);
            Ok(if op == OP_STATS {
                Request::Stats { seq }
            } else {
                Request::Shutdown { seq }
            })
        }
        _ => Err(ProtoError::BadOpcode(op)),
    }
}

/// Decodes a response payload (the bytes *after* the length prefix).
///
/// # Errors
///
/// Returns [`ProtoError`] on an unknown opcode, short payload, or a
/// stats payload that is not UTF-8.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let (&op, rest) = payload.split_first().ok_or(ProtoError::Truncated)?;
    match op {
        OP_RESP_IO => {
            if rest.len() != 9 {
                return Err(ProtoError::Truncated);
            }
            Ok(Response::Io {
                seq: le_u32(&rest[0..4]),
                hit: rest[4] != 0,
                response_us: le_u32(&rest[5..9]),
            })
        }
        OP_RESP_STATS => {
            if rest.len() < 4 {
                return Err(ProtoError::Truncated);
            }
            let json = String::from_utf8(rest[4..].to_vec()).map_err(|_| ProtoError::Truncated)?;
            Ok(Response::Stats {
                seq: le_u32(&rest[0..4]),
                json,
            })
        }
        OP_RESP_SHUTDOWN => {
            if rest.len() != 4 {
                return Err(ProtoError::Truncated);
            }
            Ok(Response::Shutdown { seq: le_u32(rest) })
        }
        OP_RESP_BUSY => {
            if rest.len() != 8 {
                return Err(ProtoError::Truncated);
            }
            Ok(Response::Busy {
                seq: le_u32(&rest[0..4]),
                depth: le_u32(&rest[4..8]),
            })
        }
        OP_RESP_CORRUPT => {
            if rest.len() != 4 {
                return Err(ProtoError::Truncated);
            }
            Ok(Response::Corrupt { seq: le_u32(rest) })
        }
        OP_RESP_DATA => {
            if rest.len() < 9 {
                return Err(ProtoError::Truncated);
            }
            Ok(Response::Data {
                seq: le_u32(&rest[0..4]),
                hit: rest[4] != 0,
                response_us: le_u32(&rest[5..9]),
                payload: rest[9..].to_vec(),
            })
        }
        _ => Err(ProtoError::BadOpcode(op)),
    }
}

/// An incremental frame reassembly buffer over a byte stream.
///
/// Feed it from a [`Read`] with [`read_from`](Self::read_from), then
/// drain complete frames with [`next_request`](Self::next_request) /
/// [`next_response`](Self::next_response). Partial frames stay buffered
/// across reads; consumed bytes are reclaimed by compaction on the next
/// read, so steady-state operation does not allocate.
///
/// The buffer works identically over blocking and nonblocking sources:
/// `read_from` surfaces `WouldBlock` untouched (after compacting), a
/// length prefix split across reads stays pending until its fourth byte
/// arrives, and a poisoned prefix (zero, or above the instance's frame
/// cap) errors *before* any payload bytes for it are buffered — pinned
/// by the byte-dribbling tests below.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
    end: usize,
    max_frame: usize,
}

impl Default for FrameBuf {
    fn default() -> Self {
        FrameBuf::new()
    }
}

/// Smallest window `read_from` will grow to: guarantees progress even
/// for a [`with_capacity(0)`](FrameBuf::with_capacity) buffer (a full —
/// or empty — window that doubled to itself would read zero bytes
/// forever and masquerade as EOF).
const MIN_GROW: usize = 4096;

impl FrameBuf {
    /// Creates an empty buffer with a 256 KiB read window (the
    /// throughput configuration: one syscall swallows a whole burst).
    #[must_use]
    pub fn new() -> Self {
        FrameBuf::with_capacity(256 * 1024)
    }

    /// Creates an empty buffer with a caller-chosen initial window.
    /// Event-loop connections start at a few KiB — an idle connection
    /// then costs buffer bytes, not a thread stack — and grow on demand.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        FrameBuf {
            buf: vec![0u8; capacity],
            start: 0,
            end: 0,
            max_frame: MAX_FRAME,
        }
    }

    /// Caps the accepted frame payload length (default [`MAX_FRAME`]).
    /// Server-side connections pass [`MAX_REQUEST_FRAME`]: a prefix no
    /// legal request could need poisons the stream immediately instead
    /// of buffering up to a megabyte first.
    #[must_use]
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame.min(MAX_FRAME);
        self
    }

    /// Current window size in bytes (for per-connection accounting).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Bytes buffered but not yet consumed as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.end - self.start
    }

    /// Shrinks an empty window back down to `capacity` if a burst grew
    /// it past that. No-op while bytes are pending — a partial frame is
    /// never dropped.
    pub fn reclaim(&mut self, capacity: usize) {
        if self.start == self.end && self.buf.len() > capacity {
            self.buf = vec![0u8; capacity];
            self.start = 0;
            self.end = 0;
        }
    }

    /// Reads once from `r` into the buffer, returning the byte count
    /// (0 = EOF). Compacts consumed bytes first and grows the buffer if
    /// a single frame spans more than the current window.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error (including timeouts as
    /// `WouldBlock`/`TimedOut`).
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.end == self.buf.len() {
            self.buf.resize((self.buf.len() * 2).max(MIN_GROW), 0);
        }
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Extracts the next complete frame payload, if one is buffered.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadLength`] on a zero or oversized length
    /// prefix (the stream is unrecoverable at that point).
    pub fn next_payload(&mut self) -> Result<Option<&[u8]>, ProtoError> {
        let avail = self.end - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len = le_u32(&self.buf[self.start..self.start + 4]) as usize;
        if len == 0 || len > self.max_frame {
            return Err(ProtoError::BadLength(len));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let at = self.start + 4;
        self.start += 4 + len;
        Ok(Some(&self.buf[at..at + len]))
    }

    /// Extracts and decodes the next complete request frame.
    ///
    /// # Errors
    ///
    /// Propagates framing and decoding errors.
    pub fn next_request(&mut self) -> Result<Option<Request>, ProtoError> {
        match self.next_payload()? {
            Some(p) => decode_request(p).map(Some),
            None => Ok(None),
        }
    }

    /// Extracts and decodes the next complete response frame.
    ///
    /// # Errors
    ///
    /// Propagates framing and decoding errors.
    pub fn next_response(&mut self) -> Result<Option<Response>, ProtoError> {
        match self.next_payload()? {
            Some(p) => decode_response(p).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        encode_request(req, &mut buf);
        let len = le_u32(&buf[0..4]) as usize;
        assert_eq!(buf.len(), 4 + len);
        decode_request(&buf[4..]).unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Io {
                seq: 7,
                write: false,
                disk: 3,
                block: 0xDEAD_BEEF_CAFE,
                blocks: 16,
            },
            Request::Io {
                seq: u32::MAX,
                write: true,
                disk: 0,
                block: u64::MAX,
                blocks: u16::MAX,
            },
            Request::Stats { seq: 42 },
            Request::Shutdown { seq: 0 },
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Io {
                seq: 9,
                hit: true,
                response_us: 1234,
            },
            Response::Stats {
                seq: 1,
                json: "{\"shards\":[]}".to_owned(),
            },
            Response::Shutdown { seq: 5 },
            Response::Busy {
                seq: 77,
                depth: 4096,
            },
            Response::Busy {
                seq: u32::MAX,
                depth: u32::MAX,
            },
        ] {
            let mut buf = Vec::new();
            encode_response(&resp, &mut buf);
            let len = le_u32(&buf[0..4]) as usize;
            assert_eq!(buf.len(), 4 + len);
            assert_eq!(decode_response(&buf[4..]).unwrap(), resp);
        }
    }

    #[test]
    fn data_requests_roundtrip() {
        for req in [
            Request::IoData {
                seq: 11,
                write: false,
                disk: 2,
                block: 77,
                blocks: 4,
                payload: Vec::new(),
            },
            Request::IoData {
                seq: 12,
                write: true,
                disk: 0,
                block: u64::MAX,
                blocks: 1,
                payload: vec![0xAB; DEFAULT_BLOCK_BYTES],
            },
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
        // A bodied READ_DATA is malformed: reads carry no payload.
        let mut wire = Vec::new();
        encode_request(
            &Request::IoData {
                seq: 1,
                write: false,
                disk: 0,
                block: 0,
                blocks: 1,
                payload: Vec::new(),
            },
            &mut wire,
        );
        let mut bodied = wire[4..].to_vec();
        bodied.push(0xFF);
        assert_eq!(decode_request(&bodied), Err(ProtoError::Truncated));
    }

    #[test]
    fn data_and_corrupt_responses_roundtrip() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        for resp in [
            Response::Data {
                seq: 3,
                hit: true,
                response_us: 17,
                payload: payload.clone(),
            },
            Response::Data {
                seq: 4,
                hit: false,
                response_us: 0,
                payload: Vec::new(),
            },
            Response::Corrupt { seq: 5 },
        ] {
            let mut buf = Vec::new();
            encode_response(&resp, &mut buf);
            let len = le_u32(&buf[0..4]) as usize;
            assert_eq!(buf.len(), 4 + len);
            assert_eq!(decode_response(&buf[4..]).unwrap(), resp);
        }
        // The borrowed-slice encoder produces byte-identical frames to
        // the owned Response::Data path (the copy-once guarantee is an
        // encoding detail, not a format difference).
        let mut a = Vec::new();
        encode_data_response(3, true, 17, &payload, &mut a);
        let mut b = Vec::new();
        encode_response(
            &Response::Data {
                seq: 3,
                hit: true,
                response_us: 17,
                payload,
            },
            &mut b,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn data_frame_caps_are_consistent() {
        // The payload-capable request cap admits the largest legal
        // WRITE_DATA and stays under the absolute frame bound.
        let cap = max_request_frame(DEFAULT_BLOCK_BYTES);
        assert_eq!(cap, 19 + MAX_DATA_BLOCKS as usize * DEFAULT_BLOCK_BYTES);
        assert!(cap <= MAX_FRAME);
        // Degenerate block sizes clamp instead of overflowing.
        assert_eq!(max_request_frame(MAX_FRAME), MAX_FRAME);
    }

    /// A reader that hands out at most 3 bytes per call, to exercise
    /// frame reassembly across reads.
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = self.0.len().min(out.len()).min(3);
            out[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    #[test]
    fn framebuf_reassembles_across_partial_reads() {
        let reqs = [
            Request::Io {
                seq: 1,
                write: false,
                disk: 0,
                block: 10,
                blocks: 1,
            },
            Request::Stats { seq: 2 },
            Request::Io {
                seq: 3,
                write: true,
                disk: 4,
                block: 99,
                blocks: 2,
            },
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
        }
        let mut src = Trickle(&wire);
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        loop {
            while let Some(req) = fb.next_request().unwrap() {
                got.push(req);
            }
            if fb.read_from(&mut src).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(got, reqs);
    }

    #[test]
    fn framebuf_rejects_bad_length_prefixes() {
        let mut fb = FrameBuf::new();
        let mut zero = std::io::Cursor::new(0u32.to_le_bytes().to_vec());
        fb.read_from(&mut zero).unwrap();
        assert_eq!(fb.next_payload(), Err(ProtoError::BadLength(0)));

        let mut fb = FrameBuf::new();
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        let mut huge = std::io::Cursor::new(huge);
        fb.read_from(&mut huge).unwrap();
        assert_eq!(fb.next_payload(), Err(ProtoError::BadLength(MAX_FRAME + 1)));
    }

    #[test]
    fn decode_rejects_unknown_opcodes_and_short_payloads() {
        assert_eq!(
            decode_request(&[0x7F, 0, 0, 0, 0]),
            Err(ProtoError::BadOpcode(0x7F))
        );
        assert_eq!(decode_request(&[]), Err(ProtoError::Truncated));
        assert_eq!(decode_request(&[OP_READ, 1, 2]), Err(ProtoError::Truncated));
        assert_eq!(
            decode_response(&[0x01, 0, 0, 0, 0]),
            Err(ProtoError::BadOpcode(0x01))
        );
        assert_eq!(
            decode_response(&[OP_RESP_IO, 1]),
            Err(ProtoError::Truncated)
        );
        assert_eq!(
            decode_response(&[OP_RESP_BUSY, 1, 2, 3, 4]),
            Err(ProtoError::Truncated)
        );
    }

    /// Every truncation of every valid request payload must decode to a
    /// clean `Truncated` error — never panic, never mis-decode.
    #[test]
    fn every_request_prefix_errors_cleanly() {
        let reqs = [
            Request::Io {
                seq: 3,
                write: true,
                disk: 9,
                block: u64::MAX - 1,
                blocks: 500,
            },
            Request::Stats { seq: 1 },
            Request::Shutdown { seq: 2 },
        ];
        for req in reqs {
            let mut wire = Vec::new();
            encode_request(&req, &mut wire);
            let payload = &wire[4..];
            for cut in 0..payload.len() {
                assert_eq!(
                    decode_request(&payload[..cut]),
                    Err(ProtoError::Truncated),
                    "{req:?} cut at {cut}"
                );
            }
            // Oversized payloads are also malformed, not silently accepted.
            let mut long = payload.to_vec();
            long.push(0xAA);
            assert_eq!(decode_request(&long), Err(ProtoError::Truncated));
        }
    }

    /// Garbage bytes after a valid length prefix decode to an error and
    /// never panic, whatever the first byte claims to be.
    #[test]
    fn garbage_payloads_never_panic() {
        for op in 0u8..=255 {
            let payload = [op, 0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22];
            let _ = decode_request(&payload);
            let _ = decode_response(&payload);
            let _ = decode_request(&[op]);
            let _ = decode_response(&[op]);
        }
    }

    /// An oversized length prefix poisons the stream even when it
    /// arrives byte-by-byte behind valid traffic.
    #[test]
    fn oversized_length_after_valid_frame_is_fatal() {
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 8 }, &mut wire);
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut src = Trickle(&wire);
        let mut fb = FrameBuf::new();
        let mut results = Vec::new();
        loop {
            loop {
                match fb.next_request() {
                    Ok(Some(req)) => results.push(Ok(req)),
                    Ok(None) => break,
                    Err(e) => {
                        results.push(Err(e));
                        break;
                    }
                }
            }
            if results.iter().any(Result::is_err) || src.0.is_empty() {
                break;
            }
            fb.read_from(&mut src).unwrap();
        }
        assert_eq!(results[0], Ok(Request::Stats { seq: 8 }));
        assert_eq!(
            results[1],
            Err(ProtoError::BadLength(u32::MAX as usize)),
            "the poisoned tail must surface as BadLength"
        );
    }

    /// A nonblocking-style reader: hands out one byte per call, with a
    /// `WouldBlock` interleaved between every byte — the worst case an
    /// event loop can see from a dribbling peer.
    struct Dribble<'a> {
        bytes: &'a [u8],
        ready: bool,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            self.ready = false;
            let n = self.bytes.len().min(out.len()).min(1);
            out[..n].copy_from_slice(&self.bytes[..n]);
            self.bytes = &self.bytes[n..];
            Ok(n)
        }
    }

    /// Drives `fb` over a dribbling nonblocking source until EOF or a
    /// protocol error, collecting everything.
    fn drain_dribble(
        fb: &mut FrameBuf,
        src: &mut Dribble<'_>,
    ) -> (Vec<Request>, Option<ProtoError>) {
        let mut got = Vec::new();
        loop {
            loop {
                match fb.next_request() {
                    Ok(Some(req)) => got.push(req),
                    Ok(None) => break,
                    Err(e) => return (got, Some(e)),
                }
            }
            match fb.read_from(src) {
                Ok(0) => return (got, None),
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("dribble source only blocks: {e}"),
            }
        }
    }

    /// Byte-dribbled valid traffic reassembles exactly, under the
    /// server-side request frame cap and a tiny initial window.
    #[test]
    fn nonblocking_dribble_reassembles_requests_under_the_request_cap() {
        let reqs = [
            Request::Io {
                seq: 1,
                write: false,
                disk: 3,
                block: 0xAB_CDEF,
                blocks: 8,
            },
            Request::Stats { seq: 2 },
            Request::Io {
                seq: 3,
                write: true,
                disk: 0,
                block: u64::MAX,
                blocks: u16::MAX,
            },
            Request::Shutdown { seq: 4 },
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
        }
        let mut fb = FrameBuf::with_capacity(8).with_max_frame(MAX_REQUEST_FRAME);
        let mut src = Dribble {
            bytes: &wire,
            ready: false,
        };
        let (got, err) = drain_dribble(&mut fb, &mut src);
        assert_eq!(got, reqs);
        assert_eq!(err, None);
        assert_eq!(fb.pending(), 0);
    }

    /// An oversized-for-a-request prefix (here: a 1 MiB frame that the
    /// *protocol* allows but no request needs) poisons a request-capped
    /// stream as soon as its fourth length byte lands — before any
    /// payload is buffered — even arriving a byte at a time behind
    /// valid traffic.
    #[test]
    fn request_cap_rejects_oversized_prefixes_before_buffering_payload() {
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 1 }, &mut wire);
        wire.extend_from_slice(&((MAX_REQUEST_FRAME as u32) + 1).to_le_bytes());
        wire.extend_from_slice(&[0xEE; 64]); // payload that must never be buffered
        let mut fb = FrameBuf::with_capacity(8).with_max_frame(MAX_REQUEST_FRAME);
        let mut src = Dribble {
            bytes: &wire,
            ready: false,
        };
        let (got, err) = drain_dribble(&mut fb, &mut src);
        assert_eq!(got, vec![Request::Stats { seq: 1 }]);
        assert_eq!(err, Some(ProtoError::BadLength(MAX_REQUEST_FRAME + 1)));
        // The poisoned frame's payload never grew the window toward
        // 1 MiB: the error surfaced at the prefix, so capacity stays at
        // the minimum growth quantum.
        assert!(
            fb.capacity() <= MIN_GROW,
            "payload was buffered past the cap: {} bytes",
            fb.capacity()
        );
    }

    /// Garbage *payloads* behind valid-length prefixes error cleanly
    /// when dribbled, same as when they arrive whole.
    #[test]
    fn dribbled_garbage_payload_is_a_clean_decode_error() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&5u32.to_le_bytes());
        wire.extend_from_slice(&[0x7F, 1, 2, 3, 4]); // unknown opcode
        let mut fb = FrameBuf::with_capacity(0).with_max_frame(MAX_REQUEST_FRAME);
        let mut src = Dribble {
            bytes: &wire,
            ready: false,
        };
        let (got, err) = drain_dribble(&mut fb, &mut src);
        assert!(got.is_empty());
        assert_eq!(err, Some(ProtoError::BadOpcode(0x7F)));
    }

    /// A zero-capacity buffer must grow and make progress instead of
    /// reading zero bytes forever (which looks exactly like EOF).
    #[test]
    fn zero_capacity_buffer_grows_instead_of_spinning() {
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 9 }, &mut wire);
        let mut fb = FrameBuf::with_capacity(0);
        let mut src = std::io::Cursor::new(wire);
        let n = fb.read_from(&mut src).unwrap();
        assert!(n > 0, "a grown buffer must actually read");
        assert_eq!(fb.next_request().unwrap(), Some(Request::Stats { seq: 9 }));
    }

    #[test]
    fn reclaim_shrinks_only_an_empty_window() {
        let mut fb = FrameBuf::with_capacity(16);
        let mut wire = Vec::new();
        encode_request(&Request::Stats { seq: 1 }, &mut wire);
        wire.extend_from_slice(&19u32.to_le_bytes()); // partial second frame
        let mut src = std::io::Cursor::new(wire);
        while fb.read_from(&mut src).unwrap() > 0 {}
        assert_eq!(fb.next_request().unwrap(), Some(Request::Stats { seq: 1 }));
        assert_eq!(fb.next_request().unwrap(), None);
        let grown = fb.capacity();
        // 4 prefix bytes of the second frame are pending: reclaim must
        // keep them.
        fb.reclaim(8);
        assert_eq!(fb.capacity(), grown, "pending bytes pin the window");
        assert_eq!(fb.pending(), 4);
        // Finish the second frame, drain it, then reclaim for real.
        let mut rest = std::io::Cursor::new(vec![0u8; 19]);
        while fb.read_from(&mut rest).unwrap() > 0 {}
        let _ = fb.next_request();
        fb.reclaim(8);
        assert_eq!(fb.capacity(), 8);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn blocks_zero_is_preserved_for_the_engine_to_clamp() {
        let req = Request::Io {
            seq: 0,
            write: false,
            disk: 0,
            block: 0,
            blocks: 0,
        };
        assert_eq!(roundtrip_request(&req), req);
    }
}
