//! The payload data plane: a slot-indexed slab block store with CRC32C
//! integrity, plus the deterministic "virtual disk image" every block's
//! contents are derived from.
//!
//! # Slab layout
//!
//! The cache core already interns every resident block to a dense
//! [`Slot`](pc_cache::Slot), recycled through the `BlockTable`
//! free-list on eviction. The slab piggybacks on that numbering: one
//! contiguous `Vec<u8>` arena holds `block_bytes`-sized frames, and
//! slot *s* lives at byte offset `s × block_bytes` — data placement is
//! a multiply, no map lookup, no per-block allocation. Two parallel
//! vectors carry the per-slot checksum (`Vec<u32>`, computed on WRITE
//! ingest, verified on READ hit) and the owner tag that guards
//! free-list reuse: a recycled slot whose tag names the *previous*
//! tenant is treated as absent and refilled, so stale bytes can never
//! be served — the churn tests pin this.
//!
//! The slab grows lazily in `CHUNK_BLOCKS`-frame steps as data
//! requests touch higher slots, so a metadata-only server never
//! allocates payload memory at all.
//!
//! # The virtual disk image
//!
//! There is no physical backing store: the "disk image" of block
//! `(disk, block)` is the deterministic byte stream
//! [`fill_block`] derives from those coordinates (splitmix64 over a
//! seed mixed from both). A READ miss synthesizes the image into the
//! slab; any client can re-derive and verify the same bytes — which is
//! exactly what `pc-loadgen --payload` does on every READ reply. The
//! semantic caveat: a `WRITE_DATA` overwrites the *cached* copy (and
//! its CRC), but an evicted block's next read returns the image again,
//! because evictions write to a disk that exists only as a function.

use pc_crc::crc32c;

/// Slab growth quantum, in frames: 4 MiB steps at the default 4 KiB
/// block, coarse enough to keep growth rare and fine enough that a
/// small cache does not overallocate.
const CHUNK_BLOCKS: usize = 1024;

/// Fills `buf` with the deterministic disk image of `(disk, block)`:
/// a splitmix64 stream seeded from the coordinates. Any reader can
/// re-derive (and so verify) any block's pristine contents.
pub fn fill_block(disk: u32, block: u64, buf: &mut [u8]) {
    // One multiplicative mix keeps neighbouring blocks' streams
    // unrelated even though their seeds differ by one.
    let mut state = (u64::from(disk) << 32 | 0x5EED)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(block.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    let mut chunks = buf.chunks_exact_mut(8);
    for chunk in &mut chunks {
        state = splitmix(state);
        chunk.copy_from_slice(&state.to_le_bytes());
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        state = splitmix(state);
        let bytes = state.to_le_bytes();
        tail.copy_from_slice(&bytes[..tail.len()]);
    }
}

fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a verified slab read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The frame verified clean and its bytes were appended.
    Clean,
    /// The frame failed its CRC32C check: nothing was appended, the
    /// failure was counted, and the frame was refilled from the disk
    /// image so later reads recover.
    Corrupt,
}

/// Per-shard slab block store: slot-indexed frames + parallel CRC and
/// owner-tag vectors. Single-threaded by construction — each shard
/// thread owns its store, like its cache.
#[derive(Debug)]
pub struct BlockStore {
    block_bytes: usize,
    /// Flip one byte before every Nth verified read (0 = never): the
    /// deterministic corruption fault injection behind `--corrupt-rate`.
    corrupt_every: u64,
    /// Verified reads so far (drives the injection cadence).
    reads: u64,
    crc_failures: u64,
    /// The arena: frame `s` at `s × block_bytes`.
    data: Vec<u8>,
    /// CRC32C per frame, computed at store/fill time.
    crcs: Vec<u32>,
    /// Which `(disk, block)` the frame's bytes belong to. `None` for a
    /// never-written frame; a stale tag (slot recycled by the
    /// free-list) reads as absent, so stale bytes are never served.
    owners: Vec<Option<(u32, u64)>>,
}

impl BlockStore {
    /// An empty store serving `block_bytes`-sized frames.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero.
    #[must_use]
    pub fn new(block_bytes: usize, corrupt_every: u64) -> Self {
        assert!(block_bytes > 0, "blocks must carry at least one byte");
        BlockStore {
            block_bytes,
            corrupt_every,
            reads: 0,
            crc_failures: 0,
            data: Vec::new(),
            crcs: Vec::new(),
            owners: Vec::new(),
        }
    }

    /// Payload bytes per block.
    #[must_use]
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// CRC verification failures detected so far (the STATS counter).
    #[must_use]
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures
    }

    /// Slab bytes currently allocated (for footprint accounting).
    #[must_use]
    pub fn slab_bytes(&self) -> usize {
        self.data.len()
    }

    /// Grows the arena (in whole chunks) until `slot` has a frame.
    fn ensure(&mut self, slot: usize) {
        if slot < self.owners.len() {
            return;
        }
        let frames = (slot + 1).div_ceil(CHUNK_BLOCKS) * CHUNK_BLOCKS;
        self.data.resize(frames * self.block_bytes, 0);
        self.crcs.resize(frames, 0);
        self.owners.resize(frames, None);
    }

    fn frame_range(&self, slot: usize) -> std::ops::Range<usize> {
        slot * self.block_bytes..(slot + 1) * self.block_bytes
    }

    /// Stores client-written `bytes` into `slot`'s frame, stamping the
    /// checksum and the owner tag. `bytes` must be one block.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly one block long.
    pub fn store(&mut self, slot: usize, disk: u32, block: u64, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.block_bytes, "store takes one block");
        self.ensure(slot);
        let range = self.frame_range(slot);
        self.data[range].copy_from_slice(bytes);
        self.crcs[slot] = crc32c(bytes);
        self.owners[slot] = Some((disk, block));
    }

    /// Synthesizes `(disk, block)`'s disk image into `slot`'s frame
    /// (the READ-miss fill path).
    pub fn fill(&mut self, slot: usize, disk: u32, block: u64) {
        self.ensure(slot);
        let range = self.frame_range(slot);
        fill_block(disk, block, &mut self.data[range.clone()]);
        self.crcs[slot] = crc32c(&self.data[range]);
        self.owners[slot] = Some((disk, block));
    }

    /// Serves one block into `out`.
    ///
    /// `slot == None` (the block is not resident — e.g. evicted by a
    /// later block of the same multi-block request) synthesizes the
    /// disk image straight into the reply. A resident slot is verified
    /// against its stored CRC first; an owner-tag mismatch (free-list
    /// reuse, prefetch-admitted block) refills the frame before
    /// serving, so stale bytes never leave the store.
    pub fn read_into(
        &mut self,
        slot: Option<usize>,
        disk: u32,
        block: u64,
        out: &mut Vec<u8>,
    ) -> ReadOutcome {
        let Some(slot) = slot else {
            let at = out.len();
            out.resize(at + self.block_bytes, 0);
            fill_block(disk, block, &mut out[at..]);
            return ReadOutcome::Clean;
        };
        self.ensure(slot);
        if self.owners[slot] != Some((disk, block)) {
            self.fill(slot, disk, block);
        } else {
            self.reads += 1;
            if self.corrupt_every > 0 && self.reads.is_multiple_of(self.corrupt_every) {
                // Deterministic fault injection: damage one byte, let
                // the verify below catch it.
                let at = slot * self.block_bytes;
                self.data[at] ^= 0xFF;
            }
            let range = self.frame_range(slot);
            if crc32c(&self.data[range]) != self.crcs[slot] {
                self.crc_failures += 1;
                // Recover: the pristine image replaces the damaged
                // frame so subsequent reads succeed.
                self.fill(slot, disk, block);
                return ReadOutcome::Corrupt;
            }
        }
        out.extend_from_slice(&self.data[self.frame_range(slot)]);
        ReadOutcome::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BB: usize = 512;

    fn image(disk: u32, block: u64) -> Vec<u8> {
        let mut buf = vec![0u8; BB];
        fill_block(disk, block, &mut buf);
        buf
    }

    #[test]
    fn fill_is_deterministic_and_distinct_across_blocks() {
        assert_eq!(image(1, 7), image(1, 7));
        assert_ne!(image(1, 7), image(1, 8));
        assert_ne!(image(1, 7), image(2, 7));
        // Short tails are filled too (no zero suffix).
        let mut small = [0u8; 13];
        fill_block(3, 3, &mut small);
        assert!(small.iter().any(|&b| b != 0));
    }

    #[test]
    fn store_then_read_roundtrips_with_crc() {
        let mut s = BlockStore::new(BB, 0);
        let payload = vec![0xC3u8; BB];
        s.store(5, 1, 42, &payload);
        let mut out = Vec::new();
        assert_eq!(s.read_into(Some(5), 1, 42, &mut out), ReadOutcome::Clean);
        assert_eq!(out, payload);
        assert_eq!(s.crc_failures(), 0);
    }

    #[test]
    fn nonresident_reads_synthesize_the_disk_image() {
        let mut s = BlockStore::new(BB, 0);
        let mut out = Vec::new();
        assert_eq!(s.read_into(None, 9, 100, &mut out), ReadOutcome::Clean);
        assert_eq!(out, image(9, 100));
        assert_eq!(s.slab_bytes(), 0, "a miss-through must not grow the slab");
    }

    /// The churn property: free-list slot reuse must never leak the
    /// previous tenant's bytes, across repeated eviction cycles.
    #[test]
    fn recycled_slots_never_alias_the_previous_tenant() {
        let mut s = BlockStore::new(BB, 0);
        for cycle in 0..10u64 {
            // Tenant A (distinct fill pattern per cycle) occupies slot 3…
            let a = vec![cycle as u8 | 0x40; BB];
            s.store(3, 0, cycle, &a);
            let mut out = Vec::new();
            assert_eq!(s.read_into(Some(3), 0, cycle, &mut out), ReadOutcome::Clean);
            assert_eq!(out, a);
            // …then is evicted and the slot recycled to tenant B: the
            // stale tag must force a refill from B's disk image, never
            // A's bytes.
            let b_block = 1_000 + cycle;
            let mut out = Vec::new();
            assert_eq!(
                s.read_into(Some(3), 0, b_block, &mut out),
                ReadOutcome::Clean
            );
            assert_eq!(out, image(0, b_block), "cycle {cycle}: stale bytes served");
            assert_ne!(out, a);
        }
        assert_eq!(s.crc_failures(), 0);
    }

    #[test]
    fn corruption_injection_is_detected_counted_and_recovered() {
        // Every 2nd verified read is damaged first.
        let mut s = BlockStore::new(BB, 2);
        s.fill(0, 4, 11);
        let mut out = Vec::new();
        assert_eq!(s.read_into(Some(0), 4, 11, &mut out), ReadOutcome::Clean);
        assert_eq!(s.read_into(Some(0), 4, 11, &mut out), ReadOutcome::Corrupt);
        assert_eq!(s.crc_failures(), 1);
        // The refill recovered the frame: the next clean read serves
        // the pristine image.
        let mut out = Vec::new();
        assert_eq!(s.read_into(Some(0), 4, 11, &mut out), ReadOutcome::Clean);
        assert_eq!(out, image(4, 11));
    }

    #[test]
    fn slab_grows_in_chunks_lazily() {
        let mut s = BlockStore::new(BB, 0);
        s.fill(0, 0, 0);
        assert_eq!(s.slab_bytes(), CHUNK_BLOCKS * BB);
        s.fill(CHUNK_BLOCKS, 0, 1);
        assert_eq!(s.slab_bytes(), 2 * CHUNK_BLOCKS * BB);
    }
}
