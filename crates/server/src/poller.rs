//! A minimal readiness poller over `epoll(7)` plus an `eventfd(2)`
//! waker — the only OS-specific corner of the serving layer.
//!
//! The repo takes no external dependencies, so instead of a `libc` or
//! `mio` crate this module declares the five syscall entry points it
//! needs directly; std already links the C library, so the symbols
//! resolve with nothing added. All `unsafe` in `pc-server` lives here,
//! behind four safe types:
//!
//! * [`Poller`] — an epoll instance: register interest in a file
//!   descriptor under a caller-chosen 64-bit token, then [`Poller::wait`]
//!   for batches of [`Event`]s.
//! * [`Waker`] — an eventfd registered alongside the sockets, so shard
//!   reply threads can interrupt a blocked `wait` from outside.
//! * [`Interest`] — which readiness edges a registration cares about
//!   (readable, writable, or both).
//! * [`Event`] — one readiness notification: the token back, plus
//!   readable/writable/error flags.
//!
//! The poller is level-triggered: a socket with unread bytes (or spare
//! send-buffer space, when writable interest is armed) reports ready on
//! every `wait` until the condition clears. The event loop in
//! `server.rs` leans on this — it only arms writable interest while a
//! connection's write queue is non-empty, so idle connections cost one
//! registration and no wakeups.
//!
//! On non-Linux hosts the module compiles to a stub whose constructor
//! returns [`std::io::ErrorKind::Unsupported`]; `server.rs` detects
//! that at runtime and falls back to the legacy thread-per-connection
//! path, keeping the crate portable without a `cfg` spread.

#[cfg(target_os = "linux")]
pub use imp::{set_send_buffer, Poller, Waker};

#[cfg(not(target_os = "linux"))]
pub use fallback::{set_send_buffer, Poller, Waker};

/// Readiness edges a registration subscribes to.
///
/// Error/hangup conditions are always reported regardless of interest,
/// matching epoll semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when the fd has bytes to read (or the peer closed).
    Readable,
    /// Wake when the fd can accept writes without blocking.
    Writable,
    /// Wake on either condition.
    Both,
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read, or the peer half-closed.
    pub readable: bool,
    /// The fd's send buffer has room.
    pub writable: bool,
    /// Error or hangup: the connection is dead either way, and the
    /// owner should read to collect the error and then close.
    pub error: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    // epoll_ctl ops.
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    // Event mask bits.
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    // Creation flags.
    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EFD_CLOEXEC: c_int = 0x80000;
    const EFD_NONBLOCK: c_int = 0x800;
    // setsockopt(SOL_SOCKET, SO_SNDBUF).
    const SOL_SOCKET: c_int = 1;
    const SO_SNDBUF: c_int = 7;

    /// The kernel's `struct epoll_event`. On x86-64 the kernel packs it
    /// (12 bytes); elsewhere natural alignment applies.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_of(interest: Interest) -> u32 {
        let base = EPOLLRDHUP;
        match interest {
            Interest::Readable => base | EPOLLIN,
            Interest::Writable => base | EPOLLOUT,
            Interest::Both => base | EPOLLIN | EPOLLOUT,
        }
    }

    /// A level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates a fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        /// Registers `fd` under `token` with the given interest.
        ///
        /// The caller keeps ownership of the fd and must [`deregister`]
        /// (or close the fd) before reusing the token.
        ///
        /// [`deregister`]: Poller::deregister
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
            Ok(())
        }

        /// Changes the interest set of an already-registered fd.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) })?;
            Ok(())
        }

        /// Removes an fd from the interest set. Harmless if the fd was
        /// already closed (the kernel auto-removes on final close).
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // A null event pointer is fine for DEL on any kernel >= 2.6.9.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })?;
            Ok(())
        }

        /// Blocks until at least one registered fd is ready or
        /// `timeout_ms` elapses (`None` = wait forever), appending
        /// ready [`Event`]s to `out`. Returns the number appended;
        /// `0` means the timeout fired. Spurious `EINTR` wakeups are
        /// absorbed and reported as a timeout so callers see a single
        /// "nothing ready" shape.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: Option<u32>) -> io::Result<usize> {
            const MAX_EVENTS: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout = match timeout_ms {
                Some(ms) => ms.min(c_int::MAX as u32) as c_int,
                None => -1,
            };
            let n = match cvt(unsafe {
                epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout)
            }) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &raw[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// An eventfd that interrupts [`Poller::wait`] from another thread.
    ///
    /// Register its [`fd`] with readable interest under a reserved
    /// token; [`wake`] makes the next (or current) `wait` report that
    /// token readable, and [`drain`] resets it. The fd is nonblocking,
    /// so `drain` never stalls the event loop.
    ///
    /// [`fd`]: Waker::fd
    /// [`wake`]: Waker::wake
    /// [`drain`]: Waker::drain
    #[derive(Debug)]
    pub struct Waker {
        efd: RawFd,
    }

    impl Waker {
        /// Creates a fresh nonblocking eventfd.
        pub fn new() -> io::Result<Waker> {
            let efd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(Waker { efd })
        }

        /// The fd to register with the poller.
        pub fn fd(&self) -> RawFd {
            self.efd
        }

        /// Makes the poller report this waker readable. Coalesces: any
        /// number of wakes before a drain produce one readiness.
        pub fn wake(&self) {
            let one: u64 = 1;
            // An EAGAIN here means the counter is already saturated —
            // the wakeup is pending regardless, so ignore the result.
            unsafe { write(self.efd, (&one as *const u64).cast(), 8) };
        }

        /// Consumes pending wakeups so level-triggered polling quiesces.
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            unsafe { read(self.efd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe { close(self.efd) };
        }
    }

    /// Shrinks (or grows) a socket's kernel send buffer.
    ///
    /// Test-facing: a tiny `SO_SNDBUF` forces partial writes, which is
    /// how the scatter-gather flush path gets exercised without a slow
    /// network. The kernel doubles the value for bookkeeping and
    /// clamps to its floor, so the effective size is "small", not
    /// exactly `bytes`.
    pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
        let val: c_int = bytes.min(c_int::MAX as usize) as c_int;
        cvt(unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                (&val as *const c_int).cast(),
                std::mem::size_of::<c_int>() as u32,
            )
        })?;
        Ok(())
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is Linux-only; use the legacy thread-per-connection path",
        )
    }

    /// Stub poller for non-Linux hosts: construction fails with
    /// [`io::ErrorKind::Unsupported`] and the server falls back to the
    /// legacy blocking path.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always fails on this platform.
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn register(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout_ms: Option<u32>) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub waker for non-Linux hosts.
    #[derive(Debug)]
    pub struct Waker {}

    impl Waker {
        /// Always fails on this platform.
        pub fn new() -> io::Result<Waker> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn fd(&self) -> RawFd {
            -1
        }

        /// Unreachable (no instance can exist).
        pub fn wake(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }

    /// No-op on this platform (partial-write tests are Linux-only).
    pub fn set_send_buffer(_fd: RawFd, _bytes: usize) -> io::Result<()> {
        Err(unsupported())
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// A loopback pair where one side has pending bytes: the poller
    /// must report it readable, and only it.
    #[test]
    fn reports_readable_only_when_bytes_are_pending() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::Readable)
            .unwrap();

        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(0)).unwrap();
        assert_eq!(n, 0, "nothing sent yet, nothing ready");

        client.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, Some(1000)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].error);
    }

    /// Level-triggered semantics: readiness repeats until the bytes are
    /// consumed, then quiesces.
    #[test]
    fn level_triggered_readiness_persists_until_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"x").unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 1, Interest::Readable)
            .unwrap();

        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(1000)).unwrap(), 1);
        events.clear();
        assert_eq!(
            poller.wait(&mut events, Some(100)).unwrap(),
            1,
            "unconsumed bytes must re-report under level triggering"
        );
        let mut buf = [0u8; 8];
        let _ = server.read(&mut buf).unwrap();
        events.clear();
        assert_eq!(poller.wait(&mut events, Some(0)).unwrap(), 0);
    }

    /// Writable interest toggles via `modify`, and an idle socket's
    /// send buffer reports writable immediately.
    #[test]
    fn modify_toggles_writable_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 2, Interest::Readable)
            .unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(0)).unwrap(), 0);

        poller
            .modify(server.as_raw_fd(), 2, Interest::Both)
            .unwrap();
        assert_eq!(poller.wait(&mut events, Some(1000)).unwrap(), 1);
        assert!(events[0].writable);

        poller
            .modify(server.as_raw_fd(), 2, Interest::Readable)
            .unwrap();
        events.clear();
        assert_eq!(poller.wait(&mut events, Some(0)).unwrap(), 0);
    }

    /// The waker interrupts a wait from another thread, coalesces, and
    /// drains clean.
    #[test]
    fn waker_interrupts_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller
            .register(waker.fd(), u64::MAX, Interest::Readable)
            .unwrap();

        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            remote.wake();
            remote.wake(); // coalesces with the first
        });
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(5000)).unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, u64::MAX);
        waker.drain();
        events.clear();
        assert_eq!(
            poller.wait(&mut events, Some(0)).unwrap(),
            0,
            "a drained waker must quiesce"
        );
    }

    /// Peer hangup surfaces as readable (so the owner reads the EOF)
    /// with the error flag only when the close was abortive.
    #[test]
    fn peer_close_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 3, Interest::Readable)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(1000)).unwrap(), 1);
        assert!(events[0].readable, "EOF must look like a read event");
    }

    /// `set_send_buffer` takes effect: a shrunken buffer fills after a
    /// bounded number of nonblocking writes against a non-reading peer.
    #[test]
    fn tiny_send_buffer_forces_partial_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        set_send_buffer(server.as_raw_fd(), 4096).unwrap();
        server.set_nonblocking(true).unwrap();

        let chunk = vec![0u8; 64 * 1024];
        let mut wrote = 0usize;
        let mut blocked = false;
        for _ in 0..64 {
            match server.write(&chunk) {
                Ok(n) => wrote += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    blocked = true;
                    break;
                }
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        assert!(blocked, "a tiny SO_SNDBUF must fill ({wrote} bytes fit)");
        assert!(wrote < 4 * 1024 * 1024, "buffer did not shrink: {wrote}");
    }
}
