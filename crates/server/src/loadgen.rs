//! The load generator: replays a [`Workload`] stream against a
//! `pc-server` over M concurrent connections, open-loop, and collects a
//! closing report (client-measured latency plus the server's own STATS
//! snapshot).
//!
//! The client speaks the overload protocol: a `BUSY` response parks the
//! request for a retry round paced by capped exponential backoff with
//! seeded jitter, up to a per-request retry budget; requests whose
//! budget runs out are counted as `exhausted` — the caller's signal
//! that the server stayed saturated beyond what backing off could
//! absorb. All sockets carry read *and* write timeouts, so a server
//! that accepts connections and then goes silent (or stops reading)
//! surfaces as an error instead of a hang.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_cache::IntervalHistogram;
use pc_trace::{IoOp, Record, RecordStream, Workload};
use pc_units::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pc_crc::crc32c;

use crate::data::fill_block;
use crate::protocol::{
    encode_data_request, encode_request, FrameBuf, Request, Response, DEFAULT_BLOCK_BYTES,
    MAX_DATA_BLOCKS,
};
use crate::stats::{parse_stats_json, ClusterSnapshot, StatsSummary};

/// Outstanding-request ring size per connection (latency timestamps and
/// retry metadata are stored by `seq % RING`).
const RING: usize = 1 << 16;

/// Maximum in-flight requests per connection: half the ring, so a
/// response always finds its send timestamp intact.
const WINDOW: i64 = (RING as i64) / 2;

/// Flush the send buffer at this size.
const SEND_CHUNK: usize = 48 * 1024;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Workload family to replay.
    pub workload: Workload,
    /// Concurrent hot connections (each drives a workload stream).
    pub conns: usize,
    /// Total connections to hold open, hot plus mostly-idle (0 = just
    /// the hot ones). Each idle connection sends a single I/O request
    /// after connecting — proving it is served, and landing it in the
    /// server's books — then stays open and silent until the hot phase
    /// ends, so the event loop's many-connection claim is actually
    /// drivable and measurable.
    pub connections: usize,
    /// Wall-clock duration; the run stops at the deadline or when the
    /// per-connection streams are exhausted, whichever is first.
    pub secs: f64,
    /// Base RNG seed (connection `i` streams with `seed + i`).
    pub seed: u64,
    /// Open-loop target rate in requests/second across all connections
    /// (`None` = as fast as the window allows).
    pub rate: Option<f64>,
    /// Resend attempts granted to a request answered `BUSY` before it
    /// counts as exhausted.
    pub retry_budget: u32,
    /// Base backoff before the first retry, in microseconds; doubles
    /// per attempt.
    pub backoff_us: u64,
    /// Backoff ceiling in microseconds.
    pub backoff_cap_us: u64,
    /// Socket read/write timeout: a server that stops reading or never
    /// replies surfaces as an error instead of a hang.
    pub io_timeout: Duration,
    /// Drive the protocol-v2 data plane: writes carry their block
    /// payloads (`WRITE_DATA`), reads are `READ_DATA`, and every `DATA`
    /// reply is verified — CRC32C and exact contents — against the
    /// deterministic disk image the server serves.
    pub payload: bool,
    /// Payload bytes per block in `payload` mode; must match the
    /// server's block size.
    pub block_bytes: usize,
    /// Replay a binary `.pct` trace file instead of generating
    /// `workload`: the file is memory-mapped and verified once, then
    /// records are dealt round-robin across the hot connections (each
    /// connection's subsequence keeps file order) straight off the
    /// shared map — no per-connection record vectors — so a captured
    /// production stream drives the server without recompiling and
    /// without materializing the trace.
    pub trace: Option<std::path::PathBuf>,
}

impl LoadgenConfig {
    /// A default run: synthetic workload, 8 connections, 2 seconds,
    /// 8 retries starting at 200 µs backoff capped at 20 ms, 10 s
    /// socket timeouts.
    #[must_use]
    pub fn new(addr: String) -> Self {
        LoadgenConfig {
            addr,
            workload: Workload::parse("synthetic").expect("synthetic exists"),
            conns: 8,
            connections: 0,
            secs: 2.0,
            seed: 42,
            rate: None,
            retry_budget: 8,
            backoff_us: 200,
            backoff_cap_us: 20_000,
            io_timeout: Duration::from_secs(10),
            payload: false,
            block_bytes: DEFAULT_BLOCK_BYTES,
            trace: None,
        }
    }

    /// The per-connection request bound: effectively unbounded for the
    /// lazy synthetic stream, capped for the eager generators so a
    /// duration-bounded run does not materialize tens of millions of
    /// records up front.
    #[must_use]
    fn stream_for(&self, conn: usize) -> pc_trace::RecordStream {
        let bounded = match self.workload {
            Workload::Synthetic(_) => self.workload.clone().with_requests(usize::MAX),
            _ => {
                let cap = self.workload.requests().min(2_000_000);
                self.workload.clone().with_requests(cap)
            }
        };
        bounded.stream(self.seed + conn as u64)
    }
}

/// A round-robin cursor over a shared memory-mapped trace: the cursor
/// for connection `c` yields records `c, c+stride, c+2·stride, …` in
/// file order, decoding each straight off the map. The map is verified
/// in full before any cursor is built, so `get` cannot fail here.
#[derive(Debug)]
struct StrideCursor {
    map: Arc<pc_tracefile::MappedTrace>,
    next: u64,
    stride: u64,
}

impl Iterator for StrideCursor {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.next >= self.map.len() {
            return None;
        }
        let record = self
            .map
            .get(self.next)
            .expect("trace verified before replay");
        self.next += self.stride;
        Some(record)
    }
}

/// What a connection worker replays: a generated workload stream or a
/// stride cursor over a shared mapped trace. One concrete type keeps
/// both spawn paths on a single `conn_worker` instantiation.
#[derive(Debug)]
enum ReplaySource {
    Generated(Box<RecordStream>),
    Mapped(StrideCursor),
}

impl Iterator for ReplaySource {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        match self {
            ReplaySource::Generated(s) => s.next(),
            ReplaySource::Mapped(c) => c.next(),
        }
    }
}

/// Per-connection results.
#[derive(Debug, Default, Clone)]
struct ConnStats {
    sent: u64,
    responses: u64,
    hits: u64,
    busy: u64,
    retries: u64,
    exhausted: u64,
    lat_ns_total: u64,
    payload_bytes: u64,
    verify_failures: u64,
    corrupt: u64,
    /// True when the `--secs` deadline stopped this connection; false
    /// when its record source (generator bound or trace file) ran dry.
    hit_deadline: bool,
}

/// The retry/backoff knobs a connection worker needs, detached from
/// [`LoadgenConfig`] so worker threads can own a copy.
#[derive(Debug, Clone, Copy)]
struct RetryKnobs {
    budget: u32,
    backoff_us: u64,
    backoff_cap_us: u64,
    io_timeout: Duration,
    seed: u64,
    /// `Some(block_bytes)` drives the data plane (`READ_DATA`/
    /// `WRITE_DATA`); `None` is the metadata protocol.
    data: Option<usize>,
}

/// The closing report of a load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests written to the sockets (first sends plus retries).
    pub sent: u64,
    /// I/O responses received.
    pub responses: u64,
    /// Responses flagged as cache hits.
    pub hits: u64,
    /// `BUSY` responses received (each retried send that bounces again
    /// counts again).
    pub busy_rejects: u64,
    /// Requests re-sent after a `BUSY`.
    pub retries: u64,
    /// Requests dropped after exhausting the retry budget — non-zero
    /// means the server stayed saturated beyond what backoff absorbed.
    pub exhausted: u64,
    /// Wall-clock duration of the request phase.
    pub elapsed: Duration,
    /// Client-measured round-trip latency distribution.
    pub latency_hist: IntervalHistogram,
    /// Mean client-measured latency.
    pub mean_latency: Duration,
    /// The server's final STATS payload, verbatim.
    pub stats_json: String,
    /// The parsed summary of `stats_json`.
    pub stats: StatsSummary,
    /// Mostly-idle connections held open through the run (the
    /// `connections` high-count mode; 0 otherwise).
    pub idle_conns: u64,
    /// Payload bytes carried by `DATA` replies (payload mode only).
    pub payload_bytes: u64,
    /// `DATA` replies whose CRC or contents did not match the expected
    /// disk image — any non-zero value is a data-plane bug.
    pub verify_failures: u64,
    /// `CORRUPT` replies: the server's CRC check caught a damaged slab
    /// frame (expected non-zero only under `--corrupt-rate` fault
    /// injection).
    pub corrupt: u64,
    /// Hot connections the `--secs` deadline stopped mid-stream. The
    /// rest ran their record source dry (trace exhaustion, or the
    /// generator's request bound) — the run is bounded by whichever
    /// comes first.
    pub deadline_stops: u64,
    /// Hot connections driven (`--conns`).
    pub hot_conns: u64,
}

impl LoadReport {
    /// Aggregate throughput over the request phase.
    #[must_use]
    pub fn req_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.responses as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Verified payload throughput over the request phase, in MB/s
    /// (decimal megabytes, counting `DATA` reply bytes only).
    #[must_use]
    pub fn payload_mb_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.payload_bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
        }
    }

    /// Client-observed hit ratio.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.hits as f64 / self.responses as f64
        }
    }

    /// The human-readable closing report.
    #[must_use]
    pub fn render(&self) -> String {
        let p50 = self.latency_hist.quantile(0.5);
        let p99 = self.latency_hist.quantile(0.99);
        let mut out = String::new();
        out.push_str(&format!(
            "sent={} responses={} elapsed={:.3}s rate={:.0} req/s hit_ratio={:.4}\n",
            self.sent,
            self.responses,
            self.elapsed.as_secs_f64(),
            self.req_per_sec(),
            self.hit_ratio(),
        ));
        out.push_str(&format!(
            "client latency: mean={:?} p50={} p99={}\n",
            self.mean_latency, p50, p99,
        ));
        out.push_str(&format!(
            "backpressure: busy_rejects={} retries={} exhausted={}\n",
            self.busy_rejects, self.retries, self.exhausted,
        ));
        // The run is bounded by min(source exhaustion, --secs); say
        // which bound actually ended it so a replay that quietly ran
        // out of trace is not mistaken for a full-duration run.
        out.push_str(&format!(
            "run end: {}\n",
            if self.deadline_stops == 0 {
                "source exhausted on every connection".to_owned()
            } else if self.deadline_stops >= self.hot_conns {
                "--secs deadline on every connection".to_owned()
            } else {
                format!(
                    "--secs deadline on {}/{} connections (source exhausted on the rest)",
                    self.deadline_stops, self.hot_conns,
                )
            }
        ));
        if self.payload_bytes > 0 || self.verify_failures > 0 || self.corrupt > 0 {
            out.push_str(&format!(
                "payload: bytes={} rate={:.1} MB/s verify_failures={} corrupt={} server_crc_failures={}\n",
                self.payload_bytes,
                self.payload_mb_per_sec(),
                self.verify_failures,
                self.corrupt,
                self.stats.crc_failures,
            ));
        }
        out.push_str(&format!(
            "server: requests={} hits={} energy_j={:.2} shards={} busy_rejects={} queue_hw={} (all energies > 0: {})\n",
            self.stats.requests,
            self.stats.hits,
            self.stats.energy_j,
            self.stats.shard_energy_j.len(),
            self.stats.busy_rejects,
            self.stats.queue_high_water,
            self.stats.shard_energy_j.iter().all(|&e| e > 0.0),
        ));
        // Present only when the server runs the adaptive meta-policy
        // AND it actually switched champions — the line greppable smoke
        // tests assert on.
        if self.stats.meta_switches > 0 {
            out.push_str(&format!(
                "server meta: switches={}\n",
                self.stats.meta_switches
            ));
        }
        if self.idle_conns > 0 || self.stats.io_connections > 0 {
            let per_conn = self
                .stats
                .io_buffer_bytes
                .checked_div(self.stats.io_connections)
                .unwrap_or(0);
            out.push_str(&format!(
                "conn-scale: idle_held={} server_fds={} server_buffer_bytes={} (~{per_conn} B/conn)\n",
                self.idle_conns, self.stats.io_connections, self.stats.io_buffer_bytes,
            ));
        }
        out
    }
}

/// Runs the load against a live server and collects the report.
///
/// # Errors
///
/// Propagates connection and socket errors, and reports a malformed or
/// unparseable STATS payload as `InvalidData`.
pub fn run_tcp(cfg: &LoadgenConfig) -> std::io::Result<LoadReport> {
    assert!(cfg.conns > 0, "need at least one connection");

    // File replay: memory-map the trace and verify every chunk up front
    // (a corrupt file must fail before any load hits the server); the
    // hot connections then share the map through round-robin cursors —
    // connection `c` replays records c, c+conns, c+2·conns, … in file
    // order, with no per-connection vectors and no per-record
    // allocation in the send loop.
    let trace_map: Option<Arc<pc_tracefile::MappedTrace>> = match &cfg.trace {
        Some(path) => {
            let map = pc_tracefile::MappedTrace::open(path)?;
            map.verify_all()?;
            Some(Arc::new(map))
        }
        None => None,
    };

    // High-count mode: everything past the hot `conns` is a
    // mostly-idle connection — opened up front, served one request,
    // then held silent so the final STATS snapshot observes the full
    // fd population on the server's IO-thread gauges.
    let idle_target = cfg.connections.saturating_sub(cfg.conns);
    let release = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(AtomicU64::new(0));
    let mut holders = Vec::new();
    if idle_target > 0 {
        let threads = idle_target.min(4);
        let per = idle_target.div_ceil(threads);
        for t in 0..threads {
            let (lo, hi) = (t * per, ((t + 1) * per).min(idle_target));
            if lo >= hi {
                break;
            }
            let addr = cfg.addr.clone();
            let release = Arc::clone(&release);
            let ready = Arc::clone(&ready);
            let timeout = cfg.io_timeout;
            holders.push(std::thread::spawn(move || {
                idle_holder(&addr, lo..hi, timeout, &ready, &release)
            }));
        }
    }

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(cfg.secs.max(0.01));
    let mut handles = Vec::with_capacity(cfg.conns);
    for conn in 0..cfg.conns {
        let addr = cfg.addr.clone();
        let stream = match &trace_map {
            Some(map) => ReplaySource::Mapped(StrideCursor {
                map: Arc::clone(map),
                next: conn as u64,
                stride: cfg.conns as u64,
            }),
            None => ReplaySource::Generated(Box::new(cfg.stream_for(conn))),
        };
        let pace_ns = cfg
            .rate
            .map(|r| ((1e9 * cfg.conns as f64) / r.max(1.0)) as u64);
        let knobs = RetryKnobs {
            budget: cfg.retry_budget,
            backoff_us: cfg.backoff_us.max(1),
            backoff_cap_us: cfg.backoff_cap_us.max(cfg.backoff_us.max(1)),
            io_timeout: cfg.io_timeout,
            seed: cfg.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            data: cfg.payload.then_some(cfg.block_bytes.max(1)),
        };
        handles.push(std::thread::spawn(move || {
            conn_worker(&addr, stream, deadline, pace_ns, knobs)
        }));
    }
    let mut sent = 0u64;
    let mut responses = 0u64;
    let mut hits = 0u64;
    let mut busy_rejects = 0u64;
    let mut retries = 0u64;
    let mut exhausted = 0u64;
    let mut lat_ns_total = 0u64;
    let mut payload_bytes = 0u64;
    let mut verify_failures = 0u64;
    let mut corrupt = 0u64;
    let mut deadline_stops = 0u64;
    let mut latency_hist = latency_histogram();
    for h in handles {
        let (stats, hist) = h
            .join()
            .map_err(|_| std::io::Error::other("worker panicked"))??;
        sent += stats.sent;
        responses += stats.responses;
        hits += stats.hits;
        busy_rejects += stats.busy;
        retries += stats.retries;
        exhausted += stats.exhausted;
        lat_ns_total += stats.lat_ns_total;
        payload_bytes += stats.payload_bytes;
        verify_failures += stats.verify_failures;
        corrupt += stats.corrupt;
        deadline_stops += u64::from(stats.hit_deadline);
        latency_hist.merge(&hist);
    }
    let elapsed = started.elapsed();

    // Every idle connection must be established (and its one request
    // answered) before the snapshot, or the gauge undercounts fds.
    if idle_target > 0 {
        let wait_until = Instant::now() + cfg.io_timeout;
        while ready.load(Ordering::Acquire) < idle_target as u64 {
            if Instant::now() > wait_until {
                break; // The holder thread will surface its own error.
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Final STATS over a fresh connection, after all load finished but
    // while the idle population is still holding its sockets open.
    let stats_json = fetch_stats(&cfg.addr, cfg.io_timeout)?;
    let stats = parse_stats_json(&stats_json).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "server STATS payload did not parse",
        )
    })?;
    release.store(true, Ordering::Release);
    let mut idle_conns = 0u64;
    for h in holders {
        let (h_sent, h_resp, h_hits, h_busy) = h
            .join()
            .map_err(|_| std::io::Error::other("idle holder panicked"))??;
        sent += h_sent;
        responses += h_resp;
        hits += h_hits;
        busy_rejects += h_busy;
        idle_conns += h_resp + h_busy;
    }
    let mean_latency = lat_ns_total
        .checked_div(responses)
        .map_or(Duration::ZERO, Duration::from_nanos);
    Ok(LoadReport {
        sent,
        responses,
        hits,
        busy_rejects,
        retries,
        exhausted,
        elapsed,
        latency_hist,
        mean_latency,
        stats_json,
        stats,
        idle_conns,
        payload_bytes,
        verify_failures,
        corrupt,
        deadline_stops,
        hot_conns: cfg.conns as u64,
    })
}

/// Appends the deterministic disk-image payload for `blocks` blocks
/// starting at `(disk, block)` — exactly the bytes the server stores on
/// a write and synthesizes on a miss, so `DATA` replies verify
/// bit-for-bit.
fn image_payload(disk: u32, block: u64, blocks: u16, block_bytes: usize, buf: &mut Vec<u8>) {
    let n = usize::from(blocks.max(1));
    let at = buf.len();
    buf.resize(at + n * block_bytes, 0);
    for i in 0..n {
        let lo = at + i * block_bytes;
        fill_block(
            disk,
            block.wrapping_add(i as u64),
            &mut buf[lo..lo + block_bytes],
        );
    }
}

/// Encodes one load request: the metadata frame, or — when `data`
/// carries the block size — the payload frame, with a write's image
/// bytes regenerated into `scratch` on the spot. Regeneration is what
/// makes `BUSY` retries free: nothing sent ever needs to be stored.
#[allow(clippy::too_many_arguments)]
fn encode_load_request(
    seq: u32,
    write: bool,
    disk: u32,
    block: u64,
    blocks: u16,
    data: Option<usize>,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) {
    match data {
        None => encode_request(
            &Request::Io {
                seq,
                write,
                disk,
                block,
                blocks,
            },
            out,
        ),
        Some(bb) => {
            scratch.clear();
            if write {
                image_payload(disk, block, blocks, bb, scratch);
            }
            encode_data_request(seq, write, disk, block, blocks, scratch, out);
        }
    }
}

/// Opens the `ids` slice of mostly-idle connections: each connects,
/// sends a single READ, waits for the reply (counting it toward the
/// run's books so client and server totals still balance), then holds
/// the socket open and silent until `release` flips. Returns
/// `(sent, responses, hits, busy)` for the slice.
fn idle_holder(
    addr: &str,
    ids: std::ops::Range<usize>,
    timeout: Duration,
    ready: &AtomicU64,
    release: &AtomicBool,
) -> std::io::Result<(u64, u64, u64, u64)> {
    let mut held = Vec::with_capacity(ids.len());
    let (mut sent, mut responses, mut hits, mut busy) = (0u64, 0u64, 0u64, 0u64);
    for id in ids {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let mut wire = Vec::new();
        encode_request(
            &Request::Io {
                seq: id as u32,
                write: false,
                disk: (id % 61) as u32,
                block: (id as u64).wrapping_mul(0x9E37_79B9),
                blocks: 1,
            },
            &mut wire,
        );
        stream.write_all(&wire)?;
        sent += 1;
        let mut fb = FrameBuf::new();
        'reply: loop {
            match fb
                .next_response()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            {
                Some(Response::Io { hit, .. }) => {
                    responses += 1;
                    if hit {
                        hits += 1;
                    }
                    break 'reply;
                }
                Some(Response::Busy { .. }) => {
                    busy += 1;
                    break 'reply;
                }
                Some(_) => continue,
                None => {
                    if fb.read_from(&mut stream)? == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed an idle connection's first request",
                        ));
                    }
                }
            }
        }
        held.push(stream);
        ready.fetch_add(1, Ordering::Release);
    }
    while !release.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(held);
    Ok((sent, responses, hits, busy))
}

/// Client-side latency bins: 1 µs … ~4.5 min in 28 doubling bins.
fn latency_histogram() -> IntervalHistogram {
    IntervalHistogram::geometric(SimDuration::from_micros(1), 28)
}

/// Fetches a STATS snapshot over a dedicated connection. Both socket
/// directions carry `timeout`, so a server that accepts but never
/// replies (or never reads) fails the call instead of hanging it.
///
/// # Errors
///
/// Propagates socket errors; a closed or unframeable stream is
/// `InvalidData`/`UnexpectedEof`; a silent server is
/// `WouldBlock`/`TimedOut`.
pub fn fetch_stats(addr: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut wire = Vec::new();
    encode_request(&Request::Stats { seq: 0 }, &mut wire);
    stream.write_all(&wire)?;
    let mut fb = FrameBuf::new();
    loop {
        match fb
            .next_response()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            Some(Response::Stats { json, .. }) => return Ok(json),
            Some(_) => continue,
            None => {
                if fb.read_from(&mut stream)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed before STATS reply",
                    ));
                }
            }
        }
    }
}

/// Asks the server to drain and exit (the `SHUTDOWN` opcode), waiting
/// for the acknowledgement.
///
/// # Errors
///
/// Propagates socket errors.
pub fn send_shutdown(addr: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut wire = Vec::new();
    encode_request(&Request::Shutdown { seq: 0 }, &mut wire);
    stream.write_all(&wire)?;
    let mut fb = FrameBuf::new();
    loop {
        match fb
            .next_response()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            Some(Response::Shutdown { .. }) => return Ok(()),
            Some(_) => continue,
            None => {
                if fb.read_from(&mut stream)? == 0 {
                    return Ok(()); // Ack lost in the drain: still shut down.
                }
            }
        }
    }
}

/// A request bounced with `BUSY`, travelling from the receiver thread
/// back to the sender for a backoff-paced resend.
#[derive(Debug, Clone, Copy)]
struct RetryReq {
    disk: u32,
    block: u64,
    blocks: u16,
    write: bool,
    /// 1 for the first resend, incremented per bounce.
    attempt: u32,
}

/// Packs the fields a retry needs into the per-slot metadata word:
/// `disk:32 | blocks:16 | attempt:15 | write:1`.
fn pack_meta(disk: u32, blocks: u16, attempt: u32, write: bool) -> u64 {
    (u64::from(disk) << 32)
        | (u64::from(blocks) << 16)
        | (u64::from(attempt & 0x7FFF) << 1)
        | u64::from(write)
}

/// Sleeps one capped-exponential backoff round (with jitter, so
/// connections do not resynchronize), then resends every pending retry
/// under fresh sequence numbers. Returns the number of resends.
#[allow(clippy::too_many_arguments)]
fn resend_round(
    pending: &mut Vec<RetryReq>,
    write_half: &mut TcpStream,
    buf: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
    seq: &mut u32,
    start: Instant,
    ring: &[AtomicU64],
    meta: &[(AtomicU64, AtomicU64)],
    outstanding: &AtomicI64,
    rng: &mut StdRng,
    knobs: &RetryKnobs,
) -> std::io::Result<u64> {
    if pending.is_empty() {
        return Ok(0);
    }
    // One sleep per round, scaled to the round's furthest-along request.
    let attempt = pending.iter().map(|r| r.attempt).max().unwrap_or(1).max(1);
    let base = knobs
        .backoff_us
        .saturating_mul(1u64 << (attempt - 1).min(20));
    let us = (base.min(knobs.backoff_cap_us) as f64 * rng.gen_range(0.5..1.5)) as u64;
    // Flush queued fresh requests first so they are not held back by
    // the sleep.
    if !buf.is_empty() {
        write_half.write_all(buf)?;
        buf.clear();
    }
    std::thread::sleep(Duration::from_micros(us.max(1)));
    let n = pending.len() as u64;
    for r in pending.drain(..) {
        let slot = *seq as usize % RING;
        ring[slot].store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        meta[slot].0.store(
            pack_meta(r.disk, r.blocks, r.attempt, r.write),
            Ordering::Relaxed,
        );
        meta[slot].1.store(r.block, Ordering::Relaxed);
        encode_load_request(
            *seq, r.write, r.disk, r.block, r.blocks, knobs.data, scratch, buf,
        );
        *seq = seq.wrapping_add(1);
        outstanding.fetch_add(1, Ordering::AcqRel);
    }
    write_half.write_all(buf)?;
    buf.clear();
    Ok(n)
}

/// One connection: a sender thread (this one) paced open-loop plus a
/// receiver thread matching responses to send timestamps. `BUSY`
/// responses flow back to the sender over a retry channel and are
/// resent after a backoff, until the per-request budget runs out.
fn conn_worker(
    addr: &str,
    records: ReplaySource,
    deadline: Instant,
    pace_ns: Option<u64>,
    knobs: RetryKnobs,
) -> std::io::Result<(ConnStats, IntervalHistogram)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(knobs.io_timeout))?;
    let mut read_half = stream.try_clone()?;
    read_half.set_read_timeout(Some(Duration::from_millis(50)))?;

    let ring: Arc<Vec<AtomicU64>> = Arc::new((0..RING).map(|_| AtomicU64::new(0)).collect());
    let meta: Arc<Vec<(AtomicU64, AtomicU64)>> = Arc::new(
        (0..RING)
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect(),
    );
    let outstanding = Arc::new(AtomicI64::new(0));
    let sender_done = Arc::new(AtomicBool::new(false));
    let abort = Arc::new(AtomicBool::new(false));
    let (retry_tx, retry_rx) = channel::<RetryReq>();
    let start = Instant::now();

    let receiver = {
        let ring = Arc::clone(&ring);
        let meta = Arc::clone(&meta);
        let outstanding = Arc::clone(&outstanding);
        let sender_done = Arc::clone(&sender_done);
        let abort = Arc::clone(&abort);
        let budget = knobs.budget;
        let data = knobs.data;
        std::thread::spawn(move || -> std::io::Result<(ConnStats, IntervalHistogram)> {
            let mut fb = FrameBuf::new();
            let mut stats = ConnStats::default();
            let mut hist = latency_histogram();
            let mut expected = Vec::new();
            let hard_stop = deadline + Duration::from_secs(15);
            loop {
                while let Some(resp) = fb
                    .next_response()
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
                {
                    match resp {
                        Response::Io { seq, hit, .. } => {
                            let sent_ns = ring[seq as usize % RING].load(Ordering::Relaxed);
                            let now_ns = start.elapsed().as_nanos() as u64;
                            let lat_ns = now_ns.saturating_sub(sent_ns);
                            stats.lat_ns_total += lat_ns;
                            hist.record(SimDuration::from_micros((lat_ns / 1_000).max(1)));
                            stats.responses += 1;
                            stats.hits += u64::from(hit);
                            outstanding.fetch_sub(1, Ordering::AcqRel);
                        }
                        Response::Data {
                            seq, hit, payload, ..
                        } => {
                            let slot = seq as usize % RING;
                            let sent_ns = ring[slot].load(Ordering::Relaxed);
                            let now_ns = start.elapsed().as_nanos() as u64;
                            let lat_ns = now_ns.saturating_sub(sent_ns);
                            stats.lat_ns_total += lat_ns;
                            hist.record(SimDuration::from_micros((lat_ns / 1_000).max(1)));
                            stats.responses += 1;
                            stats.hits += u64::from(hit);
                            stats.payload_bytes += payload.len() as u64;
                            if let Some(bb) = data {
                                // Recover the request from the slot
                                // metadata and verify the reply against
                                // the deterministic image: CRC first,
                                // then exact bytes.
                                let w1 = meta[slot].0.load(Ordering::Relaxed);
                                let block = meta[slot].1.load(Ordering::Relaxed);
                                expected.clear();
                                image_payload(
                                    (w1 >> 32) as u32,
                                    block,
                                    (w1 >> 16) as u16,
                                    bb,
                                    &mut expected,
                                );
                                if crc32c(&payload) != crc32c(&expected) || payload != expected {
                                    stats.verify_failures += 1;
                                }
                            }
                            outstanding.fetch_sub(1, Ordering::AcqRel);
                        }
                        Response::Corrupt { .. } => {
                            // Detected server-side and counted there too;
                            // the request is answered, not retried.
                            stats.corrupt += 1;
                            outstanding.fetch_sub(1, Ordering::AcqRel);
                        }
                        Response::Busy { seq, .. } => {
                            stats.busy += 1;
                            let slot = seq as usize % RING;
                            let w1 = meta[slot].0.load(Ordering::Relaxed);
                            let attempt = ((w1 >> 1) & 0x7FFF) as u32;
                            // Forward-then-decrement: the sender treats
                            // "outstanding is zero" as proof the retry
                            // channel has gone quiet, so the enqueue
                            // must be visible before the count drops.
                            if attempt >= budget
                                || retry_tx
                                    .send(RetryReq {
                                        disk: (w1 >> 32) as u32,
                                        blocks: (w1 >> 16) as u16,
                                        write: w1 & 1 == 1,
                                        block: meta[slot].1.load(Ordering::Relaxed),
                                        attempt: attempt + 1,
                                    })
                                    .is_err()
                            {
                                stats.exhausted += 1;
                            }
                            outstanding.fetch_sub(1, Ordering::AcqRel);
                        }
                        _ => {}
                    }
                }
                if sender_done.load(Ordering::Acquire) && outstanding.load(Ordering::Acquire) <= 0 {
                    return Ok((stats, hist));
                }
                if abort.load(Ordering::Acquire) || Instant::now() > hard_stop {
                    return Ok((stats, hist)); // Give up on stragglers.
                }
                match fb.read_from(&mut read_half) {
                    Ok(0) => return Ok((stats, hist)),
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(e) => return Err(e),
                }
            }
        })
    };

    let mut write_half = stream;
    let mut rng = StdRng::seed_from_u64(knobs.seed);
    let send_result = (|| -> std::io::Result<(u64, u64, bool)> {
        let mut buf = Vec::with_capacity(SEND_CHUNK + 64);
        let mut scratch = Vec::new();
        let mut seq = 0u32;
        let mut sent = 0u64;
        let mut retries = 0u64;
        let mut hit_deadline = false;
        let mut pending: Vec<RetryReq> = Vec::new();
        // Payload replies are block-sized, not 14 bytes: cap the
        // in-flight window so a connection's reply backlog stays a few
        // MiB instead of WINDOW × block_bytes.
        let window = if knobs.data.is_some() {
            WINDOW.min(1024)
        } else {
            WINDOW
        };
        for record in records {
            // Check the clock often enough for the deadline to bite
            // without paying a syscall per request, and pick up bounced
            // requests on the same cadence.
            if sent.is_multiple_of(512) {
                if Instant::now() >= deadline {
                    hit_deadline = true;
                    break;
                }
                pending.extend(retry_rx.try_iter());
                retries += resend_round(
                    &mut pending,
                    &mut write_half,
                    &mut buf,
                    &mut scratch,
                    &mut seq,
                    start,
                    &ring,
                    &meta,
                    &outstanding,
                    &mut rng,
                    &knobs,
                )?;
            }
            if let Some(gap) = pace_ns {
                let target = start + Duration::from_nanos(sent * gap);
                if !buf.is_empty() && Instant::now() < target {
                    write_half.write_all(&buf)?;
                    buf.clear();
                }
                // A paced stream can sit in this wait far longer than
                // the 512-send clock cadence above — without its own
                // deadline check, --trace --secs overshoots by up to
                // 512 paced gaps.
                while Instant::now() < target {
                    if Instant::now() >= deadline {
                        hit_deadline = true;
                        break;
                    }
                    std::thread::yield_now();
                }
                if hit_deadline {
                    break;
                }
            }
            while outstanding.load(Ordering::Relaxed) >= window {
                if !buf.is_empty() {
                    write_half.write_all(&buf)?;
                    buf.clear();
                }
                std::thread::yield_now();
                if Instant::now() >= deadline {
                    hit_deadline = true;
                    break;
                }
            }
            // A full window at the deadline ends the run; sending one
            // more record anyway would push past both bounds.
            if hit_deadline {
                break;
            }
            let slot = seq as usize % RING;
            ring[slot].store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let write = record.op == IoOp::Write;
            let disk = record.block.disk().index();
            let block = record.block.block().number();
            let mut blocks = u16::try_from(record.blocks).unwrap_or(u16::MAX);
            if knobs.data.is_some() {
                blocks = blocks.clamp(1, MAX_DATA_BLOCKS);
            }
            meta[slot]
                .0
                .store(pack_meta(disk, blocks, 0, write), Ordering::Relaxed);
            meta[slot].1.store(block, Ordering::Relaxed);
            encode_load_request(
                seq,
                write,
                disk,
                block,
                blocks,
                knobs.data,
                &mut scratch,
                &mut buf,
            );
            seq = seq.wrapping_add(1);
            sent += 1;
            outstanding.fetch_add(1, Ordering::AcqRel);
            if buf.len() >= SEND_CHUNK {
                write_half.write_all(&buf)?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            write_half.write_all(&buf)?;
            buf.clear();
        }

        // Drain: keep resending bounced requests until every send has
        // been answered. The grace period is the socket timeout — the
        // same budget we give a silent server elsewhere; giving up
        // flips `abort` so the receiver stops waiting for stragglers.
        let drain_deadline =
            deadline.max(Instant::now()) + knobs.io_timeout.max(Duration::from_millis(100));
        loop {
            pending.extend(retry_rx.try_iter());
            if pending.is_empty() {
                if outstanding.load(Ordering::Acquire) <= 0 {
                    // Every enqueue precedes its decrement, so with the
                    // count at zero one more look at the channel is
                    // conclusive.
                    pending.extend(retry_rx.try_iter());
                    if pending.is_empty() {
                        break;
                    }
                } else {
                    match retry_rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(r) => pending.push(r),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
            retries += resend_round(
                &mut pending,
                &mut write_half,
                &mut buf,
                &mut scratch,
                &mut seq,
                start,
                &ring,
                &meta,
                &outstanding,
                &mut rng,
                &knobs,
            )?;
            if Instant::now() > drain_deadline {
                abort.store(true, Ordering::Release);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "server went silent: {} requests still unanswered after the drain grace",
                        outstanding.load(Ordering::Acquire).max(0)
                    ),
                ));
            }
        }
        Ok((sent, retries, hit_deadline))
    })();

    if send_result.is_err() {
        abort.store(true, Ordering::Release);
    }
    sender_done.store(true, Ordering::Release);
    let recv_result = receiver
        .join()
        .map_err(|_| std::io::Error::other("receiver panicked"))?;
    let (sent, retries, hit_deadline) = send_result?;
    let (mut stats, hist) = recv_result?;
    stats.sent = sent + retries;
    stats.retries = retries;
    stats.hit_deadline = hit_deadline;
    Ok((stats, hist))
}

/// The closing report of a deterministic in-process run: client-side
/// tallies plus the final cluster snapshot with closed energy books.
#[derive(Debug)]
pub struct InProcReport {
    /// Requests submitted to the cluster.
    pub submitted: u64,
    /// Requests admitted and executed.
    pub served: u64,
    /// Served requests that hit the cache.
    pub hits: u64,
    /// Requests rejected at a full shard queue (`submitted` minus
    /// `served`); rejected requests never touch the energy books.
    pub busy_rejects: u64,
    /// The final snapshot, with idle tails closed.
    pub snapshot: ClusterSnapshot,
}

/// Runs the workload through an in-process cluster (no sockets): the
/// deterministic mode. Backpressure is modelled in virtual time — with
/// a `--slow-shard` delay and a tiny queue bound the same records are
/// rejected on every run.
#[must_use]
pub fn run_in_process(
    engine: &crate::shard::EngineConfig,
    workload: &Workload,
    seed: u64,
) -> InProcReport {
    let mut cluster = crate::shard::InProcCluster::new(engine);
    let mut submitted = 0u64;
    let mut served = 0u64;
    let mut hits = 0u64;
    for record in workload.stream(seed) {
        submitted += 1;
        if let Some(outcome) = cluster.submit(&record).served() {
            served += 1;
            hits += u64::from(outcome.hit);
        }
    }
    let busy_rejects = cluster.busy_rejects().iter().sum();
    InProcReport {
        submitted,
        served,
        hits,
        busy_rejects,
        snapshot: cluster.into_snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::EngineConfig;

    #[test]
    fn in_process_mode_is_deterministic_end_to_end() {
        let w = Workload::parse("synthetic").unwrap().with_requests(4_000);
        let engine = EngineConfig::new(2, 4);
        let r1 = run_in_process(&engine, &w, 7);
        let r2 = run_in_process(&engine, &w, 7);
        assert_eq!(r1.submitted, 4_000);
        assert_eq!(r1.served, 4_000, "an unslowed cluster admits everything");
        assert_eq!(r1.busy_rejects, 0);
        assert_eq!(
            (r1.submitted, r1.served, r1.hits),
            (r2.submitted, r2.served, r2.hits)
        );
        assert_eq!(r1.snapshot.to_json(), r2.snapshot.to_json());
        assert!(r1.hits > 0, "a 4k-request zipf stream must hit sometimes");
    }

    #[test]
    fn retry_metadata_packs_and_unpacks() {
        let w1 = pack_meta(7, 16, 3, true);
        assert_eq!((w1 >> 32) as u32, 7);
        assert_eq!((w1 >> 16) as u16, 16);
        assert_eq!(((w1 >> 1) & 0x7FFF) as u32, 3);
        assert_eq!(w1 & 1, 1);
        let w2 = pack_meta(u32::MAX, u16::MAX, 0x7FFF, false);
        assert_eq!((w2 >> 32) as u32, u32::MAX);
        assert_eq!((w2 >> 16) as u16, u16::MAX);
        assert_eq!(((w2 >> 1) & 0x7FFF) as u32, 0x7FFF);
        assert_eq!(w2 & 1, 0);
    }

    #[test]
    fn stride_cursors_deal_records_round_robin_in_file_order() {
        // The mapped replacement must preserve the old deal semantics:
        // connection c gets records c, c+conns, c+2·conns, … in order.
        let workload = Workload::parse("synthetic").unwrap().with_requests(103);
        let records: Vec<Record> = workload.clone().stream(11).collect();
        let dir = std::env::temp_dir().join(format!("pc-loadgen-deal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deal.pct");
        pc_tracefile::write_records(&path, workload.disk_count(), records.iter().copied()).unwrap();

        let map = Arc::new(pc_tracefile::MappedTrace::open(&path).unwrap());
        map.verify_all().unwrap();
        let conns = 3;
        for conn in 0..conns {
            let dealt: Vec<Record> = StrideCursor {
                map: Arc::clone(&map),
                next: conn as u64,
                stride: conns as u64,
            }
            .collect();
            let expected: Vec<Record> = records.iter().skip(conn).step_by(conns).copied().collect();
            assert_eq!(dealt, expected, "connection {conn}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eager_workloads_get_a_request_cap() {
        let cfg = LoadgenConfig {
            workload: Workload::parse("oltp").unwrap().with_requests(usize::MAX),
            ..LoadgenConfig::new("unused".into())
        };
        // Must not try to materialize usize::MAX records.
        let n = cfg.stream_for(0).take(3).count();
        assert_eq!(n, 3);
    }
}
