//! The load generator: replays a [`Workload`] stream against a
//! `pc-server` over M concurrent connections, open-loop, and collects a
//! closing report (client-measured latency plus the server's own STATS
//! snapshot).

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_cache::IntervalHistogram;
use pc_trace::{IoOp, Workload};
use pc_units::SimDuration;

use crate::protocol::{encode_request, FrameBuf, Request, Response};
use crate::stats::{parse_stats_json, StatsSummary};

/// Outstanding-request ring size per connection (latency timestamps are
/// stored by `seq % RING`).
const RING: usize = 1 << 16;

/// Maximum in-flight requests per connection: half the ring, so a
/// response always finds its send timestamp intact.
const WINDOW: i64 = (RING as i64) / 2;

/// Flush the send buffer at this size.
const SEND_CHUNK: usize = 48 * 1024;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Workload family to replay.
    pub workload: Workload,
    /// Concurrent connections.
    pub conns: usize,
    /// Wall-clock duration; the run stops at the deadline or when the
    /// per-connection streams are exhausted, whichever is first.
    pub secs: f64,
    /// Base RNG seed (connection `i` streams with `seed + i`).
    pub seed: u64,
    /// Open-loop target rate in requests/second across all connections
    /// (`None` = as fast as the window allows).
    pub rate: Option<f64>,
}

impl LoadgenConfig {
    /// A default run: synthetic workload, 8 connections, 2 seconds.
    #[must_use]
    pub fn new(addr: String) -> Self {
        LoadgenConfig {
            addr,
            workload: Workload::parse("synthetic").expect("synthetic exists"),
            conns: 8,
            secs: 2.0,
            seed: 42,
            rate: None,
        }
    }

    /// The per-connection request bound: effectively unbounded for the
    /// lazy synthetic stream, capped for the eager generators so a
    /// duration-bounded run does not materialize tens of millions of
    /// records up front.
    #[must_use]
    fn stream_for(&self, conn: usize) -> pc_trace::RecordStream {
        let bounded = match self.workload {
            Workload::Synthetic(_) => self.workload.clone().with_requests(usize::MAX),
            _ => {
                let cap = self.workload.requests().min(2_000_000);
                self.workload.clone().with_requests(cap)
            }
        };
        bounded.stream(self.seed + conn as u64)
    }
}

/// Per-connection results.
#[derive(Debug, Default, Clone)]
struct ConnStats {
    sent: u64,
    responses: u64,
    hits: u64,
    lat_ns_total: u64,
}

/// The closing report of a load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests written to the sockets.
    pub sent: u64,
    /// Responses received.
    pub responses: u64,
    /// Responses flagged as cache hits.
    pub hits: u64,
    /// Wall-clock duration of the request phase.
    pub elapsed: Duration,
    /// Client-measured round-trip latency distribution.
    pub latency_hist: IntervalHistogram,
    /// Mean client-measured latency.
    pub mean_latency: Duration,
    /// The server's final STATS payload, verbatim.
    pub stats_json: String,
    /// The parsed summary of `stats_json`.
    pub stats: StatsSummary,
}

impl LoadReport {
    /// Aggregate throughput over the request phase.
    #[must_use]
    pub fn req_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.responses as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Client-observed hit ratio.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.hits as f64 / self.responses as f64
        }
    }

    /// The human-readable closing report.
    #[must_use]
    pub fn render(&self) -> String {
        let p50 = self.latency_hist.quantile(0.5);
        let p99 = self.latency_hist.quantile(0.99);
        let mut out = String::new();
        out.push_str(&format!(
            "sent={} responses={} elapsed={:.3}s rate={:.0} req/s hit_ratio={:.4}\n",
            self.sent,
            self.responses,
            self.elapsed.as_secs_f64(),
            self.req_per_sec(),
            self.hit_ratio(),
        ));
        out.push_str(&format!(
            "client latency: mean={:?} p50={} p99={}\n",
            self.mean_latency, p50, p99,
        ));
        out.push_str(&format!(
            "server: requests={} hits={} energy_j={:.2} shards={} (all energies > 0: {})\n",
            self.stats.requests,
            self.stats.hits,
            self.stats.energy_j,
            self.stats.shard_energy_j.len(),
            self.stats.shard_energy_j.iter().all(|&e| e > 0.0),
        ));
        out
    }
}

/// Runs the load against a live server and collects the report.
///
/// # Errors
///
/// Propagates connection and socket errors, and reports a malformed or
/// unparseable STATS payload as `InvalidData`.
pub fn run_tcp(cfg: &LoadgenConfig) -> std::io::Result<LoadReport> {
    assert!(cfg.conns > 0, "need at least one connection");
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(cfg.secs.max(0.01));
    let mut handles = Vec::with_capacity(cfg.conns);
    for conn in 0..cfg.conns {
        let addr = cfg.addr.clone();
        let stream = cfg.stream_for(conn);
        let pace_ns = cfg
            .rate
            .map(|r| ((1e9 * cfg.conns as f64) / r.max(1.0)) as u64);
        handles.push(std::thread::spawn(move || {
            conn_worker(&addr, stream, deadline, pace_ns)
        }));
    }
    let mut sent = 0u64;
    let mut responses = 0u64;
    let mut hits = 0u64;
    let mut lat_ns_total = 0u64;
    let mut latency_hist = latency_histogram();
    for h in handles {
        let (stats, hist) = h
            .join()
            .map_err(|_| std::io::Error::other("worker panicked"))??;
        sent += stats.sent;
        responses += stats.responses;
        hits += stats.hits;
        lat_ns_total += stats.lat_ns_total;
        latency_hist.merge(&hist);
    }
    let elapsed = started.elapsed();

    // Final STATS over a fresh connection, after all load finished.
    let stats_json = fetch_stats(&cfg.addr)?;
    let stats = parse_stats_json(&stats_json).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "server STATS payload did not parse",
        )
    })?;
    let mean_latency = lat_ns_total
        .checked_div(responses)
        .map_or(Duration::ZERO, Duration::from_nanos);
    Ok(LoadReport {
        sent,
        responses,
        hits,
        elapsed,
        latency_hist,
        mean_latency,
        stats_json,
        stats,
    })
}

/// Client-side latency bins: 1 µs … ~4.5 min in 28 doubling bins.
fn latency_histogram() -> IntervalHistogram {
    IntervalHistogram::geometric(SimDuration::from_micros(1), 28)
}

/// Fetches a STATS snapshot over a dedicated connection.
///
/// # Errors
///
/// Propagates socket errors; a closed or unframeable stream is
/// `InvalidData`/`UnexpectedEof`.
pub fn fetch_stats(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut wire = Vec::new();
    encode_request(&Request::Stats { seq: 0 }, &mut wire);
    stream.write_all(&wire)?;
    let mut fb = FrameBuf::new();
    loop {
        match fb
            .next_response()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            Some(Response::Stats { json, .. }) => return Ok(json),
            Some(_) => continue,
            None => {
                if fb.read_from(&mut stream)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed before STATS reply",
                    ));
                }
            }
        }
    }
}

/// Asks the server to drain and exit (the `SHUTDOWN` opcode), waiting
/// for the acknowledgement.
///
/// # Errors
///
/// Propagates socket errors.
pub fn send_shutdown(addr: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut wire = Vec::new();
    encode_request(&Request::Shutdown { seq: 0 }, &mut wire);
    stream.write_all(&wire)?;
    let mut fb = FrameBuf::new();
    loop {
        match fb
            .next_response()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            Some(Response::Shutdown { .. }) => return Ok(()),
            Some(_) => continue,
            None => {
                if fb.read_from(&mut stream)? == 0 {
                    return Ok(()); // Ack lost in the drain: still shut down.
                }
            }
        }
    }
}

/// One connection: a sender thread (this one) paced open-loop plus a
/// receiver thread matching responses to send timestamps.
fn conn_worker(
    addr: &str,
    records: pc_trace::RecordStream,
    deadline: Instant,
    pace_ns: Option<u64>,
) -> std::io::Result<(ConnStats, IntervalHistogram)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut read_half = stream.try_clone()?;
    read_half.set_read_timeout(Some(Duration::from_millis(50)))?;

    let ring: Arc<Vec<AtomicU64>> = Arc::new((0..RING).map(|_| AtomicU64::new(0)).collect());
    let outstanding = Arc::new(AtomicI64::new(0));
    let sender_done = Arc::new(AtomicBool::new(false));
    let total_sent = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let receiver = {
        let ring = Arc::clone(&ring);
        let outstanding = Arc::clone(&outstanding);
        let sender_done = Arc::clone(&sender_done);
        let total_sent = Arc::clone(&total_sent);
        std::thread::spawn(move || -> std::io::Result<(ConnStats, IntervalHistogram)> {
            let mut fb = FrameBuf::new();
            let mut stats = ConnStats::default();
            let mut hist = latency_histogram();
            let hard_stop = deadline + Duration::from_secs(15);
            loop {
                while let Some(resp) = fb
                    .next_response()
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
                {
                    if let Response::Io { seq, hit, .. } = resp {
                        let sent_ns = ring[seq as usize % RING].load(Ordering::Relaxed);
                        let now_ns = start.elapsed().as_nanos() as u64;
                        let lat_ns = now_ns.saturating_sub(sent_ns);
                        stats.lat_ns_total += lat_ns;
                        hist.record(SimDuration::from_micros((lat_ns / 1_000).max(1)));
                        stats.responses += 1;
                        stats.hits += u64::from(hit);
                        outstanding.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                if sender_done.load(Ordering::Acquire)
                    && stats.responses >= total_sent.load(Ordering::Acquire)
                {
                    return Ok((stats, hist));
                }
                if Instant::now() > hard_stop {
                    return Ok((stats, hist)); // Give up on stragglers.
                }
                match fb.read_from(&mut read_half) {
                    Ok(0) => return Ok((stats, hist)),
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(e) => return Err(e),
                }
            }
        })
    };

    let mut write_half = stream;
    let mut buf = Vec::with_capacity(SEND_CHUNK + 64);
    let mut seq = 0u32;
    let mut sent = 0u64;
    for record in records {
        // Check the clock often enough for the deadline to bite without
        // paying a syscall per request.
        if sent.is_multiple_of(512) && Instant::now() >= deadline {
            break;
        }
        if let Some(gap) = pace_ns {
            let target = start + Duration::from_nanos(sent * gap);
            if !buf.is_empty() && Instant::now() < target {
                write_half.write_all(&buf)?;
                buf.clear();
            }
            while Instant::now() < target {
                std::thread::yield_now();
            }
        }
        while outstanding.load(Ordering::Relaxed) >= WINDOW {
            if !buf.is_empty() {
                write_half.write_all(&buf)?;
                buf.clear();
            }
            std::thread::yield_now();
            if Instant::now() >= deadline {
                break;
            }
        }
        ring[seq as usize % RING].store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        encode_request(
            &Request::Io {
                seq,
                write: record.op == IoOp::Write,
                disk: record.block.disk().index(),
                block: record.block.block().number(),
                blocks: u16::try_from(record.blocks).unwrap_or(u16::MAX),
            },
            &mut buf,
        );
        seq = seq.wrapping_add(1);
        sent += 1;
        outstanding.fetch_add(1, Ordering::Relaxed);
        if buf.len() >= SEND_CHUNK {
            write_half.write_all(&buf)?;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        write_half.write_all(&buf)?;
    }
    total_sent.store(sent, Ordering::Release);
    sender_done.store(true, Ordering::Release);

    let (mut stats, hist) = receiver
        .join()
        .map_err(|_| std::io::Error::other("receiver panicked"))??;
    stats.sent = sent;
    Ok((stats, hist))
}

/// Runs the workload through an in-process cluster (no sockets): the
/// deterministic mode. Returns the client-side tallies and the final
/// cluster snapshot with closed energy books.
#[must_use]
pub fn run_in_process(
    engine: &crate::shard::EngineConfig,
    workload: &Workload,
    seed: u64,
) -> (u64, u64, crate::stats::ClusterSnapshot) {
    let mut cluster = crate::shard::InProcCluster::new(engine);
    let mut requests = 0u64;
    let mut hits = 0u64;
    for record in workload.stream(seed) {
        let (_, outcome) = cluster.submit(&record);
        requests += 1;
        hits += u64::from(outcome.hit);
    }
    (requests, hits, cluster.into_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::EngineConfig;

    #[test]
    fn in_process_mode_is_deterministic_end_to_end() {
        let w = Workload::parse("synthetic").unwrap().with_requests(4_000);
        let engine = EngineConfig::new(2, 4);
        let (r1, h1, s1) = run_in_process(&engine, &w, 7);
        let (r2, h2, s2) = run_in_process(&engine, &w, 7);
        assert_eq!(r1, 4_000);
        assert_eq!((r1, h1), (r2, h2));
        assert_eq!(s1.to_json(), s2.to_json());
        assert!(h1 > 0, "a 4k-request zipf stream must hit sometimes");
    }

    #[test]
    fn eager_workloads_get_a_request_cap() {
        let cfg = LoadgenConfig {
            workload: Workload::parse("oltp").unwrap().with_requests(usize::MAX),
            ..LoadgenConfig::new("unused".into())
        };
        // Must not try to materialize usize::MAX records.
        let n = cfg.stream_for(0).take(3).count();
        assert_eq!(n, 3);
    }
}
