//! Live statistics snapshots: per-shard and cluster-wide counters,
//! energy, and response-time quantiles, rendered as deterministic JSON
//! for the `STATS` opcode.

use pc_cache::{CacheStats, IntervalHistogram, MetaStats};
use pc_sim::SimReport;
use pc_units::{Joules, SimDuration, SimTime};

/// One shard's view of the world at snapshot time.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Requests stepped so far.
    pub requests: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Energy accounted so far (live snapshots lag by the disks' lazy
    /// accounting; final snapshots close the books).
    pub energy: Joules,
    /// Sum of virtual response times.
    pub response_total: SimDuration,
    /// Virtual response-time distribution.
    pub response_hist: IntervalHistogram,
    /// Latest virtual request time seen.
    pub horizon: SimTime,
    /// Requests bounced with `BUSY` because this shard's queue was full
    /// (they never reached the engine and are **not** in `requests`).
    pub busy_rejects: u64,
    /// Requests sitting in the shard's admission queue right now (live
    /// gauge; always 0 in a drained final snapshot).
    pub queue_depth: u64,
    /// Highest admission-queue depth ever observed.
    pub queue_high_water: u64,
    /// Payload CRC32C verification failures the data plane detected
    /// (each one answered `CORRUPT` and the damaged frame refilled).
    pub crc_failures: u64,
    /// Adaptive-selection gauges (`--policy meta` only): the shard's
    /// live sub-policy and switch count. `None` under fixed policies,
    /// keeping their JSON byte-identical to older servers.
    pub meta: Option<MetaStats>,
}

impl ShardSnapshot {
    /// An empty snapshot for shard `shard` (all counters zero).
    #[must_use]
    pub fn empty(shard: usize) -> Self {
        ShardSnapshot {
            shard,
            requests: 0,
            cache: CacheStats::default(),
            energy: Joules::ZERO,
            response_total: SimDuration::ZERO,
            response_hist: SimReport::response_histogram(),
            horizon: SimTime::ZERO,
            busy_rejects: 0,
            queue_depth: 0,
            queue_high_water: 0,
            crc_failures: 0,
            meta: None,
        }
    }

    fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"shard\":{},\"requests\":{},\"accesses\":{},\"hits\":{},",
                "\"hit_ratio\":{:?},\"disk_reads\":{},\"disk_writes\":{},",
                "\"log_writes\":{},\"energy_j\":{:?},\"mean_us\":{},",
                "\"p50_us\":{},\"p99_us\":{},\"horizon_us\":{},",
                "\"busy_rejects\":{},\"queue_depth\":{},\"queue_high_water\":{},",
                "\"crc_failures\":{}"
            ),
            self.shard,
            self.requests,
            self.cache.accesses,
            self.cache.hits,
            self.cache.hit_ratio(),
            self.cache.disk_reads,
            self.cache.disk_writes,
            self.cache.log_writes,
            self.energy.as_joules(),
            mean_us(self.response_total, self.requests),
            quantile_us(&self.response_hist, 0.5),
            quantile_us(&self.response_hist, 0.99),
            (self.horizon - SimTime::ZERO).as_micros(),
            self.busy_rejects,
            self.queue_depth,
            self.queue_high_water,
            self.crc_failures,
        );
        // Emitted only under --policy meta: fixed-policy snapshots stay
        // byte-identical to pre-meta servers.
        if let Some(m) = &self.meta {
            out.push_str(&format!(
                ",\"meta\":{{\"active_policy\":\"{}\",\"switches\":{},\"epochs\":{}}}",
                m.active, m.switches, m.epochs
            ));
        }
        out.push('}');
        out
    }
}

fn mean_us(total: SimDuration, requests: u64) -> u64 {
    if requests == 0 {
        0
    } else {
        (total / requests).as_micros()
    }
}

fn quantile_us(hist: &IntervalHistogram, p: f64) -> u64 {
    hist.quantile(p).as_micros()
}

/// One IO thread's live gauges (event-loop front-end only): how many
/// connections it multiplexes, how busy its poller is, and how much
/// reply backlog it carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoThreadSnapshot {
    /// IO thread index.
    pub thread: usize,
    /// Connections currently registered with this thread's poller.
    pub connections: u64,
    /// Poller wakeups (epoll_wait returns) so far.
    pub wakeups: u64,
    /// Request frames decoded so far; `frames / wakeups` is the
    /// batching factor the event loop achieves.
    pub frames: u64,
    /// Reply bytes queued but not yet written to sockets (writeback
    /// depth).
    pub writeback_bytes: u64,
    /// Approximate buffer footprint across this thread's connections
    /// (read windows + queued replies).
    pub buffer_bytes: u64,
}

impl IoThreadSnapshot {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"thread\":{},\"connections\":{},\"wakeups\":{},",
                "\"frames\":{},\"writeback_bytes\":{},\"buffer_bytes\":{}}}"
            ),
            self.thread,
            self.connections,
            self.wakeups,
            self.frames,
            self.writeback_bytes,
            self.buffer_bytes,
        )
    }
}

/// The capture ring's gauges (`--capture` mode only): how many accepted
/// requests made it into the trace file's ring, and how many were
/// dropped because the ring was full — the never-block contract's
/// visible cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureSnapshot {
    /// Records accepted into the capture ring.
    pub recorded: u64,
    /// Records dropped at a full ring (absent from the trace file).
    pub dropped: u64,
}

impl CaptureSnapshot {
    fn to_json(self) -> String {
        format!(
            "{{\"recorded\":{},\"dropped\":{}}}",
            self.recorded, self.dropped
        )
    }
}

/// The whole cluster's statistics: one [`ShardSnapshot`] per shard plus
/// the policy identity, merged totals on demand.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// Replacement-policy name.
    pub policy: String,
    /// Write-policy name.
    pub write_policy: String,
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Per-IO-thread gauges; empty on the legacy and in-process paths,
    /// where the JSON stays byte-identical to pre-event-loop servers.
    pub io: Vec<IoThreadSnapshot>,
    /// Capture-ring gauges; `None` unless the server runs `--capture`,
    /// keeping capture-less JSON byte-identical to older servers.
    pub capture: Option<CaptureSnapshot>,
}

impl ClusterSnapshot {
    /// Assembles a cluster snapshot, sorting the shards by index.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or has duplicate/missing indices.
    #[must_use]
    pub fn new(policy: String, write_policy: String, mut shards: Vec<ShardSnapshot>) -> Self {
        assert!(!shards.is_empty(), "a cluster has at least one shard");
        shards.sort_by_key(|s| s.shard);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.shard, i, "shard snapshots must be dense");
        }
        ClusterSnapshot {
            policy,
            write_policy,
            shards,
            io: Vec::new(),
            capture: None,
        }
    }

    /// Attaches per-IO-thread gauges (event-loop front-end). An empty
    /// vector leaves the JSON identical to a snapshot without gauges.
    #[must_use]
    pub fn with_io(mut self, io: Vec<IoThreadSnapshot>) -> Self {
        self.io = io;
        self
    }

    /// Attaches the capture-ring gauges (`--capture` mode). `None`
    /// leaves the JSON identical to a snapshot without capture.
    #[must_use]
    pub fn with_capture(mut self, capture: Option<CaptureSnapshot>) -> Self {
        self.capture = capture;
        self
    }

    /// Connections currently registered across all IO threads.
    #[must_use]
    pub fn io_connections(&self) -> u64 {
        self.io.iter().map(|t| t.connections).sum()
    }

    /// Buffer footprint across all IO threads' connections.
    #[must_use]
    pub fn io_buffer_bytes(&self) -> u64 {
        self.io.iter().map(|t| t.buffer_bytes).sum()
    }

    /// Total requests across shards.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Merged cache counters across shards.
    #[must_use]
    pub fn total_cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.merge(&s.cache);
        }
        total
    }

    /// Total energy across shards (each shard accounts its own virtual
    /// disk array).
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.shards.iter().map(|s| s.energy).sum()
    }

    /// Total requests bounced with `BUSY` across shards (summed the
    /// same way [`CacheStats::merge`] folds counters).
    #[must_use]
    pub fn total_busy_rejects(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.busy_rejects))
    }

    /// Total payload CRC failures detected across shards.
    #[must_use]
    pub fn total_crc_failures(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.crc_failures))
    }

    /// Total meta-policy switch decisions across shards (0 under fixed
    /// policies, where no shard carries meta gauges).
    #[must_use]
    pub fn total_meta_switches(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|s| s.meta.as_ref())
            .fold(0u64, |acc, m| acc.saturating_add(m.switches))
    }

    /// The worst admission-queue high-water mark across shards (a max,
    /// not a sum — depths on different shards never queue behind each
    /// other).
    #[must_use]
    pub fn max_queue_high_water(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.queue_high_water)
            .max()
            .unwrap_or(0)
    }

    /// The merged response-time distribution across shards.
    #[must_use]
    pub fn merged_hist(&self) -> IntervalHistogram {
        let mut merged = SimReport::response_histogram();
        for s in &self.shards {
            merged.merge(&s.response_hist);
        }
        merged
    }

    /// Renders the snapshot as JSON with a fixed key order: shard
    /// objects in shard order, then merged totals. Deterministic for a
    /// given snapshot — no hash-map iteration anywhere.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 192 * self.shards.len());
        out.push_str("{\"policy\":\"");
        out.push_str(&self.policy);
        out.push_str("\",\"write_policy\":\"");
        out.push_str(&self.write_policy);
        out.push_str("\",\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push(']');
        // Emitted only when the event-loop front-end is live: legacy
        // and in-process snapshots must stay byte-identical to
        // pre-event-loop output.
        if !self.io.is_empty() {
            out.push_str(",\"io\":[");
            for (i, t) in self.io.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.to_json());
            }
            out.push(']');
        }
        // Emitted only under --capture, for the same byte-identity
        // reason as the io section.
        if let Some(capture) = self.capture {
            out.push_str(",\"capture\":");
            out.push_str(&capture.to_json());
        }
        let cache = self.total_cache();
        let hist = self.merged_hist();
        let requests = self.total_requests();
        let response_total: SimDuration = self.shards.iter().map(|s| s.response_total).sum();
        out.push_str(",\"total\":");
        out.push_str(&format!(
            concat!(
                "{{\"requests\":{},\"accesses\":{},\"hits\":{},\"hit_ratio\":{:?},",
                "\"disk_reads\":{},\"disk_writes\":{},\"log_writes\":{},",
                "\"energy_j\":{:?},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{},",
                "\"busy_rejects\":{},\"queue_high_water\":{},\"crc_failures\":{}"
            ),
            requests,
            cache.accesses,
            cache.hits,
            cache.hit_ratio(),
            cache.disk_reads,
            cache.disk_writes,
            cache.log_writes,
            self.total_energy().as_joules(),
            mean_us(response_total, requests),
            quantile_us(&hist, 0.5),
            quantile_us(&hist, 0.99),
            self.total_busy_rejects(),
            self.max_queue_high_water(),
            self.total_crc_failures(),
        ));
        // Only under --policy meta, so fixed-policy totals stay
        // byte-identical to pre-meta servers.
        if self.shards.iter().any(|s| s.meta.is_some()) {
            out.push_str(&format!(
                ",\"meta_switches\":{}",
                self.total_meta_switches()
            ));
        }
        out.push_str("}}");
        out
    }

    /// A human-readable closing report (the daemon prints this after a
    /// graceful drain).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "policy={} write_policy={}\n",
            self.policy, self.write_policy
        ));
        out.push_str(
            "shard     requests  hit_ratio     energy_j   p50_us   p99_us     busy  queue_hw\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "{:<5} {:>12} {:>10.4} {:>12.2} {:>8} {:>8} {:>8} {:>9}\n",
                s.shard,
                s.requests,
                s.cache.hit_ratio(),
                s.energy.as_joules(),
                quantile_us(&s.response_hist, 0.5),
                quantile_us(&s.response_hist, 0.99),
                s.busy_rejects,
                s.queue_high_water,
            ));
        }
        let hist = self.merged_hist();
        out.push_str(&format!(
            "total {:>12} {:>10.4} {:>12.2} {:>8} {:>8} {:>8} {:>9}\n",
            self.total_requests(),
            self.total_cache().hit_ratio(),
            self.total_energy().as_joules(),
            quantile_us(&hist, 0.5),
            quantile_us(&hist, 0.99),
            self.total_busy_rejects(),
            self.max_queue_high_water(),
        ));
        for s in &self.shards {
            if let Some(m) = &s.meta {
                out.push_str(&format!(
                    "meta  shard {} active={} switches={} epochs={}\n",
                    s.shard, m.active, m.switches, m.epochs
                ));
            }
        }
        if let Some(capture) = self.capture {
            out.push_str(&format!(
                "capture: recorded={} dropped={}\n",
                capture.recorded, capture.dropped
            ));
        }
        if !self.io.is_empty() {
            out.push_str(
                "io      conns    wakeups     frames  frames/wake  writeback_b   buffer_b\n",
            );
            for t in &self.io {
                let per_wake = if t.wakeups == 0 {
                    0.0
                } else {
                    t.frames as f64 / t.wakeups as f64
                };
                out.push_str(&format!(
                    "{:<5} {:>6} {:>10} {:>10} {:>12.1} {:>12} {:>10}\n",
                    t.thread,
                    t.connections,
                    t.wakeups,
                    t.frames,
                    per_wake,
                    t.writeback_bytes,
                    t.buffer_bytes,
                ));
            }
        }
        out
    }
}

/// The fields a client needs from a STATS JSON payload.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSummary {
    /// Total requests served.
    pub requests: u64,
    /// Total cache hits.
    pub hits: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Total requests bounced with `BUSY` across shards.
    pub busy_rejects: u64,
    /// Worst admission-queue high-water mark across shards.
    pub queue_high_water: u64,
    /// Total payload CRC failures detected across shards (0 for
    /// snapshots predating the data plane).
    pub crc_failures: u64,
    /// Per-shard energy in joules, indexed by shard.
    pub shard_energy_j: Vec<f64>,
    /// Connections registered across IO threads (0 when the snapshot
    /// carries no `io` section — legacy or in-process paths).
    pub io_connections: u64,
    /// Buffer footprint across IO threads (0 without an `io` section).
    pub io_buffer_bytes: u64,
    /// Records accepted into the capture ring (0 when the snapshot
    /// carries no `capture` section — servers not running `--capture`).
    pub capture_recorded: u64,
    /// Records dropped at a full capture ring (0 without capture).
    pub capture_dropped: u64,
    /// Total meta-policy switch decisions across shards (0 when the
    /// snapshot carries no meta gauges — fixed-policy servers).
    pub meta_switches: u64,
}

/// Extracts a [`StatsSummary`] from a STATS JSON payload, validating
/// that braces and brackets balance. Returns `None` on anything
/// malformed — the load generator treats that as a failed run.
///
/// This is a purpose-built extractor for the snapshot format above, not
/// a general JSON parser (the workspace is dependency-free by design).
#[must_use]
pub fn parse_stats_json(s: &str) -> Option<StatsSummary> {
    let mut depth = 0i64;
    for b in s.bytes() {
        match b {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return None;
    }
    let total_at = s.rfind("\"total\":{")?;
    let (shard_part, total_part) = s.split_at(total_at);
    let requests = num_after(total_part, "\"requests\":")?.parse().ok()?;
    let hits = num_after(total_part, "\"hits\":")?.parse().ok()?;
    let energy_j = num_after(total_part, "\"energy_j\":")?.parse().ok()?;
    // Absent on snapshots from pre-backpressure servers: treat as zero
    // rather than failing the whole parse.
    let busy_rejects = num_after(total_part, "\"busy_rejects\":")
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    let queue_high_water = num_after(total_part, "\"queue_high_water\":")
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    let crc_failures = num_after(total_part, "\"crc_failures\":")
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    // Absent under fixed policies: zero, same as the other optional keys.
    let meta_switches = num_after(total_part, "\"meta_switches\":")
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    // The optional "io" section sits between the shard array and the
    // total; split it off so its counters are not mistaken for shard
    // fields (it carries no "energy_j" keys, but being explicit is
    // cheaper than being lucky).
    let (shard_part, io_part) = match shard_part.find("\"io\":[") {
        Some(at) => shard_part.split_at(at),
        None => (shard_part, ""),
    };
    let mut io_connections = 0u64;
    let mut io_buffer_bytes = 0u64;
    let mut rest = io_part;
    while let Some(at) = rest.find("\"connections\":") {
        rest = &rest[at..];
        io_connections += num_after(rest, "\"connections\":")?.parse::<u64>().ok()?;
        io_buffer_bytes += num_after(rest, "\"buffer_bytes\":")?.parse::<u64>().ok()?;
        rest = &rest[14..];
    }
    // The optional "capture" section (between io and total); absent on
    // servers not running --capture, and on older snapshots: zero.
    let (capture_recorded, capture_dropped) = match s.find("\"capture\":{") {
        Some(at) => {
            let cap = &s[at..];
            (
                num_after(cap, "\"recorded\":")
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0),
                num_after(cap, "\"dropped\":")
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0),
            )
        }
        None => (0, 0),
    };
    let mut shard_energy_j = Vec::new();
    let mut rest = shard_part;
    while let Some(at) = rest.find("\"energy_j\":") {
        rest = &rest[at..];
        shard_energy_j.push(num_after(rest, "\"energy_j\":")?.parse().ok()?);
        rest = &rest[11..];
    }
    Some(StatsSummary {
        requests,
        hits,
        energy_j,
        busy_rejects,
        queue_high_water,
        crc_failures,
        shard_energy_j,
        io_connections,
        io_buffer_bytes,
        capture_recorded,
        capture_dropped,
        meta_switches,
    })
}

fn num_after<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let at = s.find(key)? + key.len();
    let rest = &s[at..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_with(shard: usize, requests: u64, hits: u64, energy: f64) -> ShardSnapshot {
        let mut s = ShardSnapshot::empty(shard);
        s.requests = requests;
        s.cache.accesses = requests;
        s.cache.hits = hits;
        s.energy = Joules::new(energy);
        for _ in 0..requests {
            s.response_hist.record(SimDuration::from_micros(300));
            s.response_total += SimDuration::from_micros(300);
        }
        s
    }

    fn cluster() -> ClusterSnapshot {
        ClusterSnapshot::new(
            "pa-lru".into(),
            "write-back".into(),
            vec![snapshot_with(1, 10, 5, 2.5), snapshot_with(0, 30, 15, 7.5)],
        )
    }

    #[test]
    fn totals_merge_across_shards() {
        let c = cluster();
        assert_eq!(c.total_requests(), 40);
        assert_eq!(c.total_cache().hits, 20);
        assert!((c.total_energy().as_joules() - 10.0).abs() < 1e-9);
        assert_eq!(c.merged_hist().total(), 40);
        // new() sorted the shards dense.
        assert_eq!(c.shards[0].shard, 0);
        assert_eq!(c.shards[1].shard, 1);
    }

    #[test]
    fn json_roundtrips_through_the_summary_extractor() {
        let c = cluster();
        let json = c.to_json();
        let summary = parse_stats_json(&json).expect("snapshot JSON must parse");
        assert_eq!(summary.requests, 40);
        assert_eq!(summary.hits, 20);
        assert!((summary.energy_j - 10.0).abs() < 1e-9);
        assert_eq!(summary.shard_energy_j, vec![7.5, 2.5]);
    }

    #[test]
    fn json_is_deterministic_and_shard_ordered() {
        let c = cluster();
        assert_eq!(c.to_json(), c.to_json());
        let json = c.to_json();
        let s0 = json.find("\"shard\":0").unwrap();
        let s1 = json.find("\"shard\":1").unwrap();
        assert!(s0 < s1, "shards must serialize in index order");
        assert!(json.starts_with("{\"policy\":\"pa-lru\""));
    }

    #[test]
    fn busy_gauges_merge_and_roundtrip() {
        let mut a = snapshot_with(0, 10, 5, 1.0);
        a.busy_rejects = 7;
        a.queue_depth = 3;
        a.queue_high_water = 12;
        let mut b = snapshot_with(1, 10, 5, 1.0);
        b.busy_rejects = 2;
        b.queue_high_water = 40;
        let c = ClusterSnapshot::new("lru".into(), "write-back".into(), vec![a, b]);
        assert_eq!(c.total_busy_rejects(), 9);
        assert_eq!(c.max_queue_high_water(), 40);

        let json = c.to_json();
        assert!(json.contains("\"busy_rejects\":7"));
        assert!(json.contains("\"queue_depth\":3"));
        assert!(json.contains("\"busy_rejects\":9"));
        assert!(json.contains("\"queue_high_water\":40"));
        let summary = parse_stats_json(&json).expect("parses");
        assert_eq!(summary.busy_rejects, 9);
        assert_eq!(summary.queue_high_water, 40);
        assert_eq!(summary.shard_energy_j.len(), 2);

        let table = c.render_table();
        assert!(table.contains("busy"), "closing table shows busy column");
        assert!(table.contains("queue_hw"));
    }

    #[test]
    fn crc_failures_sum_and_roundtrip() {
        let mut a = snapshot_with(0, 10, 5, 1.0);
        a.crc_failures = 3;
        let mut b = snapshot_with(1, 10, 5, 1.0);
        b.crc_failures = 4;
        let c = ClusterSnapshot::new("lru".into(), "write-back".into(), vec![a, b]);
        assert_eq!(c.total_crc_failures(), 7);
        let json = c.to_json();
        assert!(json.contains("\"crc_failures\":3"));
        assert!(json.contains("\"crc_failures\":7"));
        let summary = parse_stats_json(&json).expect("parses");
        assert_eq!(summary.crc_failures, 7);
        // Clean clusters report the counter as zero, not absent.
        assert_eq!(
            parse_stats_json(&cluster().to_json()).unwrap().crc_failures,
            0
        );
    }

    #[test]
    fn meta_gauges_are_absent_by_default_and_roundtrip_when_attached() {
        let plain = cluster();
        assert!(!plain.to_json().contains("\"meta"));
        assert!(!plain.render_table().contains("meta "));
        assert_eq!(parse_stats_json(&plain.to_json()).unwrap().meta_switches, 0);

        let mut a = snapshot_with(0, 10, 5, 1.0);
        a.meta = Some(MetaStats {
            active: "pa-lru".into(),
            switches: 2,
            epochs: 7,
        });
        let mut b = snapshot_with(1, 10, 5, 1.0);
        b.meta = Some(MetaStats {
            active: "lru".into(),
            switches: 1,
            epochs: 6,
        });
        let c = ClusterSnapshot::new("meta".into(), "write-back".into(), vec![a, b]);
        assert_eq!(c.total_meta_switches(), 3);
        let json = c.to_json();
        assert!(
            json.contains("\"meta\":{\"active_policy\":\"pa-lru\",\"switches\":2,\"epochs\":7}")
        );
        assert!(json.contains("\"meta\":{\"active_policy\":\"lru\",\"switches\":1,\"epochs\":6}"));
        assert!(json.ends_with("\"meta_switches\":3}}"));
        let summary = parse_stats_json(&json).expect("meta-bearing snapshot parses");
        assert_eq!(summary.meta_switches, 3);
        assert_eq!(summary.requests, 20);
        assert_eq!(summary.shard_energy_j.len(), 2);

        let table = c.render_table();
        assert!(table.contains("meta  shard 0 active=pa-lru switches=2 epochs=7"));
        assert!(table.contains("meta  shard 1 active=lru switches=1 epochs=6"));
    }

    #[test]
    fn io_gauges_are_absent_by_default_and_roundtrip_when_attached() {
        let plain = cluster();
        let with_empty = cluster().with_io(Vec::new());
        assert_eq!(
            plain.to_json(),
            with_empty.to_json(),
            "an empty io section must not perturb the JSON bytes"
        );
        assert!(!plain.to_json().contains("\"io\":"));

        let io = vec![
            IoThreadSnapshot {
                thread: 0,
                connections: 1000,
                wakeups: 50,
                frames: 400,
                writeback_bytes: 128,
                buffer_bytes: 4_096_000,
            },
            IoThreadSnapshot {
                thread: 1,
                connections: 24,
                wakeups: 9,
                frames: 18,
                writeback_bytes: 0,
                buffer_bytes: 98_304,
            },
        ];
        let c = cluster().with_io(io);
        assert_eq!(c.io_connections(), 1024);
        assert_eq!(c.io_buffer_bytes(), 4_194_304);
        let json = c.to_json();
        assert!(json.contains("\"io\":[{\"thread\":0"));
        let io_at = json.find("\"io\":").unwrap();
        assert!(
            json.find("\"shards\":").unwrap() < io_at && io_at < json.rfind("\"total\":").unwrap(),
            "io section must sit between shards and total"
        );
        let summary = parse_stats_json(&json).expect("io-bearing snapshot parses");
        assert_eq!(summary.io_connections, 1024);
        assert_eq!(summary.io_buffer_bytes, 4_194_304);
        // The io section must not leak into shard energy extraction.
        assert_eq!(summary.shard_energy_j.len(), 2);
        assert_eq!(summary.requests, 40);

        let table = c.render_table();
        assert!(table.contains("frames/wake"));
        assert!(table.contains("1000"));
    }

    #[test]
    fn capture_section_is_absent_by_default_and_roundtrips_when_attached() {
        let plain = cluster();
        let with_none = cluster().with_capture(None);
        assert_eq!(
            plain.to_json(),
            with_none.to_json(),
            "a None capture must not perturb the JSON bytes"
        );
        assert!(!plain.to_json().contains("\"capture\":"));
        let summary = parse_stats_json(&plain.to_json()).unwrap();
        assert_eq!((summary.capture_recorded, summary.capture_dropped), (0, 0));

        let c = cluster().with_capture(Some(CaptureSnapshot {
            recorded: 1_234,
            dropped: 56,
        }));
        let json = c.to_json();
        assert!(json.contains("\"capture\":{\"recorded\":1234,\"dropped\":56}"));
        let cap_at = json.find("\"capture\":").unwrap();
        assert!(
            json.find("\"shards\":").unwrap() < cap_at
                && cap_at < json.rfind("\"total\":").unwrap(),
            "capture section must sit between shards and total"
        );
        let summary = parse_stats_json(&json).expect("capture-bearing snapshot parses");
        assert_eq!(summary.capture_recorded, 1_234);
        assert_eq!(summary.capture_dropped, 56);
        assert_eq!(summary.requests, 40, "totals still parse");
        assert!(c
            .render_table()
            .contains("capture: recorded=1234 dropped=56"));
    }

    #[test]
    fn extractor_rejects_malformed_payloads() {
        assert_eq!(parse_stats_json("{\"total\":{"), None);
        assert_eq!(parse_stats_json("not json at all"), None);
        assert_eq!(parse_stats_json("}{"), None);
        let c = cluster();
        let truncated = &c.to_json()[..40];
        assert_eq!(parse_stats_json(truncated), None);
    }

    #[test]
    fn render_table_mentions_every_shard_and_the_total() {
        let t = cluster().render_table();
        assert!(t.contains("policy=pa-lru"));
        assert!(t.lines().count() >= 5);
        assert!(t.contains("total"));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_shard_indices_are_rejected() {
        let _ = ClusterSnapshot::new(
            "lru".into(),
            "write-back".into(),
            vec![snapshot_with(0, 1, 1, 0.0), snapshot_with(2, 1, 1, 0.0)],
        );
    }
}
